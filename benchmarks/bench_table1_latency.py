"""Table 1: 99.9th-percentile component latency (ms), CF workloads.

Paper reference rows (arrival rates 20 / 40 / 60 / 80 / 100 req/s):

    Basic            76   263   48186   113496   202834
    Request reissue  63   213   13505    27599    28981
    AccuracyTrader   87   109     118      122      130

Shapes that must hold: reissue is best at light load; Basic (and, less
violently, reissue) explode once the rate crosses component capacity
(between 40 and 60); AccuracyTrader stays pinned near the 100 ms deadline
at every rate.  Absolute magnitudes differ from the paper's testbed (see
EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.experiments.common import run_techniques
from repro.util.rng import make_rng
from repro.workloads.arrival import poisson_arrivals


def test_table1(benchmark, cf_tables_result, cf_profile, bench_scale):
    # The full table is computed once in the shared fixture; the benchmark
    # times one representative heavy-load latency simulation.
    arrivals = poisson_arrivals(100.0, bench_scale.session_s,
                                make_rng(0, "bench-t1"))
    benchmark.pedantic(
        run_techniques, args=(arrivals, cf_profile, bench_scale),
        kwargs=dict(techniques=("basic", "at")), rounds=1, iterations=1)

    r = cf_tables_result
    print()
    print(r.table1_text())

    # Paper shapes.
    i20, i100 = r.rates.index(20), r.rates.index(100)
    assert r.latency_ms["reissue"][i20] < r.latency_ms["at"][i20], \
        "reissue wins at light load"
    assert r.latency_ms["basic"][i100] > 100 * r.latency_ms["at"][i100], \
        "basic explodes under heavy load"
    assert r.latency_ms["reissue"][i100] < r.latency_ms["basic"][i100], \
        "reissue stays below basic"
    for v in r.latency_ms["at"]:
        assert v < 250.0, "AccuracyTrader stays near the deadline"
