"""Router scale-out: throughput and tail latency for 1/2/4 shards.

Extends ``bench_serving_throughput.py`` to the router tier: the same CF
dataset is deployed as a :class:`~repro.serving.router.ShardedService`
at 1, 2, and 4 shards (2 replicas each, one straggler replica stalling
hard on I/O), and an identical latency-bound request stream is served
hedged and unhedged.  Two effects are quantified:

- **scale-out**: with the dataset fixed, more shards mean smaller
  partitions, fewer groups per component, and a shorter critical path —
  closed-loop throughput rises with the shard count;
- **hedging**: per shard count, live hedged re-issue rescues requests
  routed to the straggler replica, collapsing p99 toward the clean
  replica's latency while leaving p50 untouched.

Emits machine-readable ``BENCH_router.json`` (throughput + p50/p95/p99
per configuration) so CI can smoke-run it at toy scale and downstream
tooling can diff runs.

Run:  PYTHONPATH=src python benchmarks/bench_router_scaleout.py [--toy]
          [--out BENCH_router.json]
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass

from repro.core.adapters import CFAdapter, CFRequest
from repro.core.builder import SynopsisConfig
from repro.core.service import AccuracyTraderService
from repro.serving import (
    IOStallAdapter,
    LoadGenerator,
    ReplicaGroup,
    ServingHarness,
    ShardedService,
    ThreadPoolBackend,
)
from repro.strategies.reissue import ReissueStrategy
from repro.workloads.movielens import MovieLensConfig, generate_ratings
from repro.workloads.partitioning import split_ratings

SHARD_COUNTS = (1, 2, 4)
N_REPLICAS = 2
STALL_S = 2e-3          # clean replica: per synopsis/group fetch
STRAGGLER_STALL_S = 2e-2  # shard 0's replica 0: 10x slower storage
HEDGE_TRIGGER_S = 1.5e-2  # well above a clean fetch, far below a straggle
DEADLINE_S = 10.0       # generous: identical refinement everywhere


@dataclass
class Scale:
    n_users: int
    n_items: int
    n_requests: int


FULL = Scale(n_users=400, n_items=60, n_requests=16)
TOY = Scale(n_users=96, n_items=30, n_requests=6)


def build_routed(parts, n_shards: int, backend, hedged: bool):
    """``n_shards`` single-component shards x 2 replicas over ``parts``."""
    shards = []
    for s in range(n_shards):
        replicas = []
        for r in range(N_REPLICAS):
            stall = (STRAGGLER_STALL_S if (s == 0 and r == 0)
                     else STALL_S)
            adapter = IOStallAdapter(CFAdapter(), synopsis_stall=stall,
                                     group_stall=stall)
            replicas.append(AccuracyTraderService(
                adapter, [parts[s]],
                config=SynopsisConfig(n_iters=25, target_ratio=12.0,
                                      seed=31)))
        shards.append(ReplicaGroup(replicas))
    hedge = (ReissueStrategy(100.0,
                             initial_expected_latency=HEDGE_TRIGGER_S)
             if hedged else None)
    # Uncapped hedging: this bench isolates the hedging effect itself;
    # the budget cap is exercised by bench_async_serving.py.
    return ShardedService(shards, backend=backend, hedge=hedge,
                          hedge_budget=None)


def make_loadgen(matrix) -> LoadGenerator:
    def factory(i, rng):
        ids, vals = matrix.user_ratings(i % matrix.n_users)
        targets = [t for t in range(5) if t not in set(ids.tolist())] or [0]
        return CFRequest(active_items=ids, active_vals=vals,
                         target_items=targets)

    return LoadGenerator(factory, seed=42)


def run(scale: Scale) -> dict:
    ratings = generate_ratings(MovieLensConfig(
        n_users=scale.n_users, n_items=scale.n_items, density=0.25,
        n_clusters=5, cluster_spread=0.3, noise=0.3, seed=31))
    loadgen = make_loadgen(ratings.matrix)
    load = loadgen.closed_loop(n_clients=1, n_requests=scale.n_requests)

    rows = []
    for n_shards in SHARD_COUNTS:
        parts = split_ratings(ratings.matrix, n_shards)
        for hedged in (False, True):
            with ThreadPoolBackend(max_workers=4 * n_shards + 8) as backend:
                with build_routed(parts, n_shards, backend, hedged) as svc:
                    harness = ServingHarness(svc, deadline=DEADLINE_S)
                    stats = harness.run_closed_loop(load)
                    rows.append({
                        "n_shards": n_shards,
                        "n_replicas": N_REPLICAS,
                        "hedged": hedged,
                        "n_requests": stats.n_requests,
                        "throughput_rps": stats.throughput(),
                        "p50_s": stats.p50(),
                        "p95_s": stats.p95(),
                        "p99_s": stats.p99(),
                        "hedges_issued": svc.hedges_issued,
                        "hedge_wins": svc.hedge_wins,
                    })
    return {
        "bench": "router_scaleout",
        "workload": "cf",
        "scale": {"n_users": scale.n_users, "n_items": scale.n_items,
                  "n_requests": scale.n_requests},
        "stall_s": STALL_S,
        "straggler_stall_s": STRAGGLER_STALL_S,
        "rows": rows,
    }


def print_table(result: dict) -> None:
    print("router scale-out — CF, 2 replicas/shard, straggler on "
          "shard 0 replica 0")
    print(f"{'shards':>7}{'hedged':>8}{'req/s':>9}{'p50 ms':>9}"
          f"{'p95 ms':>9}{'p99 ms':>9}{'hedges':>8}")
    for row in result["rows"]:
        print(f"{row['n_shards']:>7}{str(row['hedged']):>8}"
              f"{row['throughput_rps']:>9.1f}"
              f"{1e3 * row['p50_s']:>9.1f}{1e3 * row['p95_s']:>9.1f}"
              f"{1e3 * row['p99_s']:>9.1f}{row['hedges_issued']:>8}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--toy", action="store_true",
                        help="tiny configuration for CI smoke runs")
    parser.add_argument("--out", default="BENCH_router.json",
                        help="path of the machine-readable result")
    args = parser.parse_args(argv)

    result = run(TOY if args.toy else FULL)
    result["scale_name"] = "toy" if args.toy else "full"
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2)
    print_table(result)
    print(f"\nwrote {args.out}")

    # Sanity for CI: hedging must actually have fired somewhere.
    hedged_rows = [r for r in result["rows"] if r["hedged"]]
    if not any(r["hedges_issued"] > 0 for r in hedged_rows):
        print("error: no hedges were issued in any hedged configuration",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
