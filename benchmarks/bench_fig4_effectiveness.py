"""Figure 4: do high-correlation aggregated points mark the data that
actually matters for result accuracy?

Paper reference series —
(a) recommender: % of highly related users (|Pearson| > 0.8) per ranked
    section: 95.03% in section 1 decaying to 22.00% in section 10;
(b) search: share of the actual top-10 per section: 78 / 14.17 / 4.33 /
    1.67% in sections 1-4, below 1.17% in the remaining six.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.fig4 import run_fig4_cf, run_fig4_search


def test_fig4a_recommender(benchmark):
    result = benchmark.pedantic(
        run_fig4_cf,
        kwargs=dict(n_users=1500, n_items=300, n_requests=120, seed=0),
        rounds=1, iterations=1)
    print()
    print(result.text())
    sec = result.section_percent
    # Shape: top sections far above the tail, overall decreasing trend.
    assert sec[0] > 2.0 * np.mean(sec[5:])
    assert sec[0] > sec[-1]


def test_fig4b_search(benchmark):
    result = benchmark.pedantic(
        run_fig4_search,
        kwargs=dict(n_docs=1500, n_requests=200, seed=0),
        rounds=1, iterations=1)
    print()
    print(result.text())
    sec = result.section_percent
    # Shape: section 1 holds the bulk of the actual top-10; the first
    # four sections together hold nearly all of it (the 40% rule).
    assert sec[0] > 50.0
    assert sum(sec[:4]) > 90.0
