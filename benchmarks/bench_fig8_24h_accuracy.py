"""Figure 8: 24-hour accuracy losses — partial execution vs AccuracyTrader.

Paper shape: AccuracyTrader's losses are dramatically smaller than partial
execution's in every hour, with the gap widening at peak-load hours.
"""

from __future__ import annotations

import numpy as np


def test_fig8(benchmark, daily_result, search_service):
    n = search_service.config.n_requests
    benchmark.pedantic(search_service.partial_loss_percent,
                       args=(np.full(n, 0.5),), rounds=1, iterations=1)

    r = daily_result
    print()
    pe = np.array(r.losses["partial"])
    at = np.array(r.losses["at"])
    for i, h in enumerate(r.hours):
        print(f"hour {h:2d}: rate {r.rates[i]:6.1f} req/s  "
              f"partial {pe[i]:6.2f}%  AT {at[i]:5.2f}%")
    assert np.nanmean(at) < np.nanmean(pe)
    # Peak hours: the gap is large.
    peak = [i for i, h in enumerate(r.hours) if h in (21, 22, 23)]
    assert np.mean(pe[peak]) > 2 * np.mean(at[peak]) or np.mean(at[peak]) < 5.0
