"""Shared state for the benchmark harness.

Every paper artifact (table/figure) gets one bench module; the expensive
experiment runs are computed once per session here and shared, while each
bench module times a representative slice of its experiment through
pytest-benchmark and prints the paper-shaped rows.

Scale knobs: the default is a scaled-down cluster (36 components, 60 s
sessions) that reproduces the paper's *shapes* in minutes.  Set
``REPRO_BENCH_FULL=1`` to run at the paper's deployment size (108
components; substantially slower).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.cf_service import CFAccuracyService, CFServiceConfig
from repro.experiments.cf_tables import run_cf_tables
from repro.experiments.common import ExperimentScale, ServiceLatencyProfile, paper_scale
from repro.experiments.daily import run_daily
from repro.experiments.hourly import run_hours
from repro.experiments.search_service import (
    SearchAccuracyService,
    SearchServiceConfig,
)

FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"


@pytest.fixture(scope="session")
def bench_scale() -> ExperimentScale:
    if FULL:
        return paper_scale(session_s=60.0)
    return ExperimentScale(n_components=36, n_nodes=9, session_s=60.0)


@pytest.fixture(scope="session")
def cf_profile() -> ServiceLatencyProfile:
    return ServiceLatencyProfile.cf()


@pytest.fixture(scope="session")
def search_profile() -> ServiceLatencyProfile:
    return ServiceLatencyProfile.search()


@pytest.fixture(scope="session")
def cf_service() -> CFAccuracyService:
    return CFAccuracyService(CFServiceConfig(
        n_partitions=8, users_per_partition=250, n_items=200,
        n_requests=40, reveal_items=50, n_targets=8,
        synopsis_ratio=20.0, svd_iters=40, seed=0,
    ))


@pytest.fixture(scope="session")
def search_service() -> SearchAccuracyService:
    return SearchAccuracyService(SearchServiceConfig(
        n_partitions=8, docs_per_partition=400, n_topics=12,
        n_requests=50, synopsis_ratio=12.0, svd_iters=30, seed=0,
    ))


@pytest.fixture(scope="session")
def cf_tables_result(cf_profile, bench_scale, cf_service):
    """Tables 1 & 2 at the paper's five arrival rates (shared)."""
    return run_cf_tables(rates=(20, 40, 60, 80, 100), profile=cf_profile,
                         scale=bench_scale, service=cf_service, seed=0)


@pytest.fixture(scope="session")
def hourly_results(search_profile, bench_scale, search_service):
    """Figures 5 & 6: hours 9, 10, 24 (shared)."""
    return run_hours(hours=(9, 10, 24), profile=search_profile,
                     scale=bench_scale, service=search_service,
                     n_sessions=8, peak_rate=100.0, seed=0)


@pytest.fixture(scope="session")
def daily_result(search_profile, bench_scale, search_service):
    """Figures 7 & 8: the 24-hour sweep (shared)."""
    return run_daily(profile=search_profile, scale=bench_scale,
                     service=search_service, peak_rate=100.0, seed=0)
