"""Ablation: synopsis size (aggregation ratio) vs accuracy and stage-1 cost.

The paper fixes a "100x smaller" rule of thumb; this ablation sweeps the
target aggregation ratio and reports (a) the initial-result accuracy loss
(synopsis only, depth 0) and (b) the stage-1 work relative to a full
scan.  Expected: smaller ratios (finer synopses) improve the initial
result but erode the latency headroom that makes stage 1 cheap.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.formatting import format_table
from repro.experiments.search_service import (
    SearchAccuracyService,
    SearchServiceConfig,
)


def _loss_at_ratio(ratio: float) -> tuple[float, float, int]:
    svc = SearchAccuracyService(SearchServiceConfig(
        n_partitions=4, docs_per_partition=400, n_topics=12,
        n_requests=30, synopsis_ratio=ratio, svd_iters=25, seed=3))
    n, p = svc.config.n_requests, svc.n_partitions
    loss0 = svc.at_loss_percent(np.zeros((n, p)))
    groups = int(np.mean([s.n_aggregated for s in svc.synopses]))
    stage1_fraction = groups / svc.config.docs_per_partition
    return loss0, stage1_fraction, groups


def test_ablation_synopsis_size(benchmark):
    ratios = (8.0, 16.0, 32.0, 64.0)
    rows = []

    def sweep():
        rows.clear()
        for ratio in ratios:
            loss0, stage1, groups = _loss_at_ratio(ratio)
            rows.append([ratio, groups, 100.0 * stage1, loss0])
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(
        ["target ratio", "groups/partition", "stage-1 work (% of scan)",
         "initial-result loss (%)"],
        rows, title="Ablation: synopsis aggregation ratio (search service)"))

    stage1 = [r[2] for r in rows]
    # Finer synopses always cost more in stage 1 ...
    assert all(stage1[i] >= stage1[i + 1] for i in range(len(stage1) - 1))
    # ... and the coarsest synopsis must still be far cheaper than a scan.
    assert stage1[-1] < 15.0
