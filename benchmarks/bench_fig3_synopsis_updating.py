"""Figure 3: synopsis updating time vs fraction of input data changed.

Paper findings to reproduce: (i) every incremental update completes much
faster than re-creating the synopsis; (ii) adding i% new points is faster
than changing i% existing points (changes delete *and* re-insert R-tree
leaves).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.fig3 import run_fig3_cf, run_fig3_search


def test_fig3_cf_updating(benchmark):
    result = benchmark.pedantic(
        run_fig3_cf,
        kwargs=dict(n_users=2000, n_items=300, percents=range(1, 11),
                    repeats=2, seed=0),
        rounds=1, iterations=1)
    print()
    print(result.text())
    assert result.updates_faster_than_creation(), \
        "paper finding (i): updates must beat creation"
    assert result.add_faster_than_change(), \
        "paper finding (ii): add-only updates are the faster category"
    # Updating time grows with the fraction changed.
    assert np.mean(result.change_s[5:]) > np.mean(result.change_s[:5])


def test_fig3_search_updating(benchmark):
    result = benchmark.pedantic(
        run_fig3_search,
        kwargs=dict(n_docs=1500, percents=range(1, 11), repeats=2, seed=0),
        rounds=1, iterations=1)
    print()
    print(result.text())
    assert result.updates_faster_than_creation()
    # Finding (ii) reproduces cleanly on the CF service; on the synthetic
    # corpus the two categories are within timing noise of each other
    # (change's extra leaf deletes are offset by add's extra node splits),
    # so only a no-large-inversion check is asserted here — see
    # EXPERIMENTS.md for the discussion.
    assert float(np.mean(result.change_s)) >= 0.75 * float(np.mean(result.add_s))
