"""Algorithm 1 hot path: batched dispatch + vectorized kernels.

Profile-first measurement of the serving hot path on both paper
workloads, comparing two single-core configurations over the *same*
request set:

- **before** — the scalar baseline: per-request dispatch (one backend
  submission per component task) with the per-group/per-posting python
  reference kernels (``pearson_weights_scalar``,
  ``initial_result_scalar``, ``score_query_scalar``) patched in.  This
  is the pre-optimization hot path, preserved in-tree as the bit-exact
  test oracle.
- **after** — the shipped path: vectorized CSR kernels plus dispatch
  coalescing through :class:`~repro.serving.backends.BatchingBackend`
  (bursts of ``burst`` requests collapse into one submission per
  component, served by ``run_component_batch`` /
  ``initial_result_batch`` in one pass).

Three things are reported per workload:

- closed-loop **requests/sec per core** for both configurations and the
  speedup (the acceptance gate: >= 5x on CF at full scale);
- a cProfile **dispatch-vs-kernel breakdown** of each configuration —
  seconds spent in the numeric kernels vs dispatch/serialization
  machinery vs everything else — showing *where* the time went before
  and after;
- a **bit-identity** flag: the optimized path must return exactly the
  answers of the scalar baseline (dict equality on CF numerators /
  denominators, exact (doc, score) lists for search), because both
  accumulate the same sufficient statistics in the same order.

Emits machine-readable ``BENCH_hotpath.json`` for the CI smoke run.

Run:  PYTHONPATH=src python benchmarks/bench_hotpath.py [--toy]
          [--out BENCH_hotpath.json]
"""

from __future__ import annotations

import argparse
import cProfile
import json
import pstats
import sys
import time
from dataclasses import dataclass

import numpy as np

from repro.core.adapters import (
    CFAdapter,
    CFRequest,
    SearchAdapter,
    SearchQuery,
)
from repro.core.builder import SynopsisConfig
from repro.core.clock import SimulatedClock
from repro.core.service import AccuracyTraderService
from repro.recommender import similarity
from repro.recommender.similarity import pearson_weights_scalar
from repro.search import engine
from repro.search.scoring import score_query_scalar
from repro.serving import BatchingBackend, SequentialBackend, as_envelope
from repro.workloads.corpus import CorpusConfig, generate_corpus
from repro.workloads.movielens import MovieLensConfig, generate_ratings
from repro.workloads.partitioning import split_corpus, split_ratings

DEADLINE_S = 10.0
N_COMPONENTS = 2
I_MAX = 1                 # latency-critical anytime operation: stage 1
#                           dominates, which is exactly the batched path
CF_SPEEDUP_FLOOR = 5.0    # acceptance gate at full scale

# Module prefixes used to bucket cProfile samples.  "kernel" is the
# numeric work Algorithm 1 actually asks for; "dispatch" is the price of
# getting it to a worker and back.
KERNEL_MODULES = ("repro/recommender/", "repro/search/",
                  "repro/core/processor", "repro/core/adapters")
DISPATCH_MODULES = ("repro/serving/", "repro/core/service",
                    "concurrent/futures/", "threading", "queue", "pickle")


@dataclass
class Scale:
    n_requests: int   # total closed-loop requests (a multiple of burst)
    burst: int        # requests submitted per coalescing window
    n_users: int
    n_items: int
    n_docs: int
    vocab: int


FULL = Scale(n_requests=192, burst=32, n_users=4000, n_items=160,
             n_docs=4000, vocab=6000)
TOY = Scale(n_requests=48, burst=16, n_users=800, n_items=80,
            n_docs=800, vocab=2400)

CF_CONFIG = SynopsisConfig(n_iters=25, target_ratio=8.0, seed=23)
SEARCH_CONFIG = SynopsisConfig(n_iters=25, target_ratio=8.0, seed=23)


def sim_clocks():
    return [SimulatedClock(speed=1e12) for _ in range(N_COMPONENTS)]


def cf_workload(scale: Scale):
    ratings = generate_ratings(MovieLensConfig(
        n_users=scale.n_users, n_items=scale.n_items, density=0.2,
        n_clusters=6, cluster_spread=0.3, noise=0.3, seed=23))
    svc = AccuracyTraderService(
        CFAdapter(), split_ratings(ratings.matrix, N_COMPONENTS),
        config=CF_CONFIG, i_max=I_MAX)
    envelopes = []
    for i in range(scale.n_requests):
        ids, vals = ratings.matrix.user_ratings(i % scale.n_users)
        targets = [t for t in range(12)
                   if t not in set(ids.tolist())][:5] or [0]
        envelopes.append(as_envelope(
            CFRequest(active_items=ids, active_vals=vals,
                      target_items=targets), DEADLINE_S))
    return svc, envelopes


def search_workload(scale: Scale):
    corpus = generate_corpus(CorpusConfig(
        n_docs=scale.n_docs, n_topics=10, vocab_size=scale.vocab,
        words_per_topic=200, doc_length_mean=60.0, seed=23))
    svc = AccuracyTraderService(
        SearchAdapter(), split_corpus(corpus.partition, N_COMPONENTS),
        config=SEARCH_CONFIG, i_max=I_MAX)
    envelopes = []
    for i in range(scale.n_requests):
        terms = corpus.partition.tokens_of(i % scale.n_docs)[:8]
        envelopes.append(as_envelope(SearchQuery(terms=terms, k=10),
                                     DEADLINE_S))
    return svc, envelopes


class scalar_kernels:
    """Patch the pre-optimization reference kernels into the hot path."""

    def __enter__(self):
        self._saved = (similarity.pearson_weights, CFAdapter.initial_result,
                       engine.score_query)
        similarity.pearson_weights = pearson_weights_scalar
        CFAdapter.initial_result = CFAdapter.initial_result_scalar
        engine.score_query = score_query_scalar
        return self

    def __exit__(self, *exc):
        (similarity.pearson_weights, CFAdapter.initial_result,
         engine.score_query) = self._saved
        return False


def serve_unbatched(svc, envelopes):
    """Per-request dispatch: one submission per component task."""
    backend = SequentialBackend()
    return [svc.serve(env, clocks=sim_clocks(), backend=backend).answer
            for env in envelopes]


def serve_batched(svc, envelopes, burst: int):
    """Burst dispatch: each burst coalesces into one batch per component.

    Driven from one thread: ``max_batch`` equals the burst size, so the
    last submission of each burst flushes the batch inline and the
    window never has to expire.
    """
    backend = BatchingBackend(SequentialBackend(), window=30.0,
                              max_batch=burst, close_inner=True)
    answers = []
    try:
        for lo in range(0, len(envelopes), burst):
            chunk = envelopes[lo:lo + burst]
            task_lists = [svc.build_tasks(env, clocks=sim_clocks())
                          for env in chunk]
            futures = [backend.submit_task(t)
                       for c in range(N_COMPONENTS)
                       for tasks in task_lists
                       for t in (tasks[c],)]
            outcomes = [f.result() for f in futures]
            for k, env in enumerate(chunk):
                results = [outcomes[c * len(chunk) + k].result
                           for c in range(N_COMPONENTS)]
                answers.append(svc.merge(results, env.payload))
        return answers, backend.batch_stats()
    finally:
        backend.close()


def profile_breakdown(fn) -> dict:
    """Seconds in kernels vs dispatch vs other, from a profiled run."""
    prof = cProfile.Profile()
    prof.enable()
    fn()
    prof.disable()
    stats = pstats.Stats(prof)
    buckets = {"kernel_s": 0.0, "dispatch_s": 0.0, "other_s": 0.0}
    for (filename, _line, _name), (_cc, _nc, tottime, _ct, _callers) \
            in stats.stats.items():
        path = filename.replace("\\", "/")
        if any(m in path for m in KERNEL_MODULES):
            buckets["kernel_s"] += tottime
        elif any(m in path for m in DISPATCH_MODULES):
            buckets["dispatch_s"] += tottime
        else:
            buckets["other_s"] += tottime
    return {k: round(v, 4) for k, v in buckets.items()}


def cf_identical(a, b) -> bool:
    return (a.numer == b.numer and a.denom == b.denom
            and a.active_mean == b.active_mean)


def search_identical(a, b) -> bool:
    return [(h.doc_id, h.score) for h in a] == \
        [(h.doc_id, h.score) for h in b]


def best_of(fn, repeats: int):
    """Result of the first run + the fastest wall time of ``repeats`` runs.

    Closed-loop single-core timings jitter by +-10-20% on a shared
    machine; min-of-N is the standard way to report the achievable rate.
    """
    result, best_s = None, float("inf")
    for k in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        elapsed = time.perf_counter() - t0
        if k == 0:
            result = out
        best_s = min(best_s, elapsed)
    return result, best_s


def run_workload(name: str, svc, envelopes, burst: int, same,
                 repeats: int = 3) -> dict:
    n = len(envelopes)
    with svc:
        # warm-up (synopsis fault-in, code paths) outside the timings
        with scalar_kernels():
            serve_unbatched(svc, envelopes[:burst])
        serve_batched(svc, envelopes[:burst], burst)

        with scalar_kernels():
            before_answers, before_s = best_of(
                lambda: serve_unbatched(svc, envelopes), repeats)
            before_profile = profile_breakdown(
                lambda: serve_unbatched(svc, envelopes))

        (after_answers, batch_stats), after_s = best_of(
            lambda: serve_batched(svc, envelopes, burst), repeats)
        after_profile = profile_breakdown(
            lambda: serve_batched(svc, envelopes, burst))

    identical = all(same(a, b)
                    for a, b in zip(after_answers, before_answers))
    return {
        "workload": name,
        "n_requests": n,
        "burst": burst,
        "before": {"rps_per_core": n / before_s,
                   "elapsed_s": before_s,
                   "profile": before_profile},
        "after": {"rps_per_core": n / after_s,
                  "elapsed_s": after_s,
                  "profile": after_profile,
                  "batch_stats": batch_stats},
        "speedup": (n / after_s) / (n / before_s),
        "bit_identical": bool(identical),
    }


def run(scale: Scale) -> dict:
    cf_svc, cf_envs = cf_workload(scale)
    cf = run_workload("cf", cf_svc, cf_envs, scale.burst, cf_identical)
    search_svc, search_envs = search_workload(scale)
    search = run_workload("search", search_svc, search_envs, scale.burst,
                          search_identical)
    return {
        "bench": "hotpath",
        "scale": {"n_requests": scale.n_requests, "burst": scale.burst,
                  "n_users": scale.n_users, "n_items": scale.n_items,
                  "n_docs": scale.n_docs, "vocab": scale.vocab,
                  "n_components": N_COMPONENTS, "i_max": I_MAX},
        "cf": cf,
        "search": search,
    }


def print_table(result: dict) -> None:
    print("hot path — scalar+per-task dispatch vs vectorized+batched")
    print(f"{'workload':>9}{'mode':>8}{'req/s/core':>12}{'kernel s':>10}"
          f"{'dispatch s':>12}{'other s':>9}")
    for name in ("cf", "search"):
        row = result[name]
        for mode in ("before", "after"):
            prof = row[mode]["profile"]
            print(f"{name:>9}{mode:>8}"
                  f"{row[mode]['rps_per_core']:>12.0f}"
                  f"{prof['kernel_s']:>10.3f}{prof['dispatch_s']:>12.3f}"
                  f"{prof['other_s']:>9.3f}")
        stats = row["after"]["batch_stats"]
        print(f"{'':>9}speedup {row['speedup']:.1f}x, "
              f"bit-identical {row['bit_identical']}, "
              f"{stats['tasks_coalesced']} tasks in "
              f"{stats['batches_submitted']} batches")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--toy", action="store_true",
                        help="tiny configuration for CI smoke runs")
    parser.add_argument("--out", default="BENCH_hotpath.json",
                        help="path of the machine-readable result")
    args = parser.parse_args(argv)

    result = run(TOY if args.toy else FULL)
    result["scale_name"] = "toy" if args.toy else "full"
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2)
    print_table(result)
    print(f"\nwrote {args.out}")

    failures = []
    for name in ("cf", "search"):
        row = result[name]
        if not row["bit_identical"]:
            failures.append(f"{name}: optimized answers differ from the "
                            "scalar baseline")
        # Toy scale exempts search from the throughput gate: its
        # vectorized kernels carry fixed numpy call overhead that only
        # amortizes at realistic corpus sizes, so the smoke run checks
        # correctness there and speed on CF (which wins at any scale).
        if row["speedup"] < 1.0 and not (args.toy and name == "search"):
            failures.append(f"{name}: batched+vectorized is slower than "
                            f"the baseline ({row['speedup']:.2f}x)")
        stats = row["after"]["batch_stats"]
        if stats["batches_submitted"] >= stats["tasks_coalesced"]:
            failures.append(f"{name}: dispatch never coalesced")
    if not args.toy and result["cf"]["speedup"] < CF_SPEEDUP_FLOOR:
        failures.append(
            f"cf speedup {result['cf']['speedup']:.1f}x is below the "
            f"{CF_SPEEDUP_FLOOR}x acceptance floor")
    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
