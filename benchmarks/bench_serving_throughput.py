"""Serving throughput: parallel execution backends vs sequential.

The paper's deployment fans each request out to n component *nodes*;
per-component work is dominated by synopsis/group fetches from component
storage.  This bench recreates that shape with a 4-component CF service
whose adapter charges a real stall per online operation
(:class:`repro.serving.IOStallAdapter`), then serves an identical
latency-bound request stream through each execution backend.  A parallel
backend overlaps the four components' stalls, so request latency drops
toward the slowest single component and throughput rises toward n_x —
the speedup a sequential Python loop structurally cannot deliver.

Run: ``PYTHONPATH=src python -m pytest benchmarks/bench_serving_throughput.py -q -s``
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.adapters import CFAdapter, CFRequest
from repro.core.builder import SynopsisConfig
from repro.core.service import AccuracyTraderService
from repro.serving import (
    IOStallAdapter,
    LoadGenerator,
    SequentialBackend,
    ServingHarness,
    ThreadPoolBackend,
)
from repro.workloads.movielens import MovieLensConfig, generate_ratings
from repro.workloads.partitioning import split_ratings

N_COMPONENTS = 4
N_REQUESTS = 24
STALL_S = 2e-3          # per synopsis/group fetch: one fast-storage access
DEADLINE_S = 10.0       # generous: every backend does identical full work
MIN_SPEEDUP = 1.5


@pytest.fixture(scope="module")
def serving_service() -> AccuracyTraderService:
    ratings = generate_ratings(MovieLensConfig(
        n_users=400, n_items=60, density=0.25, n_clusters=5,
        cluster_spread=0.3, noise=0.3, seed=31,
    ))
    parts = split_ratings(ratings.matrix, N_COMPONENTS)
    adapter = IOStallAdapter(CFAdapter(), synopsis_stall=STALL_S,
                             group_stall=STALL_S)
    return AccuracyTraderService(
        adapter, parts,
        config=SynopsisConfig(n_iters=25, target_ratio=12.0, seed=31))


@pytest.fixture(scope="module")
def request_stream(serving_service) -> LoadGenerator:
    matrix = serving_service.partitions[0]

    def factory(i, rng):
        user = i % matrix.n_users
        ids, vals = matrix.user_ratings(user)
        targets = [t for t in range(5)
                   if t not in set(ids.tolist())] or [0]
        return CFRequest(active_items=ids, active_vals=vals,
                         target_items=targets)

    return LoadGenerator(factory, seed=42)


def serve_stream(service, backend, load):
    harness = ServingHarness(service, deadline=DEADLINE_S, backend=backend)
    return harness.run_closed_loop(load)


def test_parallel_backend_speedup(benchmark, serving_service, request_stream):
    # One closed-loop client: throughput is latency-bound, so the ratio
    # isolates per-request fan-out parallelism (not cross-request overlap).
    load = request_stream.closed_loop(n_clients=1, n_requests=N_REQUESTS)

    seq_stats = serve_stream(serving_service, SequentialBackend(), load)

    with ThreadPoolBackend(max_workers=N_COMPONENTS) as thread_backend:
        # Warm the pool outside the timed run.
        serve_stream(serving_service, thread_backend,
                     request_stream.closed_loop(n_clients=1, n_requests=2))
        thr_stats = benchmark.pedantic(
            serve_stream,
            args=(serving_service, thread_backend, load),
            rounds=1, iterations=1)

    # Identical answers and identical refinement work, backend-independent.
    for a, b in zip(seq_stats.answers, thr_stats.answers):
        assert a.numer == b.numer and a.denom == b.denom
    assert [[r.groups_processed for r in reps] for reps in seq_stats.reports] \
        == [[r.groups_processed for r in reps] for reps in thr_stats.reports]

    speedup = thr_stats.throughput() / seq_stats.throughput()
    rows = [("sequential", seq_stats, 1.0), ("thread", thr_stats, speedup)]
    print()
    print(f"serving throughput — {N_COMPONENTS}-component CF service, "
          f"{STALL_S * 1e3:.1f} ms/fetch component storage stall")
    print(f"{'backend':<12}{'req/s':>9}{'p50 ms':>9}{'p95 ms':>9}"
          f"{'p99 ms':>9}{'speedup':>9}")
    for name, stats, ratio in rows:
        print(f"{name:<12}{stats.throughput():>9.1f}"
              f"{1e3 * stats.p50():>9.1f}{1e3 * stats.p95():>9.1f}"
              f"{1e3 * stats.p99():>9.1f}{ratio:>9.2f}x")

    assert speedup > MIN_SPEEDUP, (
        f"thread backend speedup {speedup:.2f}x <= {MIN_SPEEDUP}x")


def test_open_loop_sustained_bursty(benchmark, serving_service,
                                    request_stream):
    """Sustained open-loop bursty load through the thread backend."""
    load = request_stream.bursty(base_rate=10.0, burst_rate=60.0,
                                 period=0.5, duty=0.4, duration=1.5)
    with ThreadPoolBackend(max_workers=N_COMPONENTS) as backend:
        harness = ServingHarness(serving_service, deadline=DEADLINE_S,
                                 backend=backend, max_concurrency=16)
        stats = benchmark.pedantic(harness.run_open_loop, args=(load,),
                                   rounds=1, iterations=1)

    assert stats.n_requests == load.n_requests
    assert all(a is not None for a in stats.answers)
    print()
    print(f"open-loop bursty: {stats.n_requests} requests in "
          f"{stats.duration:.2f} s -> {stats.throughput():.1f} req/s, "
          f"p50 {1e3 * stats.p50():.1f} ms, p95 {1e3 * stats.p95():.1f} ms, "
          f"p99 {1e3 * stats.p99():.1f} ms, "
          f"miss@100ms {100 * stats.deadline_miss_rate(0.1):.1f}%")
    assert np.all(stats.request_latencies > 0)
