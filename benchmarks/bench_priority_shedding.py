"""Priority-aware shedding: accuracy-critical p99 protected under overload.

One stall-dominated CF service (capacity ``max_inflight / stall`` rps)
is offered a **2x-overload** open-loop stream whose requests carry typed
:class:`~repro.serving.envelope.ServingRequest` envelopes, one third per
class (accuracy-critical / latency-critical / best-effort).  The same
stream runs behind two admission controllers:

- **fifo** — classless ``RejectOnFull``: the queue sits pinned at
  capacity, every admitted request (whatever its class) eats the full
  standing queue delay, and shedding is blind to class;
- **priority** — :class:`~repro.serving.admission.PriorityShedPolicy`:
  best-effort traffic is shed early (keeping the standing queue short),
  latency-critical next, and accuracy-critical only when the queue is
  truly full — which, with accuracy+latency traffic alone inside
  capacity, never happens.

The acceptance contract measured here (and smoke-checked in CI from the
emitted ``BENCH_priority.json``):

- under the priority policy **no accuracy-critical request is shed**
  while best-effort requests are being shed (and served);
- accuracy-critical p99 under the priority policy beats the classless
  baseline — the short queue is the protection, not just the shedding.

Run:  PYTHONPATH=src python benchmarks/bench_priority_shedding.py [--toy]
          [--out BENCH_priority.json]
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass

import numpy as np

from repro.core.adapters import CFAdapter
from repro.core.builder import SynopsisConfig
from repro.core.service import AccuracyTraderService
from repro.serving import (
    AdmissionController,
    AsyncExecutionBackend,
    AsyncServingHarness,
    AsyncStallAdapter,
    LoadGenerator,
    PriorityShedPolicy,
    RejectOnFull,
    RequestClass,
    ServingRequest,
)
from repro.workloads.movielens import MovieLensConfig, generate_ratings
from repro.workloads.partitioning import split_ratings

STALL_S = 0.05          # per-request storage stall (dominates service time)
MAX_INFLIGHT = 4        # execution slots -> capacity = 4 / 0.05 = 80 rps
MAX_PENDING = 32
OVERLOAD = 2.0          # offered rate = OVERLOAD * capacity
DEADLINE_S = 10.0
# Aggressive low-class thresholds keep the standing queue short, which is
# what protects accuracy-critical latency (not just its shed count).
PRIORITY_THRESHOLDS = {RequestClass.BEST_EFFORT: 0.15,
                       RequestClass.LATENCY_CRITICAL: 0.30}

CLASSES = [RequestClass.ACCURACY_CRITICAL, RequestClass.LATENCY_CRITICAL,
           RequestClass.BEST_EFFORT]

CONFIG = SynopsisConfig(n_iters=25, target_ratio=12.0, seed=37)


@dataclass
class Scale:
    duration_s: float
    n_users: int
    n_items: int


FULL = Scale(duration_s=4.0, n_users=240, n_items=40)
TOY = Scale(duration_s=1.5, n_users=96, n_items=30)


def make_loadgen(matrix) -> LoadGenerator:
    """Mixed-class envelope stream: classes cycle AC / LC / BE."""
    from repro.core.adapters import CFRequest

    def factory(i, rng):
        ids, vals = matrix.user_ratings(i % matrix.n_users)
        payload = CFRequest(active_items=ids, active_vals=vals,
                            target_items=[0, 1, 2])
        return ServingRequest(payload=payload,
                              request_class=CLASSES[i % len(CLASSES)])

    return LoadGenerator(factory, seed=53)


def run_policy(policy_name: str, scale: Scale, matrix) -> dict:
    capacity_rps = MAX_INFLIGHT / STALL_S
    rate = OVERLOAD * capacity_rps
    n = int(rate * scale.duration_s)
    load = make_loadgen(matrix).fixed(np.arange(n) / rate)

    if policy_name == "fifo":
        policies = [RejectOnFull()]
    else:
        policies = [PriorityShedPolicy(thresholds=PRIORITY_THRESHOLDS)]
    admission = AdmissionController(max_pending=MAX_PENDING,
                                    max_inflight=MAX_INFLIGHT,
                                    policies=policies)
    stall = AsyncStallAdapter(CFAdapter(), synopsis_stall=STALL_S,
                              group_stall=0.0)
    svc = AccuracyTraderService(stall, split_ratings(matrix, 1),
                                config=CONFIG, i_max=0)
    with svc, AsyncExecutionBackend() as backend:
        harness = AsyncServingHarness(svc, deadline=DEADLINE_S,
                                      backend=backend, admission=admission)
        stats = harness.run_open_loop(load)

    breakdown = stats.class_breakdown()
    return {
        "policy": policy_name,
        "offered": stats.offered,
        "served": stats.n_requests,
        "shed": stats.shed,
        "shed_rate": stats.shed_rate(),
        "shed_reasons": stats.shed_reasons,
        "queue_depth_max": stats.queue_depth_max,
        "classes": breakdown,
    }


def run(scale: Scale) -> dict:
    ratings = generate_ratings(MovieLensConfig(
        n_users=scale.n_users, n_items=scale.n_items, density=0.25,
        n_clusters=5, cluster_spread=0.3, noise=0.3, seed=37))
    capacity_rps = MAX_INFLIGHT / STALL_S
    rows = [run_policy(name, scale, ratings.matrix)
            for name in ("fifo", "priority")]
    return {
        "bench": "priority_shedding",
        "workload": "cf",
        "scale": {"duration_s": scale.duration_s,
                  "n_users": scale.n_users, "n_items": scale.n_items},
        "capacity_rps": capacity_rps,
        "offered_rps": OVERLOAD * capacity_rps,
        "overload": OVERLOAD,
        "max_inflight": MAX_INFLIGHT,
        "max_pending": MAX_PENDING,
        "policies": rows,
    }


def class_row(result: dict, policy: str, cls: str) -> dict:
    row = next(r for r in result["policies"] if r["policy"] == policy)
    return row["classes"].get(cls, {"served": 0, "shed": 0,
                                    "p50_s": float("nan"),
                                    "p99_s": float("nan")})


def print_table(result: dict) -> None:
    print(f"priority shedding — {result['overload']:.0f}x overload "
          f"({result['offered_rps']:.0f} rps offered vs "
          f"{result['capacity_rps']:.0f} rps capacity), "
          "one third of traffic per class")
    print(f"{'policy':>9}{'class':>20}{'served':>8}{'shed':>7}"
          f"{'p50 ms':>9}{'p99 ms':>9}")
    for row in result["policies"]:
        for cls in ("accuracy_critical", "latency_critical", "best_effort"):
            c = row["classes"].get(cls, {})
            print(f"{row['policy']:>9}{cls:>20}"
                  f"{c.get('served', 0):>8}{c.get('shed', 0):>7}"
                  f"{1e3 * c.get('p50_s', float('nan')):>9.0f}"
                  f"{1e3 * c.get('p99_s', float('nan')):>9.0f}")
    fifo_ac = class_row(result, "fifo", "accuracy_critical")
    prio_ac = class_row(result, "priority", "accuracy_critical")
    print(f"accuracy-critical p99: fifo {1e3 * fifo_ac['p99_s']:.0f} ms -> "
          f"priority {1e3 * prio_ac['p99_s']:.0f} ms; "
          f"priority sheds {class_row(result, 'priority', 'best_effort')['shed']}"
          " best-effort, 0 accuracy-critical")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--toy", action="store_true",
                        help="tiny configuration for CI smoke runs")
    parser.add_argument("--out", default="BENCH_priority.json",
                        help="path of the machine-readable result")
    args = parser.parse_args(argv)

    result = run(TOY if args.toy else FULL)
    result["scale_name"] = "toy" if args.toy else "full"
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2)
    print_table(result)
    print(f"\nwrote {args.out}")

    failures = []
    prio_ac = class_row(result, "priority", "accuracy_critical")
    prio_be = class_row(result, "priority", "best_effort")
    fifo_ac = class_row(result, "fifo", "accuracy_critical")
    if prio_ac["shed"] != 0:
        failures.append(
            f"{prio_ac['shed']} accuracy-critical requests were shed "
            "under the priority policy")
    if prio_be["shed"] < 1:
        failures.append("the run never shed best-effort traffic — "
                        "it was not overloaded")
    if prio_be["served"] < 1:
        failures.append("no best-effort request was admitted at all")
    if not prio_ac["p99_s"] < fifo_ac["p99_s"]:
        failures.append(
            f"accuracy-critical p99 not protected: priority "
            f"{prio_ac['p99_s']:.3f}s vs fifo {fifo_ac['p99_s']:.3f}s")
    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
