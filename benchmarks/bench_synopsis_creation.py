"""§4.2 creation overheads: the three synopsis-creation steps.

Paper reference points (one 4,000-user / 0.5M-page partition on one
node): recommender synopsis created within 30 s, search synopsis within
40 min; aggregation ratios 133.01 users and 42.55 pages per aggregated
point.  We report the same step timings and ratios for our scaled
partitions.
"""

from __future__ import annotations

from repro.core.adapters import CFAdapter, SearchAdapter
from repro.core.builder import SynopsisBuilder, SynopsisConfig
from repro.experiments.formatting import format_table
from repro.workloads.corpus import CorpusConfig, generate_corpus
from repro.workloads.movielens import MovieLensConfig, generate_ratings


def test_cf_synopsis_creation(benchmark):
    data = generate_ratings(MovieLensConfig(n_users=4000, n_items=1000,
                                            density=0.0675, seed=0))
    builder = SynopsisBuilder(CFAdapter(), SynopsisConfig(
        n_dims=3, n_iters=100, target_ratio=133.0, seed=0))

    synopsis, _ = benchmark.pedantic(builder.build, args=(data.matrix,),
                                     rounds=1, iterations=1)
    print()
    print(format_table(
        ["metric", "value"],
        [
            ["users in partition", synopsis.n_original],
            ["aggregated users", synopsis.n_aggregated],
            ["aggregation ratio (paper: 133.01)", synopsis.aggregation_ratio],
            ["step 1 SVD (s)", synopsis.meta["step1_s"]],
            ["step 2 R-tree (s)", synopsis.meta["step2_s"]],
            ["step 3 aggregation (s)", synopsis.meta["step3_s"]],
            ["total (paper: <30 s)", synopsis.meta["total_s"]],
        ],
        title="Synopsis creation, CF partition (4,000 users x 1,000 items)",
    ))
    assert synopsis.meta["total_s"] < 30.0


def test_search_synopsis_creation(benchmark):
    corpus = generate_corpus(CorpusConfig(n_docs=3000, n_topics=20,
                                          vocab_size=5000, seed=0))
    builder = SynopsisBuilder(SearchAdapter(), SynopsisConfig(
        n_dims=3, n_iters=100, target_ratio=42.55, seed=0))

    synopsis, _ = benchmark.pedantic(builder.build, args=(corpus.partition,),
                                     rounds=1, iterations=1)
    print()
    print(format_table(
        ["metric", "value"],
        [
            ["pages in partition", synopsis.n_original],
            ["aggregated pages", synopsis.n_aggregated],
            ["aggregation ratio (paper: 42.55)", synopsis.aggregation_ratio],
            ["step 1 SVD (s)", synopsis.meta["step1_s"]],
            ["step 2 R-tree (s)", synopsis.meta["step2_s"]],
            ["step 3 aggregation (s)", synopsis.meta["step3_s"]],
            ["total (paper partition was 167x larger; <40 min)",
             synopsis.meta["total_s"]],
        ],
        title="Synopsis creation, search partition (3,000 pages)",
    ))
