"""Multi-host transport: socket cluster vs in-process router.

The serving tier becomes multi-host in :mod:`repro.serving.transport`:
shards run as real OS processes behind length-prefixed TCP framing
(``RemoteServable``), and the state plane ships each update epoch to
workers as a content-defined binary *delta* against the epoch the worker
already holds (``RemoteBackend``).  This bench pins down the three
claims that make that tier trustworthy, emitted as machine-readable
``BENCH_transport.json``:

- **bit-identity** — a localhost multi-process cluster (one spawned
  service process per shard) answers CF and search requests
  bit-identically to the in-process ``ShardedService`` it replaces,
  before *and* after a synopsis update propagates over the wire.
- **latency + bytes on wire** — the same open-loop burst served by the
  in-process router and by the socket cluster: p50/p99 wall latency and
  measured wire bytes per request (the cost of crossing hosts).
- **delta scaling** — state traffic must scale with *update* size, not
  synopsis size: growing ``change_points`` edits produce growing —
  but always sub-snapshot — delta publications.

Run:  PYTHONPATH=src python benchmarks/bench_transport.py [--toy]
          [--out BENCH_transport.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass

import numpy as np

from repro.core.adapters import CFAdapter, CFRequest, SearchAdapter, \
    SearchQuery
from repro.core.builder import SynopsisConfig
from repro.core.clock import SimulatedClock
from repro.core.service import AccuracyTraderService
from repro.serving import (
    LoadGenerator,
    ReplicaGroup,
    RemoteBackend,
    RemoteServable,
    ServingHarness,
    ShardedService,
)
from repro.serving.envelope import as_envelope
from repro.workloads.corpus import CorpusConfig, generate_corpus
from repro.workloads.movielens import MovieLensConfig, generate_ratings
from repro.workloads.partitioning import split_corpus, split_ratings

N_SHARDS = 2
DEADLINE_S = 10.0
I_MAX = 4                 # cap refinement: the bench measures transport,
#                           not component compute
CONFIG = SynopsisConfig(n_iters=20, target_ratio=12.0, seed=19)
SEARCH_CONFIG = SynopsisConfig(n_iters=20, target_ratio=18.0, seed=19)


@dataclass
class Scale:
    n_users: int
    n_items: int
    n_requests: int
    stream_s: float           # open-loop arrival spread (wall seconds)
    edit_sizes: tuple         # change_points sizes for the delta section
    n_docs: int               # search bit-identity corpus size


FULL = Scale(n_users=1200, n_items=100, n_requests=240, stream_s=1.5,
             edit_sizes=(2, 8, 32, 128), n_docs=240)
TOY = Scale(n_users=320, n_items=60, n_requests=48, stream_s=0.5,
            edit_sizes=(2, 32), n_docs=120)


def make_loadgen(matrix) -> LoadGenerator:
    def factory(i, rng):
        ids, vals = matrix.user_ratings(i % matrix.n_users)
        targets = [t for t in range(5) if t not in set(ids.tolist())] or [0]
        return CFRequest(active_items=ids, active_vals=vals,
                         target_items=targets)

    return LoadGenerator(factory, seed=42)


def sim_clocks(n):
    return [SimulatedClock(speed=1e12) for _ in range(n)]


def local_cluster(adapter, parts, config, **kwargs) -> ShardedService:
    return ShardedService(
        [ReplicaGroup([AccuracyTraderService(adapter, [p], config=config,
                                             **kwargs)])
         for p in parts])


def remote_cluster(adapter, parts, config, **kwargs):
    """One spawned service process per shard; returns (cluster, remotes)."""
    remotes = [RemoteServable.spawn(AccuracyTraderService, adapter, [p],
                                    config=config, **kwargs)
               for p in parts]
    return ShardedService([ReplicaGroup([r]) for r in remotes]), remotes


def report_key(report):
    return (tuple(report.groups_ranked), report.groups_processed,
            report.work_units, report.hit_deadline, report.hit_imax,
            report.exhausted, report.state_epoch)


# ---------------------------------------------------------------------------
# Bit-identity: socket cluster vs in-process router
# ---------------------------------------------------------------------------


def check_identity_cf(matrix) -> dict:
    parts = split_ratings(matrix, N_SHARDS)
    local = local_cluster(CFAdapter(), parts, CONFIG)
    cluster, remotes = remote_cluster(CFAdapter(), parts, CONFIG)
    loadgen = make_loadgen(matrix)
    rng = np.random.default_rng(0)
    try:
        checks = []
        for i in range(4):
            env = as_envelope(loadgen.request_factory(i, rng), DEADLINE_S)
            a = local.serve(env, clocks=sim_clocks(N_SHARDS))
            b = cluster.serve(env, clocks=sim_clocks(N_SHARDS))
            checks.append(
                a.answer.numer == b.answer.numer
                and a.answer.denom == b.answer.denom
                and [report_key(r) for r in a.reports]
                == [report_key(r) for r in b.reports]
                and a.state_epochs == b.state_epochs)
        # An update must propagate over the wire and keep identity.
        changed = np.asarray(CFAdapter().record_ids(parts[0])[:2])
        local.shards[0].change_points(0, parts[0], changed)
        cluster.shards[0].change_points(0, parts[0], changed)
        env = as_envelope(loadgen.request_factory(9, rng), DEADLINE_S)
        a = local.serve(env, clocks=sim_clocks(N_SHARDS))
        b = cluster.serve(env, clocks=sim_clocks(N_SHARDS))
        update_ok = (a.answer.numer == b.answer.numer
                     and a.state_epochs == b.state_epochs)
        return {"workload": "cf", "n_requests": len(checks),
                "bit_identical": bool(all(checks)),
                "update_bit_identical": bool(update_ok)}
    finally:
        for r in remotes:
            r.close()


def check_identity_search(scale: Scale) -> dict:
    corpus = generate_corpus(CorpusConfig(
        n_docs=scale.n_docs, n_topics=8, vocab_size=1600, seed=13))
    parts = split_corpus(corpus.partition, N_SHARDS)
    kwargs = {"i_max_fraction": 0.4}
    local = local_cluster(SearchAdapter(), parts, SEARCH_CONFIG, **kwargs)
    cluster, remotes = remote_cluster(SearchAdapter(), parts,
                                      SEARCH_CONFIG, **kwargs)

    def hits(answer):
        return [(h.doc_id, h.score) for h in answer]

    try:
        checks = []
        for doc in (0, 3, 7):
            query = SearchQuery(terms=corpus.partition.tokens_of(doc)[:3],
                                k=10)
            env = as_envelope(query, DEADLINE_S)
            a = local.serve(env, clocks=sim_clocks(N_SHARDS))
            b = cluster.serve(env, clocks=sim_clocks(N_SHARDS))
            checks.append(
                hits(a.answer) == hits(b.answer)
                and [report_key(r) for r in a.reports]
                == [report_key(r) for r in b.reports])
        return {"workload": "search", "n_requests": len(checks),
                "bit_identical": bool(all(checks)),
                "update_bit_identical": None}
    finally:
        for r in remotes:
            r.close()


# ---------------------------------------------------------------------------
# Latency and bytes on wire: the cost of crossing hosts
# ---------------------------------------------------------------------------


def run_latency(scale: Scale, matrix) -> list[dict]:
    parts = split_ratings(matrix, N_SHARDS)
    loadgen = make_loadgen(matrix)
    arrivals = np.linspace(0.0, scale.stream_s, scale.n_requests)
    rows = []

    def measure(tier, cluster, wire_bytes_fn):
        before = wire_bytes_fn()
        harness = ServingHarness(cluster, deadline=DEADLINE_S)
        stats = harness.run_open_loop(loadgen.fixed(arrivals))
        wire = wire_bytes_fn() - before
        rows.append({
            "tier": tier,
            "n_requests": stats.n_requests,
            "throughput_rps": stats.throughput(),
            "p50_s": stats.p50(),
            "p99_s": stats.p99(),
            "wire_bytes": wire,
            "wire_bytes_per_request": wire / max(stats.n_requests, 1),
        })

    local = local_cluster(CFAdapter(), parts, CONFIG, i_max=I_MAX)
    measure("in_process", local, lambda: 0)

    cluster, remotes = remote_cluster(CFAdapter(), parts, CONFIG,
                                      i_max=I_MAX)

    def remote_bytes():
        return sum(c["bytes_sent"] + c["bytes_received"]
                   for r in remotes for c in [r.transport_counters()])

    try:
        measure("socket", cluster, remote_bytes)
    finally:
        for r in remotes:
            r.close()
    return rows


# ---------------------------------------------------------------------------
# Delta scaling: state traffic follows update size, not synopsis size
# ---------------------------------------------------------------------------


def run_delta_scaling(scale: Scale, matrix) -> dict:
    parts = split_ratings(matrix, N_SHARDS)
    svc = AccuracyTraderService(CFAdapter(), parts, config=CONFIG,
                                i_max=I_MAX)
    loadgen = make_loadgen(matrix)
    env = as_envelope(loadgen.request_factory(0, np.random.default_rng(0)),
                      DEADLINE_S)
    record_ids = CFAdapter().record_ids(parts[0])
    backend = RemoteBackend(n_workers=1)
    try:
        backend.run_tasks(svc.build_tasks(env, clocks=sim_clocks(N_SHARDS)))
        base = backend.transport_counters()
        full_per_component = base["state_full_bytes"] / N_SHARDS
        prev = base
        points = []
        for k in scale.edit_sizes:
            svc.change_points(0, parts[0],
                              np.asarray(record_ids[:k]))
            backend.run_tasks(svc.build_tasks(env,
                                              clocks=sim_clocks(N_SHARDS)))
            cur = backend.transport_counters()
            points.append({
                "edit_size": int(k),
                "delta_publishes": cur["state_delta_publishes"]
                - prev["state_delta_publishes"],
                "delta_bytes": cur["state_delta_bytes"]
                - prev["state_delta_bytes"],
                "full_publishes": cur["state_full_publishes"]
                - prev["state_full_publishes"],
            })
            prev = cur
        return {"full_snapshot_bytes": full_per_component,
                "points": points}
    finally:
        backend.close()
        svc.close()


def run(scale: Scale) -> dict:
    ratings = generate_ratings(MovieLensConfig(
        n_users=scale.n_users, n_items=scale.n_items, density=0.2,
        n_clusters=5, cluster_spread=0.3, noise=0.3, seed=19))
    return {
        "bench": "transport",
        "workload": "cf+search",
        "scale": {"n_users": scale.n_users, "n_items": scale.n_items,
                  "n_requests": scale.n_requests,
                  "edit_sizes": list(scale.edit_sizes),
                  "n_shards": N_SHARDS},
        "identity": [check_identity_cf(ratings.matrix),
                     check_identity_search(scale)],
        "latency": run_latency(scale, ratings.matrix),
        "delta_scaling": run_delta_scaling(scale, ratings.matrix),
    }


def print_table(result: dict) -> None:
    for check in result["identity"]:
        print(f"identity [{check['workload']}]: "
              f"{check['n_requests']} requests bit-identical="
              f"{check['bit_identical']}"
              + ("" if check["update_bit_identical"] is None else
                 f", after-update bit-identical="
                 f"{check['update_bit_identical']}"))
    print("\nlatency — the same open-loop burst, in-process vs socket")
    print(f"{'tier':>11}{'reqs':>6}{'rps':>8}{'p50 ms':>8}{'p99 ms':>8}"
          f"{'wire KB/req':>13}")
    for row in result["latency"]:
        print(f"{row['tier']:>11}{row['n_requests']:>6}"
              f"{row['throughput_rps']:>8.0f}"
              f"{1e3 * row['p50_s']:>8.1f}{1e3 * row['p99_s']:>8.1f}"
              f"{row['wire_bytes_per_request'] / 1e3:>13.1f}")
    delta = result["delta_scaling"]
    full_kb = delta["full_snapshot_bytes"] / 1e3
    print(f"\ndelta scaling — full snapshot {full_kb:.0f} KB/component")
    for point in delta["points"]:
        ratio = point["delta_bytes"] / delta["full_snapshot_bytes"]
        print(f"  edit {point['edit_size']:>4} records -> "
              f"{point['delta_bytes'] / 1e3:>7.1f} KB on the wire "
              f"({ratio:.0%} of a full snapshot)")


def check(result: dict) -> list[str]:
    failures = []
    for identity in result["identity"]:
        if not identity["bit_identical"]:
            failures.append(f"{identity['workload']}: socket cluster not "
                            "bit-identical to in-process")
        if identity["update_bit_identical"] is False:
            failures.append(f"{identity['workload']}: update broke "
                            "bit-identity over the wire")
    tiers = {row["tier"]: row for row in result["latency"]}
    if tiers["socket"]["wire_bytes"] <= 0:
        failures.append("socket tier reported no bytes on the wire")
    if tiers["in_process"]["n_requests"] != tiers["socket"]["n_requests"]:
        failures.append("tiers served different request counts")
    delta = result["delta_scaling"]
    full = delta["full_snapshot_bytes"]
    points = delta["points"]
    for point in points:
        if point["delta_publishes"] < 1:
            failures.append(f"edit {point['edit_size']}: epoch did not "
                            "travel as a delta")
        if point["full_publishes"] > 0:
            failures.append(f"edit {point['edit_size']}: fell back to a "
                            "full snapshot")
        if point["delta_bytes"] >= full:
            failures.append(f"edit {point['edit_size']}: delta "
                            f"({point['delta_bytes']}) not below the full "
                            f"snapshot ({full:.0f})")
    if len(points) > 1 and \
            points[0]["delta_bytes"] >= points[-1]["delta_bytes"]:
        failures.append("delta bytes do not grow with update size: "
                        f"{[p['delta_bytes'] for p in points]}")
    if points and points[0]["delta_bytes"] > 0.6 * full:
        failures.append(f"smallest edit ships {points[0]['delta_bytes']} "
                        f"bytes, not small vs the {full:.0f}-byte snapshot")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--toy", action="store_true",
                        help="tiny configuration for CI smoke runs")
    parser.add_argument("--out", default="BENCH_transport.json",
                        help="path of the machine-readable result")
    args = parser.parse_args(argv)

    t0 = time.monotonic()
    result = run(TOY if args.toy else FULL)
    result["scale_name"] = "toy" if args.toy else "full"
    result["elapsed_s"] = time.monotonic() - t0
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2)
    print_table(result)
    print(f"\nwrote {args.out}")

    failures = check(result)
    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
