"""Multi-host transport: socket cluster vs in-process router.

The serving tier becomes multi-host in :mod:`repro.serving.transport`:
shards run as real OS processes behind length-prefixed TCP framing
(``RemoteServable``), links are *multiplexed* (many in-flight
msg_id-correlated RPCs per socket), coalesced batches cross as one
``KIND_BATCH`` frame, and the state plane ships each update epoch as
the smallest of a **semantic** delta (only the re-aggregated groups),
a content-defined **CDC** byte delta, or the full snapshot
(``RemoteBackend``).  This bench pins down the claims that make that
tier trustworthy, emitted as machine-readable ``BENCH_transport.json``:

- **bit-identity** — a localhost multi-process cluster (one spawned
  service process per shard) answers CF and search requests
  bit-identically to the in-process ``ShardedService`` it replaces,
  before *and* after a synopsis update propagates over the wire.
- **latency + bytes on wire** — the same open-loop burst served by the
  in-process router and by the socket cluster: p50/p99 wall latency and
  measured wire bytes per request (the cost of crossing hosts).
- **concurrency** — the same concurrent closed-loop load on three
  tiers: in-process, a *serialized* socket cluster (one outstanding
  RPC per link) and the *multiplexed* one.  Multiplexing must at least
  match serialized throughput, and at full scale it must close the
  socket-vs-in-process p99 gap by >= 2x.
- **batch framing** — shipping component batches as one frame must at
  least match pipelined per-task dispatch on throughput.
- **delta scaling** — state traffic must scale with *update* size, not
  synopsis size: growing ``change_points`` edits produce growing —
  but always sub-snapshot — delta publications, and for small hinted
  edits the semantic encoding beats the CDC byte delta it displaced.

Run:  PYTHONPATH=src python benchmarks/bench_transport.py [--toy]
          [--out BENCH_transport.json]
"""

from __future__ import annotations

import argparse
import itertools
import json
import pickle
import sys
import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.core.adapters import CFAdapter, CFRequest, SearchAdapter, \
    SearchQuery
from repro.core.builder import SynopsisConfig
from repro.core.clock import SimulatedClock
from repro.core.service import AccuracyTraderService
from repro.core.state import PICKLE_PROTOCOL, compute_delta
from repro.serving import (
    IOStallAdapter,
    LoadGenerator,
    ReplicaGroup,
    RemoteBackend,
    RemoteServable,
    ServingHarness,
    ShardedService,
)
from repro.serving.envelope import as_envelope
from repro.serving.transport import KIND_STATE, encode_frame
from repro.workloads.corpus import CorpusConfig, generate_corpus
from repro.workloads.movielens import MovieLensConfig, generate_ratings
from repro.workloads.partitioning import split_corpus, split_ratings

N_SHARDS = 2
DEADLINE_S = 10.0
I_MAX = 4                 # cap refinement: the bench measures transport,
#                           not component compute
N_CLIENTS = 8             # concurrent closed-loop clients
STALL_S = 2e-3            # per-component storage stall (concurrency leg)
BATCH_SIZE = 8            # tasks per KIND_BATCH frame
CONFIG = SynopsisConfig(n_iters=20, target_ratio=12.0, seed=19)
SEARCH_CONFIG = SynopsisConfig(n_iters=20, target_ratio=18.0, seed=19)


@dataclass
class Scale:
    n_users: int
    n_items: int
    n_requests: int
    stream_s: float           # open-loop arrival spread (wall seconds)
    edit_sizes: tuple         # change_points sizes for the delta section
    n_docs: int               # search bit-identity corpus size


FULL = Scale(n_users=1200, n_items=100, n_requests=240, stream_s=1.5,
             edit_sizes=(2, 8, 32, 128), n_docs=240)
TOY = Scale(n_users=320, n_items=60, n_requests=48, stream_s=0.5,
            edit_sizes=(2, 32), n_docs=120)


def make_loadgen(matrix) -> LoadGenerator:
    def factory(i, rng):
        ids, vals = matrix.user_ratings(i % matrix.n_users)
        targets = [t for t in range(5) if t not in set(ids.tolist())] or [0]
        return CFRequest(active_items=ids, active_vals=vals,
                         target_items=targets)

    return LoadGenerator(factory, seed=42)


def sim_clocks(n):
    return [SimulatedClock(speed=1e12) for _ in range(n)]


def local_cluster(adapter, parts, config, **kwargs) -> ShardedService:
    return ShardedService(
        [ReplicaGroup([AccuracyTraderService(adapter, [p], config=config,
                                             **kwargs)])
         for p in parts])


def remote_cluster(adapter, parts, config, **kwargs):
    """One spawned service process per shard; returns (cluster, remotes)."""
    remotes = [RemoteServable.spawn(AccuracyTraderService, adapter, [p],
                                    config=config, **kwargs)
               for p in parts]
    return ShardedService([ReplicaGroup([r]) for r in remotes]), remotes


def report_key(report):
    return (tuple(report.groups_ranked), report.groups_processed,
            report.work_units, report.hit_deadline, report.hit_imax,
            report.exhausted, report.state_epoch)


# ---------------------------------------------------------------------------
# Bit-identity: socket cluster vs in-process router
# ---------------------------------------------------------------------------


def check_identity_cf(matrix) -> dict:
    parts = split_ratings(matrix, N_SHARDS)
    local = local_cluster(CFAdapter(), parts, CONFIG)
    cluster, remotes = remote_cluster(CFAdapter(), parts, CONFIG)
    loadgen = make_loadgen(matrix)
    rng = np.random.default_rng(0)
    try:
        checks = []
        for i in range(4):
            env = as_envelope(loadgen.request_factory(i, rng), DEADLINE_S)
            a = local.serve(env, clocks=sim_clocks(N_SHARDS))
            b = cluster.serve(env, clocks=sim_clocks(N_SHARDS))
            checks.append(
                a.answer.numer == b.answer.numer
                and a.answer.denom == b.answer.denom
                and [report_key(r) for r in a.reports]
                == [report_key(r) for r in b.reports]
                and a.state_epochs == b.state_epochs)
        # An update must propagate over the wire and keep identity.
        changed = np.asarray(CFAdapter().record_ids(parts[0])[:2])
        local.shards[0].change_points(0, parts[0], changed)
        cluster.shards[0].change_points(0, parts[0], changed)
        env = as_envelope(loadgen.request_factory(9, rng), DEADLINE_S)
        a = local.serve(env, clocks=sim_clocks(N_SHARDS))
        b = cluster.serve(env, clocks=sim_clocks(N_SHARDS))
        update_ok = (a.answer.numer == b.answer.numer
                     and a.state_epochs == b.state_epochs)
        return {"workload": "cf", "n_requests": len(checks),
                "bit_identical": bool(all(checks)),
                "update_bit_identical": bool(update_ok)}
    finally:
        for r in remotes:
            r.close()


def check_identity_search(scale: Scale) -> dict:
    corpus = generate_corpus(CorpusConfig(
        n_docs=scale.n_docs, n_topics=8, vocab_size=1600, seed=13))
    parts = split_corpus(corpus.partition, N_SHARDS)
    kwargs = {"i_max_fraction": 0.4}
    local = local_cluster(SearchAdapter(), parts, SEARCH_CONFIG, **kwargs)
    cluster, remotes = remote_cluster(SearchAdapter(), parts,
                                      SEARCH_CONFIG, **kwargs)

    def hits(answer):
        return [(h.doc_id, h.score) for h in answer]

    try:
        checks = []
        for doc in (0, 3, 7):
            query = SearchQuery(terms=corpus.partition.tokens_of(doc)[:3],
                                k=10)
            env = as_envelope(query, DEADLINE_S)
            a = local.serve(env, clocks=sim_clocks(N_SHARDS))
            b = cluster.serve(env, clocks=sim_clocks(N_SHARDS))
            checks.append(
                hits(a.answer) == hits(b.answer)
                and [report_key(r) for r in a.reports]
                == [report_key(r) for r in b.reports])
        return {"workload": "search", "n_requests": len(checks),
                "bit_identical": bool(all(checks)),
                "update_bit_identical": None}
    finally:
        for r in remotes:
            r.close()


# ---------------------------------------------------------------------------
# Latency and bytes on wire: the cost of crossing hosts
# ---------------------------------------------------------------------------


def run_latency(scale: Scale, matrix) -> list[dict]:
    parts = split_ratings(matrix, N_SHARDS)
    loadgen = make_loadgen(matrix)
    arrivals = np.linspace(0.0, scale.stream_s, scale.n_requests)
    rows = []

    def measure(tier, cluster, wire_bytes_fn):
        before = wire_bytes_fn()
        harness = ServingHarness(cluster, deadline=DEADLINE_S)
        stats = harness.run_open_loop(loadgen.fixed(arrivals))
        wire = wire_bytes_fn() - before
        rows.append({
            "tier": tier,
            "n_requests": stats.n_requests,
            "throughput_rps": stats.throughput(),
            "p50_s": stats.p50(),
            "p99_s": stats.p99(),
            "wire_bytes": wire,
            "wire_bytes_per_request": wire / max(stats.n_requests, 1),
        })

    local = local_cluster(CFAdapter(), parts, CONFIG, i_max=I_MAX)
    measure("in_process", local, lambda: 0)

    cluster, remotes = remote_cluster(CFAdapter(), parts, CONFIG,
                                      i_max=I_MAX)

    def remote_bytes():
        return sum(c["bytes_sent"] + c["bytes_received"]
                   for r in remotes for c in [r.transport_counters()])

    try:
        measure("socket", cluster, remote_bytes)
    finally:
        for r in remotes:
            r.close()
    return rows


# ---------------------------------------------------------------------------
# Concurrency: serialized vs multiplexed links under concurrent load
# ---------------------------------------------------------------------------


def drive_concurrent(service, requests, n_total: int) -> dict:
    """``N_CLIENTS`` closed-loop threads sharing ``n_total`` requests."""
    latencies: list[float] = []
    lock = threading.Lock()
    counter = itertools.count()

    def client():
        mine = []
        while True:
            i = next(counter)
            if i >= n_total:
                break
            env = as_envelope(requests[i % len(requests)], DEADLINE_S)
            t0 = time.perf_counter()
            service.serve(env, clocks=sim_clocks(N_SHARDS))
            mine.append(time.perf_counter() - t0)
        with lock:
            latencies.extend(mine)

    t0 = time.perf_counter()
    threads = [threading.Thread(target=client) for _ in range(N_CLIENTS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0
    lat = np.asarray(latencies)
    return {
        "n_clients": N_CLIENTS,
        "n_requests": len(latencies),
        "throughput_rps": len(latencies) / elapsed,
        "p50_s": float(np.percentile(lat, 50)),
        "p99_s": float(np.percentile(lat, 99)),
    }


def run_concurrency(scale: Scale, matrix) -> list[dict]:
    """The same concurrent load on in-process vs serialized vs muxed.

    Components pay an ``IOStallAdapter`` storage stall (the serving
    layer's model of a real fetch), so a worker process genuinely
    overlaps concurrent requests.  That is the regime multiplexing is
    for: a serialized link admits one RPC at a time and the stall
    serializes the whole cluster; pipelined links keep the worker's
    pool full.
    """
    parts = split_ratings(matrix, N_SHARDS)
    loadgen = make_loadgen(matrix)
    rng = np.random.default_rng(5)
    requests = [loadgen.request_factory(i, rng) for i in range(16)]
    warm = as_envelope(requests[0], DEADLINE_S)

    def stalled_adapter():
        return IOStallAdapter(CFAdapter(), synopsis_stall=STALL_S,
                              group_stall=STALL_S / 10)

    rows = []
    local = local_cluster(stalled_adapter(), parts, CONFIG, i_max=I_MAX)
    local.serve(warm, clocks=sim_clocks(N_SHARDS))
    rows.append({"tier": "in_process",
                 **drive_concurrent(local, requests, scale.n_requests)})

    for tier, kwargs in (
            # One outstanding RPC per link: the pre-multiplexing wire.
            ("socket_serialized", {"max_in_flight": 1}),
            # Pipelined links, two per worker process.
            ("socket_multiplexed", {"n_links": 2})):
        cluster, remotes = remote_cluster(stalled_adapter(), parts, CONFIG,
                                          i_max=I_MAX, **kwargs)
        try:
            cluster.serve(warm, clocks=sim_clocks(N_SHARDS))  # publish state
            rows.append({"tier": tier, **drive_concurrent(
                cluster, requests, scale.n_requests)})
        finally:
            for r in remotes:
                r.close()
    return rows


# ---------------------------------------------------------------------------
# Batch framing: one KIND_BATCH frame vs pipelined per-task dispatch
# ---------------------------------------------------------------------------


def run_batching(scale: Scale, matrix) -> dict:
    parts = split_ratings(matrix, N_SHARDS)
    svc = AccuracyTraderService(CFAdapter(), parts, config=CONFIG,
                                i_max=I_MAX)
    loadgen = make_loadgen(matrix)
    rng = np.random.default_rng(3)
    n_requests = max(scale.n_requests // 2, 16)
    backend = RemoteBackend(n_workers=2)

    def build_all():
        tasks = []
        for i in range(n_requests):
            env = as_envelope(loadgen.request_factory(i, rng), DEADLINE_S)
            tasks.extend(svc.build_tasks(env, clocks=sim_clocks(N_SHARDS)))
        return tasks

    try:
        warm = as_envelope(loadgen.request_factory(0, rng), DEADLINE_S)
        backend.run_tasks(svc.build_tasks(warm, clocks=sim_clocks(N_SHARDS)))

        tasks = build_all()
        t0 = time.perf_counter()
        futures = [backend.submit_task(t) for t in tasks]
        for future in futures:
            future.result()
        per_task_s = time.perf_counter() - t0

        tasks = build_all()
        by_component: dict[int, list] = {}
        for task in tasks:
            by_component.setdefault(task.component, []).append(task)
        before = backend.transport_counters()["batches_shipped"]
        t0 = time.perf_counter()
        futures = []
        for bucket in by_component.values():
            for i in range(0, len(bucket), BATCH_SIZE):
                futures.extend(
                    backend.submit_batch(bucket[i:i + BATCH_SIZE]))
        for future in futures:
            future.result()
        batched_s = time.perf_counter() - t0
        shipped = backend.transport_counters()["batches_shipped"] - before
        n = len(tasks)
        return {
            "n_tasks": n,
            "batch_size": BATCH_SIZE,
            "batches_shipped": shipped,
            "per_task_rps": n / per_task_s,
            "batched_rps": n / batched_s,
        }
    finally:
        backend.close()
        svc.close()


# ---------------------------------------------------------------------------
# Delta scaling: state traffic follows update size, not synopsis size
# ---------------------------------------------------------------------------


def run_delta_scaling(scale: Scale, matrix) -> dict:
    parts = split_ratings(matrix, N_SHARDS)
    svc = AccuracyTraderService(CFAdapter(), parts, config=CONFIG,
                                i_max=I_MAX)
    loadgen = make_loadgen(matrix)
    env = as_envelope(loadgen.request_factory(0, np.random.default_rng(0)),
                      DEADLINE_S)
    record_ids = CFAdapter().record_ids(parts[0])
    backend = RemoteBackend(n_workers=1)

    def component0_ref(tasks):
        return next(t.state_ref for t in tasks if t.component == 0)

    try:
        tasks = svc.build_tasks(env, clocks=sim_clocks(N_SHARDS))
        backend.run_tasks(tasks)
        base = backend.transport_counters()
        full_per_component = base["state_full_bytes"] / N_SHARDS
        prev = base
        prev_ref = component0_ref(tasks)
        prev_blob = pickle.dumps(prev_ref.resolve(), PICKLE_PROTOCOL)
        points = []
        for k in scale.edit_sizes:
            svc.change_points(0, parts[0],
                              np.asarray(record_ids[:k]))
            tasks = svc.build_tasks(env, clocks=sim_clocks(N_SHARDS))
            backend.run_tasks(tasks)
            cur = backend.transport_counters()
            # What a CDC-only wire would have shipped for the same
            # transition (the byte delta between the parent's own
            # serialized snapshots, framed exactly as the wire frames
            # it) — the baseline the semantic encoding displaces.
            ref = component0_ref(tasks)
            blob = pickle.dumps(ref.resolve(), PICKLE_PROTOCOL)
            cdc = compute_delta(prev_blob, blob)
            cdc_bytes = len(encode_frame(KIND_STATE, 0, (
                "delta", ref.store_id, 0, prev_ref.epoch, ref.epoch, cdc)))
            points.append({
                "edit_size": int(k),
                "semantic_publishes": cur["state_semantic_publishes"]
                - prev["state_semantic_publishes"],
                "semantic_bytes": cur["state_semantic_bytes"]
                - prev["state_semantic_bytes"],
                "delta_publishes": cur["state_delta_publishes"]
                - prev["state_delta_publishes"],
                "delta_bytes": cur["state_delta_bytes"]
                - prev["state_delta_bytes"],
                "full_publishes": cur["state_full_publishes"]
                - prev["state_full_publishes"],
                "cdc_alternative_bytes": cdc_bytes,
            })
            prev, prev_ref, prev_blob = cur, ref, blob
        return {"full_snapshot_bytes": full_per_component,
                "points": points}
    finally:
        backend.close()
        svc.close()


def run(scale: Scale) -> dict:
    ratings = generate_ratings(MovieLensConfig(
        n_users=scale.n_users, n_items=scale.n_items, density=0.2,
        n_clusters=5, cluster_spread=0.3, noise=0.3, seed=19))
    return {
        "bench": "transport",
        "workload": "cf+search",
        "scale": {"n_users": scale.n_users, "n_items": scale.n_items,
                  "n_requests": scale.n_requests,
                  "edit_sizes": list(scale.edit_sizes),
                  "n_shards": N_SHARDS},
        "identity": [check_identity_cf(ratings.matrix),
                     check_identity_search(scale)],
        "latency": run_latency(scale, ratings.matrix),
        "concurrency": run_concurrency(scale, ratings.matrix),
        "batching": run_batching(scale, ratings.matrix),
        "delta_scaling": run_delta_scaling(scale, ratings.matrix),
    }


def print_table(result: dict) -> None:
    for check in result["identity"]:
        print(f"identity [{check['workload']}]: "
              f"{check['n_requests']} requests bit-identical="
              f"{check['bit_identical']}"
              + ("" if check["update_bit_identical"] is None else
                 f", after-update bit-identical="
                 f"{check['update_bit_identical']}"))
    print("\nlatency — the same open-loop burst, in-process vs socket")
    print(f"{'tier':>11}{'reqs':>6}{'rps':>8}{'p50 ms':>8}{'p99 ms':>8}"
          f"{'wire KB/req':>13}")
    for row in result["latency"]:
        print(f"{row['tier']:>11}{row['n_requests']:>6}"
              f"{row['throughput_rps']:>8.0f}"
              f"{1e3 * row['p50_s']:>8.1f}{1e3 * row['p99_s']:>8.1f}"
              f"{row['wire_bytes_per_request'] / 1e3:>13.1f}")
    print("\nconcurrency — "
          f"{result['concurrency'][0]['n_clients']} closed-loop clients")
    print(f"{'tier':>20}{'reqs':>6}{'rps':>8}{'p50 ms':>8}{'p99 ms':>8}")
    for row in result["concurrency"]:
        print(f"{row['tier']:>20}{row['n_requests']:>6}"
              f"{row['throughput_rps']:>8.0f}"
              f"{1e3 * row['p50_s']:>8.2f}{1e3 * row['p99_s']:>8.2f}")
    batching = result["batching"]
    print(f"\nbatch framing — {batching['n_tasks']} tasks, "
          f"batch size {batching['batch_size']} "
          f"({batching['batches_shipped']} frames)")
    print(f"  per-task {batching['per_task_rps']:>8.0f} tasks/s   "
          f"batched {batching['batched_rps']:>8.0f} tasks/s")
    delta = result["delta_scaling"]
    full_kb = delta["full_snapshot_bytes"] / 1e3
    print(f"\ndelta scaling — full snapshot {full_kb:.0f} KB/component")
    for point in delta["points"]:
        shipped = point["semantic_bytes"] + point["delta_bytes"]
        kind = "semantic" if point["semantic_publishes"] else "cdc"
        ratio = shipped / delta["full_snapshot_bytes"]
        print(f"  edit {point['edit_size']:>4} records -> "
              f"{shipped / 1e3:>7.1f} KB on the wire as {kind:<8} "
              f"({ratio:.0%} of a full snapshot; cdc alternative "
              f"{point['cdc_alternative_bytes'] / 1e3:.1f} KB)")


def check(result: dict) -> list[str]:
    failures = []
    for identity in result["identity"]:
        if not identity["bit_identical"]:
            failures.append(f"{identity['workload']}: socket cluster not "
                            "bit-identical to in-process")
        if identity["update_bit_identical"] is False:
            failures.append(f"{identity['workload']}: update broke "
                            "bit-identity over the wire")
    tiers = {row["tier"]: row for row in result["latency"]}
    if tiers["socket"]["wire_bytes"] <= 0:
        failures.append("socket tier reported no bytes on the wire")
    if tiers["in_process"]["n_requests"] != tiers["socket"]["n_requests"]:
        failures.append("tiers served different request counts")
    conc = {row["tier"]: row for row in result["concurrency"]}
    if conc["socket_multiplexed"]["throughput_rps"] < \
            conc["socket_serialized"]["throughput_rps"]:
        failures.append(
            "multiplexed links slower than serialized under concurrent "
            f"load ({conc['socket_multiplexed']['throughput_rps']:.0f} vs "
            f"{conc['socket_serialized']['throughput_rps']:.0f} rps)")
    if result.get("scale_name") == "full":
        # The tentpole claim: pipelining closes the socket-vs-in-process
        # p99 gap by at least 2x vs one-RPC-at-a-time links.
        gap_serial = conc["socket_serialized"]["p99_s"] - \
            conc["in_process"]["p99_s"]
        gap_mux = max(conc["socket_multiplexed"]["p99_s"]
                      - conc["in_process"]["p99_s"], 0.0)
        if gap_serial < 2 * gap_mux:
            failures.append(
                "multiplexing narrowed the socket p99 gap by "
                f"{gap_serial / gap_mux if gap_mux else float('inf'):.1f}x "
                "(< 2x required)")
    batching = result["batching"]
    if batching["batched_rps"] < batching["per_task_rps"]:
        failures.append(
            f"batched dispatch slower than per-task "
            f"({batching['batched_rps']:.0f} vs "
            f"{batching['per_task_rps']:.0f} tasks/s)")
    if batching["batches_shipped"] < 1:
        failures.append("no KIND_BATCH frames were shipped")
    delta = result["delta_scaling"]
    full = delta["full_snapshot_bytes"]
    points = delta["points"]
    for point in points:
        shipped = point["semantic_bytes"] + point["delta_bytes"]
        if point["semantic_publishes"] + point["delta_publishes"] < 1:
            failures.append(f"edit {point['edit_size']}: epoch did not "
                            "travel as a delta")
        if point["full_publishes"] > 0:
            failures.append(f"edit {point['edit_size']}: fell back to a "
                            "full snapshot")
        if shipped >= full:
            failures.append(f"edit {point['edit_size']}: delta "
                            f"({shipped}) not below the full "
                            f"snapshot ({full:.0f})")
    if points and points[0]["semantic_publishes"] < 1:
        failures.append("smallest edit did not travel semantically")
    for point in points:
        if point["semantic_publishes"] and \
                point["semantic_bytes"] >= point["cdc_alternative_bytes"]:
            failures.append(
                f"edit {point['edit_size']}: semantic delta "
                f"({point['semantic_bytes']}) not below the CDC "
                f"alternative ({point['cdc_alternative_bytes']})")

    def shipped_bytes(p):
        return p["semantic_bytes"] + p["delta_bytes"]

    if len(points) > 1 and \
            shipped_bytes(points[0]) >= shipped_bytes(points[-1]):
        failures.append("delta bytes do not grow with update size: "
                        f"{[shipped_bytes(p) for p in points]}")
    if points and shipped_bytes(points[0]) > 0.6 * full:
        failures.append(f"smallest edit ships {shipped_bytes(points[0])} "
                        f"bytes, not small vs the {full:.0f}-byte snapshot")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--toy", action="store_true",
                        help="tiny configuration for CI smoke runs")
    parser.add_argument("--out", default="BENCH_transport.json",
                        help="path of the machine-readable result")
    args = parser.parse_args(argv)

    t0 = time.monotonic()
    result = run(TOY if args.toy else FULL)
    result["scale_name"] = "toy" if args.toy else "full"
    result["elapsed_s"] = time.monotonic() - t0
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2)
    print_table(result)
    print(f"\nwrote {args.out}")

    failures = check(result)
    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
