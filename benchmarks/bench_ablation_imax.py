"""Ablation: the i_max cutoff (the paper's "top 40% ranked groups" rule).

Sweeps the refinement cap and reports the accuracy loss when the deadline
never binds.  Expected: loss falls steeply until ~40% (Figure 4(b): the
top 40% of ranked groups hold ~99% of the actual top-10) and is nearly
flat beyond — the justification for i_max.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.formatting import format_table
from repro.experiments.search_service import (
    SearchAccuracyService,
    SearchServiceConfig,
)


def test_ablation_imax(benchmark):
    fractions = (0.1, 0.2, 0.4, 0.6, 1.0)
    rows = []

    def sweep():
        rows.clear()
        for frac in fractions:
            svc = SearchAccuracyService(SearchServiceConfig(
                n_partitions=4, docs_per_partition=400, n_topics=12,
                n_requests=30, synopsis_ratio=12.0,
                i_max_fraction=frac, svd_iters=25, seed=3))
            n, p = svc.config.n_requests, svc.n_partitions
            loss = svc.at_loss_percent(np.ones((n, p)))  # full cap used
            rows.append([100 * frac, loss])
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(["i_max (% of groups)", "loss at full budget (%)"],
                       rows, title="Ablation: refinement cap i_max"))

    losses = [r[1] for r in rows]
    # Monotone improvement with a widening cap...
    assert all(losses[i] >= losses[i + 1] - 2.0 for i in range(len(losses) - 1))
    # ...and diminishing returns past 40%: the 40->100% gain is much
    # smaller than the 10->40% gain.
    gain_early = losses[0] - losses[2]
    gain_late = losses[2] - losses[4]
    assert gain_early > gain_late
