"""Figure 7: 24-hour search workloads — arrival rates and p99.9 latency.

Paper shapes: (a) diurnal rates with a night trough and evening peak;
(b-d) request reissue has the lowest tails in the light-load hours
(roughly hours 2-8), AccuracyTrader has the lowest everywhere else, and
the Basic approach is never better than both.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.daily import run_daily


def test_fig7(benchmark, daily_result, search_profile, bench_scale):
    benchmark.pedantic(
        run_daily,
        kwargs=dict(profile=search_profile, scale=bench_scale,
                    peak_rate=100.0, hours=(5, 22), seed=99),
        rounds=1, iterations=1)

    r = daily_result
    print()
    print(r.text())
    rates = np.array(r.rates)
    # (a) diurnal shape.
    assert rates.argmin() in (3, 4, 5)
    assert rates.argmax() in (20, 21, 22)
    # (b-d) who wins where.
    best = r.best_technique_hours()
    print("\nbest technique per hour:", best)
    trough = [h for h in best["reissue"] if 2 <= h <= 9]
    assert trough, "reissue should win some light-load hour"
    peak_hours = [r.hours.index(h) for h in range(18, 25)]
    for i in peak_hours:
        assert r.tails_ms["at"][i] <= r.tails_ms["basic"][i]
        assert r.tails_ms["at"][i] <= r.tails_ms["reissue"][i]
