"""Tracing overhead: traced vs untraced serving throughput.

The telemetry plane (:mod:`repro.serving.telemetry`) is on by default —
every envelope roots a trace and every hop records spans — so its cost
must stay in the noise.  This bench serves an identical closed-loop CF
request stream through the same service twice per round, once with the
global tracer enabled (sample rate 1.0: every request fully traced) and
once with tracing disabled, alternating the order within each round so
thermal / scheduling drift cancels.  Throughput medians across rounds
give the overhead percentage CI gates at <= 5%.

Emits machine-readable ``BENCH_tracing.json`` (per-round throughput,
medians, overhead, spans per request) so CI can smoke-run it at toy
scale and downstream tooling can diff runs.

Run:  PYTHONPATH=src python benchmarks/bench_tracing_overhead.py [--toy]
          [--out BENCH_tracing.json]
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from dataclasses import dataclass

from repro.core.adapters import CFAdapter, CFRequest
from repro.core.builder import SynopsisConfig
from repro.core.service import AccuracyTraderService
from repro.serving import (
    IOStallAdapter,
    LoadGenerator,
    ServingHarness,
    ThreadPoolBackend,
    Tracer,
    use_tracer,
)
from repro.workloads.movielens import MovieLensConfig, generate_ratings
from repro.workloads.partitioning import split_ratings

N_COMPONENTS = 2
STALL_S = 1e-3          # per synopsis/group fetch: fast storage access
DEADLINE_S = 10.0       # generous: identical refinement in both modes


@dataclass
class Scale:
    n_users: int
    n_items: int
    n_requests: int
    n_rounds: int


FULL = Scale(n_users=400, n_items=60, n_requests=64, n_rounds=9)
TOY = Scale(n_users=96, n_items=30, n_requests=40, n_rounds=7)


def make_loadgen(matrix) -> LoadGenerator:
    def factory(i, rng):
        ids, vals = matrix.user_ratings(i % matrix.n_users)
        targets = [t for t in range(5) if t not in set(ids.tolist())] or [0]
        return CFRequest(active_items=ids, active_vals=vals,
                         target_items=targets)

    return LoadGenerator(factory, seed=42)


def build_service(scale: Scale) -> AccuracyTraderService:
    ratings = generate_ratings(MovieLensConfig(
        n_users=scale.n_users, n_items=scale.n_items, density=0.25,
        n_clusters=5, cluster_spread=0.3, noise=0.3, seed=31))
    parts = split_ratings(ratings.matrix, N_COMPONENTS)
    adapter = IOStallAdapter(CFAdapter(), synopsis_stall=STALL_S,
                             group_stall=STALL_S)
    return AccuracyTraderService(
        adapter, parts,
        config=SynopsisConfig(n_iters=25, target_ratio=12.0, seed=31))


def measure(harness: ServingHarness, load, traced: bool,
            keep_tracer: list | None = None) -> float:
    """Closed-loop throughput (req/s) with tracing on or off."""
    tracer = Tracer(enabled=traced)
    with use_tracer(tracer):
        stats = harness.run_closed_loop(load)
    if keep_tracer is not None:
        keep_tracer.append(tracer)
    return stats.throughput()


def run(scale: Scale) -> dict:
    service = build_service(scale)
    loadgen = make_loadgen(service.partitions[0])
    # One client: requests serialize, so each round's wall time is a
    # sum of per-request latencies — far less scheduler noise than
    # concurrent clients, which matters for a <= 5% CI gate.
    load = loadgen.closed_loop(n_clients=1, n_requests=scale.n_requests)

    with ThreadPoolBackend(max_workers=2 * N_COMPONENTS) as backend:
        harness = ServingHarness(service, deadline=DEADLINE_S,
                                 backend=backend)
        # Warm both paths (JIT-free, but caches/allocators settle).
        measure(harness, load, traced=True)
        measure(harness, load, traced=False)

        traced_rps, untraced_rps = [], []
        tracers: list = []
        for rnd in range(scale.n_rounds):
            # Alternate order each round so drift cancels.
            if rnd % 2 == 0:
                traced_rps.append(measure(harness, load, True, tracers))
                untraced_rps.append(measure(harness, load, False))
            else:
                untraced_rps.append(measure(harness, load, False))
                traced_rps.append(measure(harness, load, True, tracers))

    traced_med = statistics.median(traced_rps)
    untraced_med = statistics.median(untraced_rps)
    # Overhead from the median of *paired* per-round ratios: each
    # round's traced and untraced runs are adjacent in time, so the
    # ratio cancels machine drift a cross-round median would not.
    ratios = [t / u for t, u in zip(traced_rps, untraced_rps)]
    overhead_pct = 100.0 * (1.0 - statistics.median(ratios))

    last = tracers[-1]
    trace_ids = last.trace_ids()
    span_counts = [len(last.spans_of(t)) for t in trace_ids]
    return {
        "bench": "tracing_overhead",
        "workload": "cf",
        "scale": {"n_users": scale.n_users, "n_items": scale.n_items,
                  "n_requests": scale.n_requests,
                  "n_rounds": scale.n_rounds},
        "traced_rps": traced_rps,
        "untraced_rps": untraced_rps,
        "traced_rps_median": traced_med,
        "untraced_rps_median": untraced_med,
        "overhead_pct": overhead_pct,
        "n_traces": len(trace_ids),
        "spans_per_request": (sum(span_counts) / len(span_counts)
                              if span_counts else 0.0),
    }


def print_table(result: dict) -> None:
    print("tracing overhead — CF closed loop, sample rate 1.0 vs off")
    print(f"{'round':>6}{'traced req/s':>14}{'untraced req/s':>16}")
    for i, (t, u) in enumerate(zip(result["traced_rps"],
                                   result["untraced_rps"])):
        print(f"{i:>6}{t:>14.1f}{u:>16.1f}")
    print(f"median: traced {result['traced_rps_median']:.1f} req/s, "
          f"untraced {result['untraced_rps_median']:.1f} req/s -> "
          f"{result['overhead_pct']:+.2f}% overhead")
    print(f"{result['n_traces']} traces, "
          f"{result['spans_per_request']:.1f} spans/request")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--toy", action="store_true",
                        help="tiny configuration for CI smoke runs")
    parser.add_argument("--out", default="BENCH_tracing.json",
                        help="path of the machine-readable result")
    args = parser.parse_args(argv)

    result = run(TOY if args.toy else FULL)
    result["scale_name"] = "toy" if args.toy else "full"
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2)
    print_table(result)
    print(f"\nwrote {args.out}")

    if result["n_traces"] == 0 or result["spans_per_request"] <= 0:
        print("error: traced runs recorded no spans", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
