"""Figure 5: per-session p99.9 component latency, search workloads,
hours 9 (increasing), 10 (steady) and 24 (decreasing).

Paper shapes: the Basic approach has the highest tails, growing with
load within hour 9; request reissue sits clearly below Basic; the
AccuracyTrader rows are flat near the deadline in all three hours.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.hourly import run_hour


def test_fig5(benchmark, hourly_results, search_profile, bench_scale):
    # Time one fresh session-level run (hour 10, 2 sessions).
    benchmark.pedantic(
        run_hour, args=(10,),
        kwargs=dict(profile=search_profile, scale=bench_scale,
                    n_sessions=2, peak_rate=100.0, seed=99),
        rounds=1, iterations=1)

    print()
    for hour in (9, 10, 24):
        r = hourly_results[hour]
        print(r.text())
        print()
        basic = np.array(r.tails_ms["basic"])
        at = np.array(r.tails_ms["at"])
        reissue = np.array(r.tails_ms["reissue"])
        # Basic worst on average, AT flat near the deadline.
        assert basic.mean() >= reissue.mean() * 0.8
        assert np.all(at < 300.0)
        assert at.std() < 100.0

    # Hour 9 ramps: basic's tail in the last sessions exceeds the first.
    h9 = hourly_results[9]
    assert h9.session_rates[-1] > h9.session_rates[0]
