"""Async serving tier: event-loop concurrency vs the thread-pool cap.

Three measurements on the CF workload (plus a search cross-check):

- **concurrency headroom** — the same stall-dominated burst (every
  request parks ~0.3 s on storage stalls) served by the async tier and
  by the thread tier.  The :class:`~repro.serving.aio.
  AsyncServingHarness` holds the *entire* burst in flight on one event
  loop (``inflight_max`` ≥ 1000 at full and toy scale alike), while the
  thread harness is capped at ``max_concurrency`` blocked workers — the
  structural limit this PR removes.
- **bit-identical answers** — the async backend must change *where*
  work runs, never *what* it computes: CF and search answers through
  ``aprocess`` + ``AsyncExecutionBackend`` are compared bit-for-bit
  against ``SequentialBackend``.
- **hedged sharded run under the budget cap** — a 2-shard x 2-replica
  cluster with one straggler replica, served async with live hedged
  re-issue under the default 5% hedge budget: the realized per-run
  hedge rate must stay at or below the configured fraction.

Emits machine-readable ``BENCH_async.json`` for the CI smoke run.

Run:  PYTHONPATH=src python benchmarks/bench_async_serving.py [--toy]
          [--out BENCH_async.json]
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass

import numpy as np

from repro.core.adapters import CFAdapter, CFRequest
from repro.core.builder import SynopsisConfig
from repro.core.clock import simulated_clock_factory
from repro.core.service import AccuracyTraderService
from repro.serving import (
    AsyncExecutionBackend,
    AsyncServingHarness,
    AsyncStallAdapter,
    LoadGenerator,
    ReplicaGroup,
    SequentialBackend,
    ServingHarness,
    ShardedService,
    as_envelope,
)
from repro.strategies.reissue import ReissueStrategy
from repro.workloads.corpus import CorpusConfig, generate_corpus
from repro.workloads.movielens import MovieLensConfig, generate_ratings
from repro.workloads.partitioning import split_corpus, split_ratings

SYNOPSIS_STALL_S = 0.25   # per-request storage stall (dominates service time)
GROUP_STALL_S = 0.05
THREAD_CAP = 64           # the thread tier's max_concurrency
STRAGGLER_STALL_S = 0.08  # sharded run: slow replica's per-operation stall
FAST_STALL_S = 0.002
HEDGE_TRIGGER_S = 0.02
HEDGE_BUDGET = 0.05       # Dean & Barroso's ~5% rule (the default)
DEADLINE_S = 10.0


@dataclass
class Scale:
    n_async: int      # burst size for the async tier (>= 1000 everywhere)
    n_thread: int     # burst size for the thread tier (kept small: each
    #                   request blocks a worker for the full stall time)
    n_sharded: int
    n_users: int
    n_items: int


FULL = Scale(n_async=1500, n_thread=192, n_sharded=60,
             n_users=240, n_items=40)
TOY = Scale(n_async=1100, n_thread=96, n_sharded=40,
            n_users=96, n_items=30)

CONFIG = SynopsisConfig(n_iters=25, target_ratio=12.0, seed=31)


def make_loadgen(matrix) -> LoadGenerator:
    def factory(i, rng):
        ids, vals = matrix.user_ratings(i % matrix.n_users)
        targets = [t for t in range(5) if t not in set(ids.tolist())] or [0]
        return CFRequest(active_items=ids, active_vals=vals,
                         target_items=targets)

    return LoadGenerator(factory, seed=42)


def tier_row(tier: str, stats, extra: dict) -> dict:
    return {
        "tier": tier,
        "n_requests": stats.n_requests,
        "inflight_max": stats.inflight_max,
        "throughput_rps": stats.throughput(),
        "duration_s": stats.duration,
        "p50_s": stats.p50(),
        "p95_s": stats.p95(),
        "p99_s": stats.p99(),
        **extra,
    }


def run_tiers(scale: Scale, matrix) -> list[dict]:
    """The same stall-dominated burst through the async and thread tiers."""
    loadgen = make_loadgen(matrix)
    stall = AsyncStallAdapter(CFAdapter(), synopsis_stall=SYNOPSIS_STALL_S,
                              group_stall=GROUP_STALL_S)
    rows = []

    svc = AccuracyTraderService(stall, split_ratings(matrix, 1),
                                config=CONFIG, i_max=1)
    with svc, AsyncExecutionBackend() as backend:
        harness = AsyncServingHarness(svc, deadline=DEADLINE_S,
                                      backend=backend)
        stats = harness.run_open_loop(loadgen.fixed(np.zeros(scale.n_async)))
        rows.append(tier_row("async", stats, {"concurrency_cap": None}))

    svc = AccuracyTraderService(stall, split_ratings(matrix, 1),
                                config=CONFIG, i_max=1)
    with svc:
        # Same adapter, sync path: every stall blocks one of THREAD_CAP
        # dispatch workers, so at most THREAD_CAP requests are in flight
        # (inflight_max is measured by the harness, not assumed).
        harness = ServingHarness(svc, deadline=DEADLINE_S,
                                 max_concurrency=THREAD_CAP)
        stats = harness.run_open_loop(
            loadgen.fixed(np.zeros(scale.n_thread)))
        rows.append(tier_row("thread", stats,
                             {"concurrency_cap": THREAD_CAP}))
    return rows


def check_bit_identical(scale: Scale, matrix) -> dict:
    """Async answers vs SequentialBackend, bit for bit, both workloads."""
    import asyncio

    clocks = simulated_clock_factory(400.0)
    outcome = {}

    cf_svc = AccuracyTraderService(CFAdapter(), split_ratings(matrix, 4),
                                   config=CONFIG)
    loadgen = make_loadgen(matrix)
    ok = True
    with cf_svc, AsyncExecutionBackend() as backend:
        for i in range(4):
            request = loadgen.request_factory(i, np.random.default_rng(i))
            base = cf_svc.serve(as_envelope(request, 0.05),
                                clocks=[clocks(c) for c in range(4)],
                                backend=SequentialBackend()).answer
            ans = asyncio.run(cf_svc.aserve(
                as_envelope(request, 0.05),
                clocks=[clocks(c) for c in range(4)],
                backend=backend)).answer
            ok &= (ans.numer == base.numer and ans.denom == base.denom)
    outcome["cf"] = bool(ok)

    corpus = generate_corpus(CorpusConfig(n_docs=160, n_topics=8,
                                          vocab_size=1600, seed=13))
    from repro.core.adapters import SearchAdapter, SearchQuery

    search_svc = AccuracyTraderService(
        SearchAdapter(), split_corpus(corpus.partition, 4),
        config=SynopsisConfig(n_iters=25, target_ratio=20.0, seed=7),
        i_max_fraction=0.4)
    query = SearchQuery(terms=corpus.partition.tokens_of(0)[:2], k=10)
    ok = True
    with search_svc, AsyncExecutionBackend() as backend:
        base = search_svc.serve(as_envelope(query, 0.05),
                                clocks=[clocks(c) for c in range(4)],
                                backend=SequentialBackend()).answer
        ans = asyncio.run(search_svc.aserve(
            as_envelope(query, 0.05),
            clocks=[clocks(c) for c in range(4)],
            backend=backend)).answer
        ok &= ([(h.doc_id, h.score) for h in ans]
               == [(h.doc_id, h.score) for h in base])
    outcome["search"] = bool(ok)
    return outcome


def run_sharded_async(scale: Scale, matrix) -> dict:
    """Async hedged routing with the default 5% hedge budget enforced."""
    parts = split_ratings(matrix, 2)

    def replica(slow: bool, part) -> AccuracyTraderService:
        stall = STRAGGLER_STALL_S if slow else FAST_STALL_S
        return AccuracyTraderService(
            AsyncStallAdapter(CFAdapter(), synopsis_stall=stall,
                              group_stall=stall),
            [part], config=CONFIG, i_max=2)

    shards = [
        ReplicaGroup([replica(True, parts[0]), replica(False, parts[0])]),
        ReplicaGroup([replica(False, parts[1]), replica(False, parts[1])]),
    ]
    loadgen = make_loadgen(matrix)
    load = loadgen.fixed(np.arange(scale.n_sharded) / 50.0)
    with AsyncExecutionBackend() as backend:
        svc = ShardedService(
            shards, backend=backend,
            hedge=ReissueStrategy(100.0,
                                  initial_expected_latency=HEDGE_TRIGGER_S),
            hedge_budget=HEDGE_BUDGET)
        with svc:
            harness = AsyncServingHarness(svc, deadline=DEADLINE_S,
                                          backend=backend)
            stats = harness.run_open_loop(load)
    return {
        "n_requests": stats.n_requests,
        "shard_calls": stats.shard_calls,
        "hedges_issued": stats.hedges_issued,
        "hedge_wins": stats.hedge_wins,
        "hedge_rate": stats.hedge_rate(),
        "hedge_budget": HEDGE_BUDGET,
        "p50_s": stats.p50(),
        "p99_s": stats.p99(),
    }


def run(scale: Scale) -> dict:
    ratings = generate_ratings(MovieLensConfig(
        n_users=scale.n_users, n_items=scale.n_items, density=0.25,
        n_clusters=5, cluster_spread=0.3, noise=0.3, seed=31))
    return {
        "bench": "async_serving",
        "workload": "cf+search",
        "scale": {"n_async": scale.n_async, "n_thread": scale.n_thread,
                  "n_sharded": scale.n_sharded,
                  "n_users": scale.n_users, "n_items": scale.n_items},
        "stalls_s": {"synopsis": SYNOPSIS_STALL_S, "group": GROUP_STALL_S},
        "tiers": run_tiers(scale, ratings.matrix),
        "bit_identical": check_bit_identical(scale, ratings.matrix),
        "sharded_async": run_sharded_async(scale, ratings.matrix),
    }


def print_table(result: dict) -> None:
    print("async serving — stall-dominated burst, CF, 1 component")
    print(f"{'tier':>8}{'reqs':>7}{'inflight':>10}{'req/s':>9}"
          f"{'p50 ms':>9}{'p99 ms':>9}")
    for row in result["tiers"]:
        print(f"{row['tier']:>8}{row['n_requests']:>7}"
              f"{row['inflight_max']:>10}{row['throughput_rps']:>9.0f}"
              f"{1e3 * row['p50_s']:>9.0f}{1e3 * row['p99_s']:>9.0f}")
    print("bit-identical vs sequential:", result["bit_identical"])
    sharded = result["sharded_async"]
    print(f"sharded async hedged: {sharded['hedges_issued']} hedges / "
          f"{sharded['shard_calls']} shard calls "
          f"(rate {sharded['hedge_rate']:.3f} <= "
          f"budget {sharded['hedge_budget']})")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--toy", action="store_true",
                        help="tiny configuration for CI smoke runs")
    parser.add_argument("--out", default="BENCH_async.json",
                        help="path of the machine-readable result")
    args = parser.parse_args(argv)

    result = run(TOY if args.toy else FULL)
    result["scale_name"] = "toy" if args.toy else "full"
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2)
    print_table(result)
    print(f"\nwrote {args.out}")

    failures = []
    async_row = next(r for r in result["tiers"] if r["tier"] == "async")
    if async_row["inflight_max"] < 1000:
        failures.append(
            f"async tier held only {async_row['inflight_max']} in flight")
    if not all(result["bit_identical"].values()):
        failures.append(f"bit-identity broken: {result['bit_identical']}")
    sharded = result["sharded_async"]
    if sharded["hedge_rate"] > sharded["hedge_budget"]:
        failures.append(
            f"hedge rate {sharded['hedge_rate']:.3f} exceeds the "
            f"{sharded['hedge_budget']} budget")
    if sharded["hedges_issued"] < 1:
        failures.append("no hedges were issued in the sharded run")
    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
