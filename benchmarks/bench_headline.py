"""The abstract's headline numbers, measured vs paper.

Paper: AccuracyTrader reduces tail latency >40x vs exact-result
techniques with accuracy losses <7%, and reduces accuracy losses >13x vs
partial execution at the same latency (per-service figures: 133.38x /
42.72x latency, 1.97% / 6.31% loss, 15.12x / 13.85x loss reduction).
"""

from __future__ import annotations

from repro.experiments.headline import compute_headline


def test_headline(benchmark, cf_tables_result, daily_result):
    head = benchmark.pedantic(compute_headline,
                              args=(cf_tables_result, daily_result),
                              rounds=1, iterations=1)
    print()
    print(head.text())

    # The abstract's claims, as inequalities on our measurements.  The
    # latency reductions exceed the paper's (our unstable Basic/Reissue
    # queues grow for the whole session); the CF accuracy claims hold as
    # stated; the search AT loss runs ~1.5x the paper's 6.31% and the
    # search loss-reduction ratio is correspondingly smaller — a
    # consequence of the calibrated per-round framework overhead plus
    # depth variance under overload (see EXPERIMENTS.md, deviations).
    assert head.cf_latency_reduction > 40.0
    assert head.search_latency_reduction > 40.0
    assert head.cf_at_loss_percent < 7.0
    assert head.search_at_loss_percent < 13.0
    assert head.cf_loss_reduction > 13.0
    assert head.search_loss_reduction > 4.0
