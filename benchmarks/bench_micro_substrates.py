"""Micro-benchmarks of the hot substrate operations.

These are genuine multi-round pytest-benchmark measurements (unlike the
experiment benches, which time one full run) and guard against
performance regressions in the paths the simulators and the synopsis
pipeline hammer: R-tree insertion, STR bulk loading, Pearson weighting,
TF-IDF scoring, Funk-SVD epochs and the FIFO fan-out recurrence.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.fanout import FanoutSimulator
from repro.cluster.topology import ClusterSpec
from repro.recommender.similarity import pearson
from repro.rtree.bulk import str_bulk_load
from repro.rtree.tree import RTree
from repro.search.index import InvertedIndex
from repro.search.scoring import score_query
from repro.strategies.basic import BasicStrategy
from repro.svd.incremental import FunkSVD
from repro.util.rng import make_rng


@pytest.fixture(scope="module")
def points():
    return make_rng(0, "micro").random((2000, 3))


def test_rtree_insert_2000_points(benchmark, points):
    def build():
        tree = RTree(max_entries=8)
        for i, p in enumerate(points):
            tree.insert_point(i, p)
        return tree

    tree = benchmark(build)
    assert len(tree) == 2000


def test_rtree_bulk_load_2000_points(benchmark, points):
    tree = benchmark(str_bulk_load, points, max_entries=8)
    assert len(tree) == 2000


def test_pearson_pair(benchmark):
    rng = make_rng(1, "micro")
    items = np.sort(rng.choice(1000, size=60, replace=False))
    a = rng.uniform(1, 5, 60)
    b = rng.uniform(1, 5, 60)
    w = benchmark(pearson, items, a, items, b)
    assert -1.0 <= w <= 1.0


def test_tfidf_score_query(benchmark):
    rng = make_rng(2, "micro")
    idx = InvertedIndex()
    for d in range(1000):
        idx.add_document(d, [f"w{int(x)}" for x in rng.integers(0, 500, 80)])
    scores = benchmark(score_query, idx, ["w3", "w17", "w123"])
    assert scores


def test_funk_svd_fit(benchmark):
    rng = make_rng(3, "micro")
    rows, cols = np.nonzero(rng.random((500, 100)) < 0.1)
    vals = rng.uniform(1, 5, rows.size)

    def fit():
        return FunkSVD(n_dims=3, n_iters=20, seed=0).fit(
            rows, cols, vals, n_rows=500, n_cols=100)

    model = benchmark(fit)
    assert model.row_factors.shape == (500, 3)


def test_fanout_recurrence(benchmark):
    cluster = ClusterSpec(n_components=16, n_nodes=4, base_speed=1e5, seed=0)
    sim = FanoutSimulator(cluster)
    arrivals = np.sort(make_rng(4, "micro").random(2000) * 60.0)
    stats = benchmark(sim.run, arrivals, BasicStrategy(1000.0))
    assert stats.n_requests == 2000
