"""Figure 6: per-session accuracy losses, search workloads, hours 9/10/24.

Paper shapes: losses of both approximate techniques fluctuate with the
request arrival rate; AccuracyTrader's losses are much smaller and far
less load-sensitive than partial execution's.
"""

from __future__ import annotations

import numpy as np


def test_fig6(benchmark, hourly_results, search_service):
    n, p = search_service.config.n_requests, search_service.n_partitions
    benchmark.pedantic(search_service.at_loss_percent,
                       args=(np.full((n, p), 0.5),), rounds=1, iterations=1)

    print()
    all_pe, all_at = [], []
    for hour in (9, 10, 24):
        r = hourly_results[hour]
        pe = np.array(r.losses["partial"])
        at = np.array(r.losses["at"])
        all_pe.append(pe)
        all_at.append(at)
        print(f"hour {hour}: partial loss {pe.mean():6.2f}% (+/-{pe.std():.2f})  "
              f"AT loss {at.mean():5.2f}% (+/-{at.std():.2f})")
    all_pe = np.concatenate(all_pe)
    all_at = np.concatenate(all_at)
    assert all_at.mean() < all_pe.mean(), "AT loses less accuracy overall"
    assert all_at.std() <= all_pe.std() + 1.0, \
        "AT is less load-sensitive than partial execution"
