"""Table 2: accuracy losses (%), CF workloads.

Paper reference rows (arrival rates 20 / 40 / 60 / 80 / 100 req/s):

    Partial execution  0.26   4.50   23.39   81.48   99.56
    AccuracyTrader     0.08   0.70    1.59    2.69    4.82

Shapes: both grow with load; AccuracyTrader stays in single digits while
partial execution collapses once most components miss the deadline.
"""

from __future__ import annotations

import numpy as np


def test_table2(benchmark, cf_tables_result, cf_service):
    # Time one accuracy evaluation (the at-depth replay on the substrate).
    n, p = cf_service.config.n_requests, cf_service.n_partitions
    benchmark.pedantic(cf_service.at_rmse,
                       args=(np.full((n, p), 0.5),), rounds=1, iterations=1)

    r = cf_tables_result
    print()
    print(r.table2_text())

    i100 = r.rates.index(100)
    assert r.loss_percent["at"][i100] < 10.0, \
        "AT loss stays in single digits at peak load (paper: 4.82%)"
    assert r.loss_percent["partial"][i100] > 5 * r.loss_percent["at"][i100], \
        "partial execution collapses at peak load"
    # Both rows grow (weakly) with load.
    assert r.loss_percent["partial"][i100] >= r.loss_percent["partial"][0]
    assert r.loss_percent["at"][i100] >= r.loss_percent["at"][0]
