"""Ablation: correlation-aware ranking vs processing groups in random order.

The heart of AccuracyTrader is *which* data gets refined first.  This
ablation refines the same number of groups either best-first (by
synopsis-estimated correlation) or in random order, and compares top-10
losses.  Expected: at small depths, ranked refinement loses several times
less accuracy than unranked — the Figure 4 property turned into an
end-to-end win.
"""

from __future__ import annotations

import numpy as np

from repro.core.processor import refine_to_depth
from repro.experiments.formatting import format_table
from repro.experiments.search_service import (
    SearchAccuracyService,
    SearchServiceConfig,
)
from repro.search.engine import SearchHit, merge_topk
from repro.search.metrics import topk_overlap
from repro.util.rng import make_rng


def _random_order_refine(adapter, partition, synopsis, request, depth, rng):
    """refine_to_depth with a shuffled (accuracy-blind) group order."""
    state, correlations = adapter.initial_result(synopsis, request)
    order = rng.permutation(synopsis.n_aggregated)
    for g in order[: min(depth, synopsis.n_aggregated)]:
        state = adapter.refine(partition, synopsis, int(g), request, state)
    return adapter.finalize(state, request)


def test_ablation_ranking(benchmark):
    svc = SearchAccuracyService(SearchServiceConfig(
        n_partitions=4, docs_per_partition=400, n_topics=12,
        n_requests=30, synopsis_ratio=12.0, svd_iters=25, seed=3))
    rng = make_rng(11, "ablation-ranking")
    depth_fracs = (0.1, 0.2, 0.4)
    rows = []

    def run():
        rows.clear()
        for frac in depth_fracs:
            ranked_losses, random_losses = [], []
            for r, request in enumerate(svc.requests):
                actual = svc.exact_topk(r)
                ranked_hits, random_hits = [], []
                for p, (part, syn) in enumerate(zip(svc.partitions,
                                                    svc.synopses)):
                    depth = max(1, int(round(frac * syn.n_aggregated)))
                    h1 = refine_to_depth(svc.adapter, part, syn, request, depth)
                    h2 = _random_order_refine(svc.adapter, part, syn, request,
                                              depth, rng)
                    gid = svc._global_id
                    ranked_hits.append([SearchHit.make(gid(p, h.doc_id), h.score)
                                        for h in h1])
                    random_hits.append([SearchHit.make(gid(p, h.doc_id), h.score)
                                        for h in h2])
                k = request.k
                ranked_ids = [h.doc_id for h in merge_topk(ranked_hits, k)]
                random_ids = [h.doc_id for h in merge_topk(random_hits, k)]
                ranked_losses.append(100 * (1 - topk_overlap(ranked_ids, actual, k=k)))
                random_losses.append(100 * (1 - topk_overlap(random_ids, actual, k=k)))
            rows.append([100 * frac, float(np.mean(ranked_losses)),
                         float(np.mean(random_losses))])
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        ["depth (% of groups)", "ranked loss (%)", "random-order loss (%)"],
        rows, title="Ablation: correlation ranking vs random refinement order"))

    for frac, ranked, random_ in rows:
        assert ranked < random_, \
            f"ranked refinement must beat random order at depth {frac}%"
    # At the paper's 40% depth the gap should be decisive (>=2x).
    assert rows[-1][2] > 2.0 * max(rows[-1][1], 1.0)
