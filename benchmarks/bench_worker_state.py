"""State distribution: persistent workers vs per-task snapshot pickling.

The paper's serving trick keeps each component answering from a small
``(partition, synopsis)`` snapshot — but the vanilla process pool
re-pickles that snapshot into **every task**, so state-distribution cost
scales with request rate.  The epoch-versioned state plane fixes the
scaling: ``PersistentProcessBackend`` ships each snapshot to its workers
once per **update epoch** and per task sends only a detached
``(store, component, epoch)`` ref.

Two measurements, emitted as machine-readable ``BENCH_worker.json``:

- **backends × update rate** — the same open-loop burst with a steady
  stream of concurrent ``change_points`` updates, served by the vanilla
  ``process`` backend and by ``persistent``.  Payload accounting comes
  from ``ServingRunStats`` (``task_bytes`` / ``state_bytes`` /
  ``bytes_per_request``): vanilla ships state O(requests); persistent
  ships it O(updates) — orders of magnitude fewer bytes per request.
- **live rebalance bit-identity** — a sharded CF cluster and a sharded
  search cluster each move records between live shards via
  ``ShardedService.rebalance()``:  (a) requests dispatched *before* the
  move drain *after* it with answers bit-identical to pre-move answers
  (epoch pinning), and (b) the post-move cluster answers bit-identically
  to one built cold over the new map (no state drift).

Run:  PYTHONPATH=src python benchmarks/bench_worker_state.py [--toy]
          [--out BENCH_worker.json]
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass

import numpy as np

from repro.core.adapters import CFAdapter, CFRequest, SearchAdapter, \
    SearchQuery
from repro.core.builder import SynopsisConfig
from repro.core.clock import SimulatedClock
from repro.core.service import AccuracyTraderService
from repro.serving import (
    LoadGenerator,
    PersistentProcessBackend,
    ProcessPoolBackend,
    SequentialBackend,
    ServingHarness,
    ShardedService,
    as_envelope,
)
from repro.workloads.corpus import CorpusConfig, generate_corpus
from repro.workloads.movielens import MovieLensConfig, generate_ratings
from repro.workloads.partitioning import make_shard_map, shard_corpus, \
    shard_ratings, split_ratings

N_COMPONENTS = 2
DEADLINE_S = 10.0
I_MAX = 4                 # cap refinement: the bench measures state
#                           distribution, not component compute
CONFIG = SynopsisConfig(n_iters=20, target_ratio=12.0, seed=19)
SEARCH_CONFIG = SynopsisConfig(n_iters=20, target_ratio=18.0, seed=19)


@dataclass
class Scale:
    n_users: int
    n_items: int
    n_requests: int
    stream_s: float           # open-loop arrival spread (wall seconds)
    update_rates: tuple       # concurrent change_points per stream
    n_docs: int               # rebalance section: search corpus size


FULL = Scale(n_users=1200, n_items=100, n_requests=360, stream_s=1.8,
             update_rates=(1, 4), n_docs=240)
TOY = Scale(n_users=320, n_items=60, n_requests=80, stream_s=0.8,
            update_rates=(2,), n_docs=120)


def make_loadgen(matrix) -> LoadGenerator:
    def factory(i, rng):
        ids, vals = matrix.user_ratings(i % matrix.n_users)
        targets = [t for t in range(5) if t not in set(ids.tolist())] or [0]
        return CFRequest(active_items=ids, active_vals=vals,
                         target_items=targets)

    return LoadGenerator(factory, seed=42)


def update_schedule(scale: Scale, n_updates: int, parts):
    """``change_points`` on alternating components, evenly spread."""
    def make_update(component):
        def apply(service):
            report = service.change_points(component, parts[component],
                                           [0, 1])
            return report.n_points
        return apply

    times = (np.arange(1, n_updates + 1) / (n_updates + 1)) * scale.stream_s
    return [(float(t), make_update(i % N_COMPONENTS))
            for i, t in enumerate(times)]


def run_backends(scale: Scale, matrix) -> list[dict]:
    """The same updated burst through the vanilla and persistent pools."""
    loadgen = make_loadgen(matrix)
    rows = []
    for n_updates in scale.update_rates:
        for name, backend_cls in (("process", ProcessPoolBackend),
                                  ("persistent", PersistentProcessBackend)):
            svc = AccuracyTraderService(
                CFAdapter(), split_ratings(matrix, N_COMPONENTS),
                config=CONFIG, i_max=I_MAX)
            load = loadgen.fixed(
                np.linspace(0.0, scale.stream_s, scale.n_requests))
            with svc, backend_cls() as backend:
                harness = ServingHarness(svc, deadline=DEADLINE_S,
                                         backend=backend)
                stats = harness.run_open_loop(
                    load, updates=update_schedule(scale, n_updates,
                                                  svc.partitions))
            rows.append({
                "backend": name,
                "n_updates": n_updates,
                "n_requests": stats.n_requests,
                "tasks_shipped": stats.tasks_shipped,
                "state_publishes": stats.state_publishes,
                "task_bytes": stats.task_bytes,
                "state_bytes": stats.state_bytes,
                "bytes_per_request": stats.bytes_per_request(),
                "throughput_rps": stats.throughput(),
                "p50_s": stats.p50(),
                "p95_s": stats.p95(),
                "p99_s": stats.p99(),
            })
    return rows


# ---------------------------------------------------------------------------
# Rebalance bit-identity
# ---------------------------------------------------------------------------


def sim_clocks(n):
    return [SimulatedClock(speed=1e12) for _ in range(n)]


def build_cf_cluster(matrix, component_map) -> ShardedService:
    parts = shard_ratings(matrix, component_map)
    return ShardedService(
        [AccuracyTraderService(CFAdapter(), [p], config=CONFIG)
         for p in parts],
        component_map=component_map)


def build_search_cluster(corpus_partition, component_map) -> ShardedService:
    parts = shard_corpus(corpus_partition, component_map)
    return ShardedService(
        [AccuracyTraderService(SearchAdapter(), [p], config=SEARCH_CONFIG,
                               i_max_fraction=0.4) for p in parts],
        component_map=component_map)


def check_rebalance_cf(matrix) -> dict:
    cmap = make_shard_map(matrix.n_users, 4)
    svc = build_cf_cluster(matrix, cmap)
    loadgen = make_loadgen(matrix)
    request = loadgen.request_factory(0, np.random.default_rng(0))
    with svc:
        before = svc.serve(as_envelope(request, DEADLINE_S),
                           clocks=sim_clocks(4)).answer
        # In-flight across the move: dispatch-time tasks drained after.
        pinned = [t for s in range(4)
                  for t in svc.shards[s].replicas[0].build_tasks(
                      request, DEADLINE_S, sim_clocks(1))]
        report = svc.rebalance({0: 1, 5: 2, 9: 0})
        outcomes = SequentialBackend().run_tasks(pinned)
        drained = svc.merge([o.result for o in outcomes], request)
        pinned_ok = (drained.numer == before.numer
                     and drained.denom == before.denom)
        with build_cf_cluster(matrix, svc.component_map) as cold:
            live = svc.serve(as_envelope(request, DEADLINE_S),
                             clocks=sim_clocks(4)).answer
            coldans = cold.serve(as_envelope(request, DEADLINE_S),
                                 clocks=sim_clocks(4)).answer
        rebuild_ok = (live.numer == coldans.numer
                      and live.denom == coldans.denom)
    return {"workload": "cf", "n_moved": report.n_moved,
            "affected_components": report.affected_components,
            "pinned_bit_identical": bool(pinned_ok),
            "rebuild_bit_identical": bool(rebuild_ok)}


def check_rebalance_search(scale: Scale) -> dict:
    corpus = generate_corpus(CorpusConfig(
        n_docs=scale.n_docs, n_topics=8, vocab_size=1600, seed=13))
    cmap = make_shard_map(corpus.partition.n_docs, 3)
    svc = build_search_cluster(corpus.partition, cmap)
    query = SearchQuery(terms=corpus.partition.tokens_of(0)[:3], k=10)

    def hits(answer):
        return [(h.doc_id, h.score) for h in answer]

    with svc:
        before = svc.serve(as_envelope(query, DEADLINE_S),
                           clocks=sim_clocks(3)).answer
        pinned = [t for s in range(3)
                  for t in svc.shards[s].replicas[0].build_tasks(
                      query, DEADLINE_S, sim_clocks(1))]
        report = svc.rebalance({0: 1, 7: 2})
        outcomes = SequentialBackend().run_tasks(pinned)
        drained = svc.merge([o.result for o in outcomes], query)
        pinned_ok = hits(drained) == hits(before)
        with build_search_cluster(corpus.partition,
                                  svc.component_map) as cold:
            live = svc.serve(as_envelope(query, DEADLINE_S),
                             clocks=sim_clocks(3)).answer
            coldans = cold.serve(as_envelope(query, DEADLINE_S),
                                 clocks=sim_clocks(3)).answer
        rebuild_ok = hits(live) == hits(coldans)
    return {"workload": "search", "n_moved": report.n_moved,
            "affected_components": report.affected_components,
            "pinned_bit_identical": bool(pinned_ok),
            "rebuild_bit_identical": bool(rebuild_ok)}


def run(scale: Scale) -> dict:
    ratings = generate_ratings(MovieLensConfig(
        n_users=scale.n_users, n_items=scale.n_items, density=0.2,
        n_clusters=5, cluster_spread=0.3, noise=0.3, seed=19))
    return {
        "bench": "worker_state",
        "workload": "cf+search",
        "scale": {"n_users": scale.n_users, "n_items": scale.n_items,
                  "n_requests": scale.n_requests,
                  "update_rates": list(scale.update_rates),
                  "n_components": N_COMPONENTS},
        "backends": run_backends(scale, ratings.matrix),
        "rebalance": [check_rebalance_cf(ratings.matrix),
                      check_rebalance_search(scale)],
    }


def print_table(result: dict) -> None:
    print("state distribution — open-loop burst with concurrent updates")
    print(f"{'backend':>11}{'updates':>9}{'reqs':>6}{'ships':>7}"
          f"{'KB/req':>9}{'task KB':>9}{'state KB':>10}{'p95 ms':>8}")
    for row in result["backends"]:
        ships = (row["state_publishes"] if row["backend"] == "persistent"
                 else row["tasks_shipped"])
        print(f"{row['backend']:>11}{row['n_updates']:>9}"
              f"{row['n_requests']:>6}{ships:>7}"
              f"{row['bytes_per_request'] / 1e3:>9.1f}"
              f"{row['task_bytes'] / 1e3:>9.0f}"
              f"{row['state_bytes'] / 1e3:>10.0f}"
              f"{1e3 * row['p95_s']:>8.0f}")
    for rate in {r["n_updates"] for r in result["backends"]}:
        pair = {r["backend"]: r for r in result["backends"]
                if r["n_updates"] == rate}
        ratio = (pair["process"]["bytes_per_request"]
                 / max(pair["persistent"]["bytes_per_request"], 1.0))
        print(f"  update rate {rate}: persistent ships "
              f"{ratio:.0f}x fewer bytes per request")
    for check in result["rebalance"]:
        print(f"rebalance [{check['workload']}]: moved {check['n_moved']} "
              f"records across components {check['affected_components']}; "
              f"pinned bit-identical={check['pinned_bit_identical']}, "
              f"cold-rebuild bit-identical={check['rebuild_bit_identical']}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--toy", action="store_true",
                        help="tiny configuration for CI smoke runs")
    parser.add_argument("--out", default="BENCH_worker.json",
                        help="path of the machine-readable result")
    args = parser.parse_args(argv)

    result = run(TOY if args.toy else FULL)
    result["scale_name"] = "toy" if args.toy else "full"
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2)
    print_table(result)
    print(f"\nwrote {args.out}")

    failures = []
    for rate in {r["n_updates"] for r in result["backends"]}:
        pair = {r["backend"]: r for r in result["backends"]
                if r["n_updates"] == rate}
        ratio = (pair["process"]["bytes_per_request"]
                 / max(pair["persistent"]["bytes_per_request"], 1.0))
        if ratio < 10.0:
            failures.append(
                f"update rate {rate}: persistent only {ratio:.1f}x fewer "
                "bytes per request (want >= 10x)")
        persistent = pair["persistent"]
        if persistent["state_publishes"] > N_COMPONENTS + rate:
            failures.append(
                f"persistent published {persistent['state_publishes']} "
                f"snapshots for {rate} updates: not O(updates)")
    for check in result["rebalance"]:
        if not (check["pinned_bit_identical"]
                and check["rebuild_bit_identical"]):
            failures.append(f"rebalance bit-identity broken: {check}")
    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
