#!/usr/bin/env python
"""Lint: the serving plane must read wall-clock time through the seam.

Every latency measurement in ``src/repro/serving/`` must go through
:func:`repro.core.clock.monotonic` (or an injected clock) so that the
telemetry layer can align spans across processes and tests can
substitute deterministic clocks.  Direct ``time.time()`` /
``time.monotonic()`` reads bypass the seam and are rejected here;
``time.sleep`` and friends are fine.

Exempt: ``telemetry.py`` (defines the default clock plumbing) — the
clock seam itself lives in ``repro.core.clock``, outside the scanned
tree.

Usage::

    python tools/check_injectable_clocks.py [root]

Exits non-zero listing each offending ``file:line`` if any direct
clock read is found.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

FORBIDDEN_ATTRS = {"time", "monotonic", "monotonic_ns", "time_ns",
                   "perf_counter", "perf_counter_ns"}
EXEMPT = {"telemetry.py"}


def clock_reads(path: Path) -> list[tuple[int, str]]:
    """``(line, expression)`` for each direct stdlib clock read."""
    tree = ast.parse(path.read_text(), filename=str(path))
    hits = []
    for node in ast.walk(tree):
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "time"
                and node.attr in FORBIDDEN_ATTRS):
            hits.append((node.lineno, f"time.{node.attr}"))
    return hits


def main(argv: list[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else \
        Path(__file__).resolve().parent.parent / "src/repro/serving"
    failures = []
    for path in sorted(root.rglob("*.py")):
        if path.name in EXEMPT:
            continue
        for line, expr in clock_reads(path):
            failures.append(f"{path}:{line}: direct {expr}() read; "
                            "use repro.core.clock.monotonic")
    if failures:
        print("\n".join(failures))
        print(f"\n{len(failures)} direct clock read(s) in the serving "
              "plane; route them through repro.core.clock so telemetry "
              "and tests can inject clocks.")
        return 1
    print(f"ok: no direct stdlib clock reads under {root}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
