"""Scaled search-engine instance for coupled accuracy evaluation.

Mirror of :mod:`repro.experiments.cf_service` for the text service: a
partitioned corpus with per-partition synopses; the latency simulation's
refinement depths / completion fractions are replayed through the real
retrieval path; accuracy is the paper's top-10 overlap metric.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.adapters import SearchAdapter, SearchQuery
from repro.core.builder import SynopsisBuilder, SynopsisConfig
from repro.core.processor import refine_to_depth
from repro.core.synopsis import Synopsis
from repro.search.engine import merge_topk
from repro.search.metrics import topk_overlap
from repro.search.partition import SearchPartition
from repro.util.rng import make_rng
from repro.util.zipf import ZipfSampler
from repro.workloads.corpus import CorpusConfig, SyntheticCorpus, generate_corpus

__all__ = ["SearchServiceConfig", "SearchAccuracyService"]


@dataclass(frozen=True)
class SearchServiceConfig:
    """Size of the search accuracy substrate."""

    n_partitions: int = 8
    docs_per_partition: int = 600
    n_topics: int = 20
    n_requests: int = 80
    k: int = 10
    synopsis_ratio: float = 30.0
    i_max_fraction: float = 0.4    # the paper's top-40% refinement rule
    svd_iters: int = 30
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_partitions < 1:
            raise ValueError("need at least one partition")
        if not (0.0 < self.i_max_fraction <= 1.0):
            raise ValueError("i_max_fraction must be in (0, 1]")


class SearchAccuracyService:
    """Partitioned corpus + synopses + a fixed query workload."""

    def __init__(self, config: SearchServiceConfig | None = None):
        self.config = config if config is not None else SearchServiceConfig()
        cfg = self.config
        self.adapter = SearchAdapter()

        # Partitions share one topic model (same CorpusConfig, different
        # seeds): a query is relevant to pages in every partition, as when
        # a crawl is hash-partitioned across components.
        base = CorpusConfig(n_docs=cfg.docs_per_partition, n_topics=cfg.n_topics,
                            seed=cfg.seed)
        self.corpora: list[SyntheticCorpus] = [
            generate_corpus(base, seed=cfg.seed * 1000 + p)
            for p in range(cfg.n_partitions)
        ]
        self.partitions: list[SearchPartition] = [c.partition for c in self.corpora]

        builder = SynopsisBuilder(self.adapter, SynopsisConfig(
            n_iters=cfg.svd_iters, target_ratio=cfg.synopsis_ratio, seed=cfg.seed,
        ))
        self.synopses: list[Synopsis] = [
            builder.build(part)[0] for part in self.partitions
        ]

        self.requests: list[SearchQuery] = []
        self._build_requests()
        self._exact_cache: list[list | None] = [None] * cfg.n_requests

    # ------------------------------------------------------------------

    def _build_requests(self) -> None:
        cfg = self.config
        rng = make_rng(cfg.seed, "search-requests")
        topic_sampler = ZipfSampler(cfg.n_topics, 0.9, rng)
        for _ in range(cfg.n_requests):
            topic = int(topic_sampler.sample())
            n_terms = max(1, int(rng.poisson(1.6)) + 1)
            terms = self.corpora[0].topic_words(topic, n=n_terms, rng=rng)
            self.requests.append(SearchQuery(terms=terms, k=cfg.k))

    # ------------------------------------------------------------------

    @property
    def n_partitions(self) -> int:
        return self.config.n_partitions

    def _global_id(self, partition: int, doc_id: int) -> int:
        """Partition-local doc ids mapped into one global id space."""
        return partition * 10_000_000 + doc_id

    def exact_topk(self, r: int) -> list[int]:
        """Ground-truth global top-k for request ``r`` (cached)."""
        if self._exact_cache[r] is None:
            from repro.search.engine import SearchHit

            all_hits = []
            for p, part in enumerate(self.partitions):
                hits = self.adapter.exact(part, self.requests[r])
                all_hits.append([SearchHit.make(self._global_id(p, h.doc_id),
                                                h.score) for h in hits])
            merged = merge_topk(all_hits, self.requests[r].k)
            self._exact_cache[r] = [h.doc_id for h in merged]
        return self._exact_cache[r]

    # -- evaluation ------------------------------------------------------

    def _mean_loss(self, per_request_ids) -> float:
        losses = [
            100.0 * (1.0 - topk_overlap(ids, self.exact_topk(r),
                                        k=self.requests[r].k))
            for r, ids in enumerate(per_request_ids)
        ]
        return float(np.mean(losses))

    def at_loss_percent(self, depth_fractions: np.ndarray) -> float:
        """Mean top-k accuracy loss when partition ``p`` of request ``r``
        refined ``depth_fractions[r, p]`` of its *capped* group budget
        (cap = ``i_max_fraction`` of groups, the paper's 40% rule)."""
        from repro.search.engine import SearchHit

        cfg = self.config
        depth_fractions = np.asarray(depth_fractions, dtype=float)
        if depth_fractions.shape != (cfg.n_requests, self.n_partitions):
            raise ValueError("depth_fractions must be (n_requests, n_partitions)")
        results = []
        for r in range(cfg.n_requests):
            all_hits = []
            for p, (part, syn) in enumerate(zip(self.partitions, self.synopses)):
                cap = max(1, int(np.ceil(cfg.i_max_fraction * syn.n_aggregated)))
                depth = int(round(np.clip(depth_fractions[r, p], 0, 1) * cap))
                hits = refine_to_depth(self.adapter, part, syn,
                                       self.requests[r], depth)
                all_hits.append([SearchHit.make(self._global_id(p, h.doc_id),
                                                h.score) for h in hits])
            merged = merge_topk(all_hits, self.requests[r].k)
            results.append([h.doc_id for h in merged])
        return self._mean_loss(results)

    def partial_loss_percent(self, used_fractions: np.ndarray, seed: int = 1) -> float:
        """Mean top-k loss when only a fraction of partitions answered."""
        from repro.search.engine import SearchHit

        cfg = self.config
        used_fractions = np.asarray(used_fractions, dtype=float)
        if used_fractions.shape != (cfg.n_requests,):
            raise ValueError("used_fractions must be (n_requests,)")
        rng = make_rng(cfg.seed, "partial-skip", seed)
        results = []
        for r in range(cfg.n_requests):
            n_used = int(round(np.clip(used_fractions[r], 0.0, 1.0)
                               * self.n_partitions))
            chosen = rng.choice(self.n_partitions, size=n_used, replace=False) \
                if n_used else np.empty(0, dtype=np.int64)
            all_hits = []
            for p in chosen:
                hits = self.adapter.exact(self.partitions[p], self.requests[r])
                all_hits.append([SearchHit.make(self._global_id(int(p), h.doc_id),
                                                h.score) for h in hits])
            merged = merge_topk(all_hits, self.requests[r].k)
            results.append([h.doc_id for h in merged])
        return self._mean_loss(results)
