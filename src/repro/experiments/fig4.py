"""Figure 4: effectiveness of synopses at identifying accuracy-related data.

For many random requests, rank the aggregated data points by their
estimated correlation to the request's result accuracy, divide the ranking
into 10 sections, and check where the *truly* accuracy-related original
points live:

- **Figure 4(a), recommender**: an original user is highly related when
  |Pearson(active, original)| > 0.8; the reported value is, per section,
  the average percentage of that section's original users that are highly
  related (paper: 95.03% in section 1 falling to 22.00% in section 10).
- **Figure 4(b), search**: an original page is highly related when it
  belongs to the query's actual top-10; the reported value is, per
  section, the share of the actual top-10 found there (paper: sections
  1-4 hold 78 / 14.17 / 4.33 / 1.67%, <1.17% in the remaining six).

Note the two sub-figures normalise differently (section purity vs
distribution over sections) — we follow the paper for each.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.adapters import CFAdapter, CFRequest, SearchAdapter, SearchQuery
from repro.core.builder import SynopsisBuilder, SynopsisConfig
from repro.experiments.formatting import format_table
from repro.recommender.similarity import pearson
from repro.util.rng import make_rng
from repro.util.zipf import ZipfSampler
from repro.workloads.corpus import CorpusConfig, generate_corpus
from repro.workloads.movielens import MovieLensConfig, generate_ratings

__all__ = ["Fig4Result", "run_fig4_cf", "run_fig4_search"]

N_SECTIONS = 10


@dataclass
class Fig4Result:
    """Average per-section percentages over all tested requests."""

    service: str
    section_percent: list[float] = field(default_factory=list)
    n_requests: int = 0

    def text(self) -> str:
        rows = [[s + 1, v] for s, v in enumerate(self.section_percent)]
        return format_table(["section", "percent"], rows,
                            title=f"Figure 4 ({self.service}), {self.n_requests} requests")

    def monotone_decreasing(self, tolerance: float = 0.0) -> bool:
        """Sections earlier in the ranking should hold more related data."""
        vals = self.section_percent
        return all(vals[i] + tolerance >= vals[i + 1] for i in range(len(vals) - 1))


def _sections(order: np.ndarray) -> list[np.ndarray]:
    """Split a ranked id array into N_SECTIONS near-equal contiguous parts."""
    return [np.asarray(chunk, dtype=np.int64)
            for chunk in np.array_split(order, N_SECTIONS)]


def run_fig4_cf(n_users: int = 1500, n_items: int = 300, n_requests: int = 120,
                reveal_fraction: float = 0.8, threshold: float = 0.8,
                density: float = 0.25, synopsis_ratio: float = 20.0,
                seed: int = 0) -> Fig4Result:
    """Figure 4(a): section purity of highly related users.

    ``density`` defaults higher than the latency experiments' profile:
    the |Pearson| > 0.8 "highly related" definition needs enough co-rated
    items per user pair to be statistically meaningful (the paper's
    MovieLens partitions average ~67 ratings/user).
    """
    adapter = CFAdapter()
    data = generate_ratings(MovieLensConfig(n_users=n_users, n_items=n_items,
                                            density=density, noise=0.3,
                                            cluster_spread=0.3, seed=seed))
    matrix = data.matrix
    synopsis, _ = SynopsisBuilder(adapter, SynopsisConfig(
        n_iters=60, target_ratio=synopsis_ratio, seed=seed)).build(matrix)

    rng = make_rng(seed, "fig4-cf")
    m = synopsis.n_aggregated
    section_acc = np.zeros(N_SECTIONS)

    for _ in range(n_requests):
        # Active user = existing user with a random 80% of ratings revealed
        # (the paper's protocol for weight computation).
        active = int(rng.integers(0, n_users))
        ids, vals = matrix.user_ratings(active)
        if ids.size < 4:
            continue
        n_reveal = max(2, int(round(reveal_fraction * ids.size)))
        keep = np.sort(rng.choice(ids.size, size=n_reveal, replace=False))
        request = CFRequest(active_items=ids[keep], active_vals=vals[keep],
                            target_items=[])
        _, correlations = adapter.initial_result(synopsis, request)
        order = np.argsort(-correlations, kind="stable")

        for s, sec in enumerate(_sections(order)):
            members = np.concatenate([synopsis.index.members(int(g)) for g in sec])
            members = members[members != active]
            if members.size == 0:
                continue
            related = 0
            for v in members:
                vids, vvals = matrix.user_ratings(int(v))
                if abs(pearson(vids, vvals, ids[keep], vals[keep])) > threshold:
                    related += 1
            section_acc[s] += 100.0 * related / members.size

    result = Fig4Result(service="recommender", n_requests=n_requests)
    result.section_percent = list(section_acc / n_requests)
    return result


def run_fig4_search(n_docs: int = 1500, n_requests: int = 200, k: int = 10,
                    synopsis_ratio: float = 20.0, seed: int = 0) -> Fig4Result:
    """Figure 4(b): distribution of the actual top-10 across sections."""
    adapter = SearchAdapter()
    corpus = generate_corpus(CorpusConfig(n_docs=n_docs, seed=seed))
    partition = corpus.partition
    synopsis, _ = SynopsisBuilder(adapter, SynopsisConfig(
        n_iters=40, target_ratio=synopsis_ratio, seed=seed)).build(partition)

    rng = make_rng(seed, "fig4-search")
    topic_sampler = ZipfSampler(corpus.config.n_topics, 0.9, rng)
    section_acc = np.zeros(N_SECTIONS)
    counted = 0

    for _ in range(n_requests):
        topic = int(topic_sampler.sample())
        n_terms = max(1, int(rng.poisson(1.6)) + 1)
        query = SearchQuery(terms=corpus.topic_words(topic, n=n_terms, rng=rng),
                            k=k)
        actual = adapter.exact(partition, query)
        actual_ids = {h.doc_id for h in actual}
        if not actual_ids:
            continue
        counted += 1
        _, correlations = adapter.initial_result(synopsis, query)
        order = np.argsort(-correlations, kind="stable")
        group_to_section = np.empty(synopsis.n_aggregated, dtype=np.int64)
        for s, sec in enumerate(_sections(order)):
            group_to_section[sec] = s
        for d in actual_ids:
            g = synopsis.index.group_of(int(d))
            section_acc[group_to_section[g]] += 100.0 / len(actual_ids)

    if counted == 0:
        raise RuntimeError("no query matched any page; corpus misconfigured")
    result = Fig4Result(service="search", n_requests=counted)
    result.section_percent = list(section_acc / counted)
    return result
