"""Scaled CF recommender instance for coupled accuracy evaluation.

The latency simulation decides *how much* each component processed (AT
refinement depths, partial-execution completion fractions); this module
replays those decisions through a real — but smaller — instance of the
recommender (partitions, synopses, Algorithm 1) and measures the paper's
accuracy metric: the percentage RMSE increase over exact processing.

Active users are synthesised from the same latent taste model as the
stored users (paper §4.3: 1,000 randomly selected active users, 80% of
ratings revealed); RMSE ground truth is the noiseless model rating.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.adapters import CFAdapter, CFRequest
from repro.core.builder import SynopsisBuilder, SynopsisConfig
from repro.core.processor import refine_to_depth
from repro.core.synopsis import Synopsis
from repro.recommender.cf import CFPrediction, merge_predictions
from repro.recommender.matrix import RatingMatrix
from repro.recommender.metrics import accuracy_loss_percent, rmse
from repro.util.rng import make_rng
from repro.workloads.movielens import MovieLensConfig, SyntheticRatings, generate_ratings

__all__ = ["CFServiceConfig", "CFAccuracyService"]


@dataclass(frozen=True)
class CFServiceConfig:
    """Size of the accuracy substrate (scaled from the paper's 108x4,000
    users to keep exact ground-truth computation tractable in Python)."""

    n_partitions: int = 8
    users_per_partition: int = 300
    n_items: int = 250
    n_requests: int = 50
    reveal_items: int = 60         # active user's known ratings
    n_targets: int = 10            # items to predict per request
    density: float = 0.12
    synopsis_ratio: float = 25.0
    svd_iters: int = 40
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_partitions < 1:
            raise ValueError("need at least one partition")
        if self.reveal_items + self.n_targets > self.n_items:
            raise ValueError("reveal + target items exceed item count")


class CFAccuracyService:
    """Partitioned recommender + synopses + a fixed request workload."""

    def __init__(self, config: CFServiceConfig | None = None):
        self.config = config if config is not None else CFServiceConfig()
        cfg = self.config
        self.adapter = CFAdapter()

        n_users = cfg.n_partitions * cfg.users_per_partition
        self.data: SyntheticRatings = generate_ratings(MovieLensConfig(
            n_users=n_users, n_items=cfg.n_items, density=cfg.density,
            seed=cfg.seed,
        ))

        # Round-robin users into partitions (paper: input data divided
        # into n subsets), re-indexing users locally per partition.
        self.partitions: list[RatingMatrix] = []
        self._partition_users: list[np.ndarray] = []
        users, items, vals = self.data.matrix.to_triples()
        for p in range(cfg.n_partitions):
            mask = (users % cfg.n_partitions) == p
            local = users[mask] // cfg.n_partitions
            self.partitions.append(RatingMatrix(
                local, items[mask], vals[mask],
                n_users=cfg.users_per_partition, n_items=cfg.n_items,
            ))
            self._partition_users.append(
                np.arange(p, n_users, cfg.n_partitions, dtype=np.int64))

        builder = SynopsisBuilder(self.adapter, SynopsisConfig(
            n_iters=cfg.svd_iters, target_ratio=cfg.synopsis_ratio,
            seed=cfg.seed,
        ))
        self.synopses: list[Synopsis] = [
            builder.build(part)[0] for part in self.partitions
        ]

        self.requests: list[CFRequest] = []
        self._actuals: list[np.ndarray] = []
        self._build_requests()
        self._exact_cache: list[CFPrediction | None] = [None] * cfg.n_requests

    # ------------------------------------------------------------------

    def _build_requests(self) -> None:
        cfg = self.config
        rng = make_rng(cfg.seed, "cf-requests")
        n_users = self.data.user_factors.shape[0]
        for _ in range(cfg.n_requests):
            # Active user: jittered copy of a stored user's tastes
            # ("similar-minded users" exist by construction).
            proto = int(rng.integers(0, n_users))
            factors = self.data.user_factors[proto] + rng.normal(
                0.0, 0.2, self.data.user_factors.shape[1])
            chosen = rng.choice(cfg.n_items, size=cfg.reveal_items + cfg.n_targets,
                                replace=False)
            reveal, targets = chosen[: cfg.reveal_items], chosen[cfg.reveal_items:]
            raw = self.data.item_factors[reveal] @ factors
            mcfg = self.data.config
            span = mcfg.rating_max - mcfg.rating_min
            revealed_vals = np.clip(
                mcfg.rating_min + span / (1.0 + np.exp(-raw))
                + rng.normal(0.0, mcfg.noise, raw.shape),
                mcfg.rating_min, mcfg.rating_max,
            )
            raw_t = self.data.item_factors[targets] @ factors
            actual = mcfg.rating_min + span / (1.0 + np.exp(-raw_t))
            self.requests.append(CFRequest(
                active_items=reveal, active_vals=revealed_vals,
                target_items=[int(i) for i in targets],
            ))
            self._actuals.append(actual)

    # ------------------------------------------------------------------

    @property
    def n_partitions(self) -> int:
        return self.config.n_partitions

    def acc_group_counts(self) -> np.ndarray:
        """Groups per partition synopsis (for depth-fraction mapping)."""
        return np.array([s.n_aggregated for s in self.synopses], dtype=np.int64)

    def exact_prediction(self, r: int) -> CFPrediction:
        """Exact merged prediction for request ``r`` (cached)."""
        if self._exact_cache[r] is None:
            parts = [self.adapter.exact(p, self.requests[r]) for p in self.partitions]
            self._exact_cache[r] = merge_predictions(
                parts, active_mean=self.requests[r].active_mean)
        return self._exact_cache[r]

    # -- evaluation ------------------------------------------------------

    def _pooled_rmse(self, per_request_preds) -> float:
        preds, actuals = [], []
        for r, pred in enumerate(per_request_preds):
            preds.append(pred.predict_many(self.requests[r].target_items))
            actuals.append(self._actuals[r])
        return rmse(np.concatenate(preds), np.concatenate(actuals))

    def exact_rmse(self) -> float:
        return self._pooled_rmse(
            [self.exact_prediction(r) for r in range(self.config.n_requests)])

    def at_rmse(self, depth_fractions: np.ndarray) -> float:
        """RMSE when partition ``p`` of request ``r`` refined a
        ``depth_fractions[r, p]`` share of its ranked groups."""
        depth_fractions = np.asarray(depth_fractions, dtype=float)
        if depth_fractions.shape != (self.config.n_requests, self.n_partitions):
            raise ValueError("depth_fractions must be (n_requests, n_partitions)")
        preds = []
        for r in range(self.config.n_requests):
            parts = []
            for p, (part, syn) in enumerate(zip(self.partitions, self.synopses)):
                depth = int(round(depth_fractions[r, p] * syn.n_aggregated))
                parts.append(refine_to_depth(self.adapter, part, syn,
                                             self.requests[r], depth))
            preds.append(merge_predictions(
                parts, active_mean=self.requests[r].active_mean))
        return self._pooled_rmse(preds)

    def partial_rmse(self, used_fractions: np.ndarray, seed: int = 1) -> float:
        """RMSE when only a ``used_fractions[r]`` share of partitions'
        exact results reach the composer (the rest missed the deadline)."""
        used_fractions = np.asarray(used_fractions, dtype=float)
        if used_fractions.shape != (self.config.n_requests,):
            raise ValueError("used_fractions must be (n_requests,)")
        rng = make_rng(self.config.seed, "partial-skip", seed)
        preds = []
        for r in range(self.config.n_requests):
            n_used = int(round(np.clip(used_fractions[r], 0.0, 1.0)
                               * self.n_partitions))
            chosen = rng.choice(self.n_partitions, size=n_used, replace=False) \
                if n_used else np.empty(0, dtype=np.int64)
            parts = [self.adapter.exact(self.partitions[p], self.requests[r])
                     for p in chosen]
            preds.append(merge_predictions(
                parts, active_mean=self.requests[r].active_mean))
        return self._pooled_rmse(preds)

    def loss_percent(self, approx_rmse: float) -> float:
        return accuracy_loss_percent(approx_rmse, self.exact_rmse())
