"""Shared latency-experiment machinery.

A :class:`ServiceLatencyProfile` captures the work-unit geometry of one
service (full-scan work, synopsis size, ranked-group sizes, deadline);
an :class:`ExperimentScale` captures the simulated cluster (components,
nodes, interference, session length).  :func:`run_techniques` runs the
compared techniques over one arrival trace and returns their latency
stats plus the strategy objects (which carry the accuracy bookkeeping the
coupled accuracy evaluation consumes).

Defaults are scaled down from the paper's deployment (108 components on
30 nodes, 60x1-minute sessions) to keep the benchmark suite minutes-fast;
pass ``paper_scale()`` for the full-size run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.cluster.fanout import FanoutRunStats, FanoutSimulator
from repro.cluster.hedged import HedgedFanoutSimulator, HedgedRunStats
from repro.cluster.interference import ConstantSpeed, InterferenceTimeline
from repro.cluster.topology import ClusterSpec
from repro.strategies import (
    AccuracyTraderStrategy,
    BasicStrategy,
    PartialExecutionStrategy,
    ReissueStrategy,
)
from repro.workloads.mapreduce import MapReduceTraceConfig, generate_interference_jobs

__all__ = [
    "ServiceLatencyProfile",
    "ExperimentScale",
    "TechniqueRun",
    "run_techniques",
    "paper_scale",
]


@dataclass(frozen=True)
class ServiceLatencyProfile:
    """Work-unit geometry of one service's sub-operations.

    One work unit = one original data point scanned.  ``idle_scan_s`` is
    the full-partition scan time on an idle component and anchors the
    simulated base speed.
    """

    name: str
    full_work: float
    synopsis_work: float
    group_works: np.ndarray
    i_max: int | None
    deadline: float = 0.1
    idle_scan_s: float = 0.016
    group_overhead: float = 0.0

    @property
    def base_speed(self) -> float:
        """Work units/second of an idle component."""
        return self.full_work / self.idle_scan_s

    @property
    def n_groups(self) -> int:
        return int(self.group_works.size)

    @classmethod
    def cf(cls, partition_points: int = 4000, agg_ratio: float = 133.0,
           deadline: float = 0.1, idle_scan_s: float = 0.016,
           idle_work_factor: float = 1.15) -> "ServiceLatencyProfile":
        """The recommender profile: paper partition of ~4,000 users,
        aggregation ratio 133.01, i_max unbounded (process-all rule).

        ``idle_work_factor`` calibrates AccuracyTrader's per-round
        framework overhead (ranking, result merging) so that when the
        deadline never binds, AT's total work is this multiple of a plain
        exact scan — Table 1's light-load row (AT 87 ms vs Basic 76 ms)
        pins it at ~1.15.
        """
        m = max(1, int(round(partition_points / agg_ratio)))
        group = np.full(m, partition_points / m)
        overhead = _calibrate_overhead(idle_work_factor, partition_points,
                                       m, m, partition_points)
        return cls(name="cf", full_work=float(partition_points),
                   synopsis_work=float(m), group_works=group, i_max=None,
                   deadline=deadline, idle_scan_s=idle_scan_s,
                   group_overhead=overhead)

    @classmethod
    def search(cls, partition_points: int = 20000, agg_ratio: float = 42.55,
               i_max_fraction: float = 0.4, deadline: float = 0.1,
               idle_scan_s: float = 0.016,
               idle_work_factor: float = 1.1) -> "ServiceLatencyProfile":
        """The search profile: aggregation ratio 42.55, refinement capped
        at the top 40% ranked groups (the paper's Figure-4(b) rule).

        ``idle_work_factor`` as in :meth:`cf`: Figure 7 places AT's
        light-load tails slightly *above* request reissue's, so AT's
        capped refinement plus overhead must modestly exceed one exact
        scan when the deadline never binds.
        """
        m = max(1, int(round(partition_points / agg_ratio)))
        group = np.full(m, partition_points / m)
        i_max = max(1, int(np.ceil(i_max_fraction * m)))
        refined = float(group[:i_max].sum())
        overhead = _calibrate_overhead(idle_work_factor, partition_points,
                                       m, i_max, refined)
        return cls(name="search", full_work=float(partition_points),
                   synopsis_work=float(m), group_works=group, i_max=i_max,
                   deadline=deadline, idle_scan_s=idle_scan_s,
                   group_overhead=overhead)


def _calibrate_overhead(idle_work_factor: float, full_work: float,
                        synopsis_work: float, i_max: int,
                        refined_work: float) -> float:
    """Per-round overhead making AT's unbinding-deadline work equal
    ``idle_work_factor * full_work`` (see the profile constructors)."""
    if idle_work_factor <= 0:
        raise ValueError("idle_work_factor must be positive")
    target = idle_work_factor * full_work
    return max(0.0, (target - synopsis_work - refined_work) / max(i_max, 1))


@dataclass(frozen=True)
class ExperimentScale:
    """Simulated-cluster size and session length.

    The default is a scaled-down cluster (36 components / 9 nodes,
    120-second sessions) whose queueing behaviour matches the full-size
    one (identical per-component load: every request visits every
    component regardless of width); use :func:`paper_scale` for 108/27.
    """

    n_components: int = 36
    n_nodes: int = 9
    session_s: float = 120.0
    speed_jitter: float = 0.15
    interference: MapReduceTraceConfig | None = field(default_factory=MapReduceTraceConfig)
    seed: int = 0


def paper_scale(**overrides) -> ExperimentScale:
    """The paper's deployment size: 108 parallel components, 27 nodes."""
    base = ExperimentScale(n_components=108, n_nodes=27)
    return replace(base, **overrides)


@dataclass
class TechniqueRun:
    """One technique's outcome on one arrival trace."""

    name: str
    stats: FanoutRunStats | HedgedRunStats
    strategy: object

    def tail_ms(self, q: float = 99.9) -> float:
        return self.stats.tail_ms(q)


def build_cluster(profile: ServiceLatencyProfile, scale: ExperimentScale,
                  trace_pad_s: float = 60.0):
    """Construct (cluster, speed model) for a run.

    ``trace_pad_s`` extends the interference trace beyond the session so
    late-draining queues still see realistic speeds.
    """
    cluster = ClusterSpec(
        n_components=scale.n_components, n_nodes=scale.n_nodes,
        base_speed=profile.base_speed, speed_jitter=scale.speed_jitter,
        seed=scale.seed,
    )
    if scale.interference is None:
        speed_model = ConstantSpeed()
    else:
        jobs = generate_interference_jobs(
            scale.n_nodes, scale.session_s + trace_pad_s,
            scale.interference, seed=scale.seed + 17,
        )
        speed_model = InterferenceTimeline(scale.n_nodes, jobs)
    return cluster, speed_model


def run_techniques(arrivals, profile: ServiceLatencyProfile,
                   scale: ExperimentScale,
                   techniques=("basic", "reissue", "partial", "at"),
                   ) -> dict[str, TechniqueRun]:
    """Run the requested techniques over one arrival trace.

    Returns a dict name -> :class:`TechniqueRun`.  All techniques share
    the same cluster, interference trace and arrivals, as in the paper's
    same-deployment comparisons.
    """
    arrivals = np.asarray(arrivals, dtype=float)
    cluster, speed_model = build_cluster(profile, scale)
    fast = FanoutSimulator(cluster, speed_model)
    out: dict[str, TechniqueRun] = {}
    for name in techniques:
        if name == "basic":
            strat = BasicStrategy(profile.full_work)
            stats = fast.run(arrivals, strat)
        elif name == "partial":
            strat = PartialExecutionStrategy(profile.full_work, profile.deadline)
            stats = fast.run(arrivals, strat)
        elif name == "at":
            strat = AccuracyTraderStrategy(
                synopsis_work=profile.synopsis_work,
                group_works=profile.group_works,
                deadline=profile.deadline,
                i_max=profile.i_max,
                group_overhead=profile.group_overhead,
            )
            stats = fast.run(arrivals, strat)
        elif name == "reissue":
            strat = ReissueStrategy(profile.full_work)
            stats = HedgedFanoutSimulator(cluster, speed_model).run(arrivals, strat)
        else:
            raise ValueError(f"unknown technique {name!r}")
        out[name] = TechniqueRun(name=name, stats=stats, strategy=strat)
    return out
