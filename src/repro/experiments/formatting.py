"""Plain-text rendering of experiment tables and series.

The benchmark harness prints the same rows the paper reports; these
helpers keep that output aligned and readable without a plotting stack.
"""

from __future__ import annotations

__all__ = ["format_table", "format_series"]


def format_table(headers: list[str], rows: list[list], title: str | None = None) -> str:
    """Monospace table with right-aligned numeric cells."""
    def render(cell) -> str:
        if isinstance(cell, float):
            if cell >= 1000:
                return f"{cell:,.0f}"
            if cell >= 10:
                return f"{cell:.1f}"
            return f"{cell:.2f}"
        return str(cell)

    cells = [[render(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(label: str, xs, ys, x_name: str = "x", y_name: str = "y") -> str:
    """One figure series as aligned (x, y) pairs."""
    rows = [[x, y] for x, y in zip(xs, ys)]
    return format_table([x_name, y_name], rows, title=label)
