"""Figures 5 & 6: search workloads of hours 9, 10 and 24 (paper §4.3).

Hour 9 has increasing arrival rates (morning ramp), hour 10 is steady,
hour 24 decreasing.  The paper runs 60 one-minute sessions per hour and
reports per-session values: Figure 5 shows the arrival-rate panel plus
the per-session 99.9th-percentile component latency of Basic / Request
reissue / AccuracyTrader; Figure 6 the per-session accuracy losses of
Partial execution vs AccuracyTrader.

Sessions are simulated independently (queues drain between paper
sessions too — each was a fresh one-minute measurement).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.experiments.common import (
    ExperimentScale,
    ServiceLatencyProfile,
    run_techniques,
)
from repro.experiments.coupling import at_depth_fractions, partial_used_fractions
from repro.experiments.formatting import format_table
from repro.experiments.search_service import SearchAccuracyService
from repro.util.rng import make_rng
from repro.workloads.arrival import poisson_arrivals
from repro.workloads.sogou import HOURLY_RATE_PROFILE

__all__ = ["HourlyResult", "run_hour", "run_hours"]


@dataclass
class HourlyResult:
    """Per-session series for one hour (one Figure-5 row + Figure-6 panel)."""

    hour: int
    session_rates: list[float] = field(default_factory=list)      # panel (a/e/i)
    tails_ms: dict[str, list[float]] = field(default_factory=dict)  # (b,c,d/...)
    losses: dict[str, list[float]] = field(default_factory=dict)    # Figure 6

    def text(self) -> str:
        headers = ["session", "rate(req/s)", "basic(ms)", "reissue(ms)",
                   "AT(ms)", "partial loss%", "AT loss%"]
        rows = []
        for s in range(len(self.session_rates)):
            rows.append([
                s + 1,
                self.session_rates[s],
                self.tails_ms["basic"][s],
                self.tails_ms["reissue"][s],
                self.tails_ms["at"][s],
                self.losses["partial"][s],
                self.losses["at"][s],
            ])
        return format_table(headers, rows,
                            title=f"Figures 5/6 series, hour {self.hour}")


def _session_rate(hour: int, session: int, n_sessions: int, peak_rate: float) -> float:
    """Arrival rate of one session, linearly interpolated within the hour.

    Reproduces the within-hour trends of the paper's typical hours:
    increasing through hour 9, steady in hour 10, decreasing in hour 24.
    """
    prev_r = HOURLY_RATE_PROFILE[(hour - 2) % 24] * peak_rate
    cur_r = HOURLY_RATE_PROFILE[hour - 1] * peak_rate
    next_r = HOURLY_RATE_PROFILE[hour % 24] * peak_rate
    x = (session + 0.5) / n_sessions
    if x < 0.5:
        start = 0.5 * (prev_r + cur_r)
        return start + (cur_r - start) * (x / 0.5)
    end = 0.5 * (cur_r + next_r)
    return cur_r + (end - cur_r) * ((x - 0.5) / 0.5)


def run_hour(hour: int,
             profile: ServiceLatencyProfile | None = None,
             scale: ExperimentScale | None = None,
             service: SearchAccuracyService | None = None,
             n_sessions: int = 12,
             peak_rate: float = 100.0,
             seed: int = 0) -> HourlyResult:
    """Simulate one hour as ``n_sessions`` independent sessions.

    ``service=None`` skips the accuracy coupling (latency-only run).
    """
    if not (1 <= hour <= 24):
        raise ValueError("hour must be 1..24")
    profile = profile if profile is not None else ServiceLatencyProfile.search()
    scale = scale if scale is not None else ExperimentScale(session_s=60.0)

    result = HourlyResult(hour=hour)
    result.tails_ms = {"basic": [], "reissue": [], "at": []}
    result.losses = {"partial": [], "at": []}

    for s in range(n_sessions):
        rate = _session_rate(hour, s, n_sessions, peak_rate)
        arrivals = poisson_arrivals(rate, scale.session_s,
                                    make_rng(seed, "hour", hour, s))
        session_scale = replace(scale, seed=scale.seed + 100 * hour + s)
        runs = run_techniques(arrivals, profile, session_scale)
        result.session_rates.append(rate)
        for name in ("basic", "reissue", "at"):
            result.tails_ms[name].append(runs[name].tail_ms())
        if service is not None:
            rng = make_rng(seed, "hour-coupling", hour, s)
            n_req = service.config.n_requests
            at_frac = at_depth_fractions(runs["at"].strategy, n_req,
                                         service.n_partitions, rng)
            pe_frac = partial_used_fractions(runs["partial"].strategy, n_req, rng)
            result.losses["at"].append(service.at_loss_percent(at_frac))
            result.losses["partial"].append(service.partial_loss_percent(pe_frac))
        else:
            result.losses["at"].append(float("nan"))
            result.losses["partial"].append(float("nan"))
    return result


def run_hours(hours=(9, 10, 24), **kwargs) -> dict[int, HourlyResult]:
    """The paper's three typical hours (Figures 5 and 6)."""
    return {h: run_hour(h, **kwargs) for h in hours}
