"""The abstract's headline numbers, derived from the other experiments.

Paper §4.3 "Results": compared to request reissue, AccuracyTrader reduces
the 99.9th-percentile component latency 133.38x (CF workloads) and 42.72x
(search workloads) with accuracy losses of 1.97% and 6.31%; at the same
service latency it reduces accuracy losses 15.12x and 13.85x versus
partial execution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.cf_tables import CFTablesResult
from repro.experiments.daily import DailyResult
from repro.experiments.formatting import format_table

__all__ = ["HeadlineNumbers", "compute_headline"]


@dataclass
class HeadlineNumbers:
    """Measured vs paper headline ratios."""

    cf_latency_reduction: float        # paper: 133.38x
    cf_at_loss_percent: float          # paper: 1.97%
    cf_loss_reduction: float           # paper: 15.12x
    search_latency_reduction: float    # paper: 42.72x
    search_at_loss_percent: float      # paper: 6.31%
    search_loss_reduction: float       # paper: 13.85x

    def text(self) -> str:
        rows = [
            ["CF: reissue/AT p99.9 ratio", self.cf_latency_reduction, 133.38],
            ["CF: AT accuracy loss (%)", self.cf_at_loss_percent, 1.97],
            ["CF: partial/AT loss ratio", self.cf_loss_reduction, 15.12],
            ["Search: reissue/AT p99.9 ratio", self.search_latency_reduction, 42.72],
            ["Search: AT accuracy loss (%)", self.search_at_loss_percent, 6.31],
            ["Search: partial/AT loss ratio", self.search_loss_reduction, 13.85],
        ]
        return format_table(["metric", "measured", "paper"], rows,
                            title="Headline results (abstract / §4.3)")


def compute_headline(cf: CFTablesResult, daily: DailyResult) -> HeadlineNumbers:
    """Derive the headline ratios from Table 1/2 + 24-hour results."""
    at_losses = np.asarray(daily.losses["at"], dtype=float)
    at_losses = at_losses[~np.isnan(at_losses)]
    return HeadlineNumbers(
        cf_latency_reduction=cf.reissue_over_at_latency(),
        cf_at_loss_percent=float(np.mean(cf.loss_percent["at"])),
        cf_loss_reduction=cf.partial_over_at_loss(),
        search_latency_reduction=daily.reissue_over_at_latency(),
        search_at_loss_percent=float(np.mean(at_losses)) if at_losses.size else float("nan"),
        search_loss_reduction=daily.partial_over_at_loss(),
    )
