"""Figure 3: synopsis-updating overheads (paper §4.2).

Two categories of input-data change, each at i = 1..10% of the partition:

- **add**: i% new data points (users / web pages) appended;
- **change**: i% existing data points' attributes / contents changed.

The paper's findings to reproduce: (i) every update completes much faster
than creating the synopsis from scratch; (ii) the add-only category is
faster than the change category (changes delete *and* re-insert R-tree
leaves).

Measured with real wall-clock time over our own algorithms — the one
place in the reproduction where wall time is honest (pure algorithmic
cost, no concurrency; see DESIGN.md §5.6).
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.adapters import CFAdapter, SearchAdapter
from repro.core.builder import SynopsisBuilder, SynopsisConfig
from repro.core.updater import SynopsisUpdater
from repro.experiments.formatting import format_table
from repro.util.rng import make_rng
from repro.workloads.corpus import CorpusConfig, generate_corpus
from repro.workloads.movielens import MovieLensConfig, generate_ratings

__all__ = ["Fig3Result", "run_fig3_cf", "run_fig3_search"]


@dataclass
class Fig3Result:
    """Update timings for one service."""

    service: str
    creation_s: float
    percents: list[int] = field(default_factory=list)
    add_s: list[float] = field(default_factory=list)
    change_s: list[float] = field(default_factory=list)

    def text(self) -> str:
        rows = [[p, a, c] for p, a, c in
                zip(self.percents, self.add_s, self.change_s)]
        table = format_table(["i (%)", "add (s)", "change (s)"], rows,
                             title=f"Figure 3 ({self.service}): synopsis updating time "
                                   f"(creation took {self.creation_s:.2f}s)")
        return table

    def updates_faster_than_creation(self) -> bool:
        return max(self.add_s + self.change_s, default=0.0) < self.creation_s

    def add_faster_than_change(self) -> bool:
        """Paper finding (ii), on the run's average."""
        return float(np.mean(self.add_s)) < float(np.mean(self.change_s))


def run_fig3_cf(n_users: int = 2000, n_items: int = 300,
                percents=range(1, 11), repeats: int = 3,
                n_iters: int = 100, seed: int = 0) -> Fig3Result:
    """CF-service updating experiment.

    ``n_iters`` defaults to the paper's 100 SVD iterations per dimension;
    creation cost is dominated by the full-data SVD + aggregation, which
    is exactly why incremental updating wins (its SVD work touches only
    the changed rows).
    """
    adapter = CFAdapter()
    config = SynopsisConfig(n_iters=n_iters, target_ratio=25.0, seed=seed)
    data = generate_ratings(MovieLensConfig(n_users=n_users, n_items=n_items,
                                            seed=seed))
    matrix = data.matrix

    t0 = time.perf_counter()
    synopsis, artifacts = SynopsisBuilder(adapter, config).build(matrix)
    creation_s = time.perf_counter() - t0

    result = Fig3Result(service="recommender", creation_s=creation_s)
    rng = make_rng(seed, "fig3-cf")
    for pct in percents:
        k = max(1, int(round(n_users * pct / 100.0)))
        add_times, change_times = [], []
        for rep in range(repeats):
            # Category 1: add k new users drawn from the same taste model.
            upd = SynopsisUpdater(adapter, config, matrix,
                                  copy.deepcopy(synopsis), copy.deepcopy(artifacts))
            new_u, new_i, new_v = _new_users(data, k, rng)
            m2 = matrix.with_rows_appended(new_u, new_i, new_v)
            rep_add = upd.add_points(m2, np.arange(n_users, n_users + k))
            add_times.append(rep_add.seconds)

            # Category 2: change k existing users' ratings.
            upd = SynopsisUpdater(adapter, config, matrix,
                                  copy.deepcopy(synopsis), copy.deepcopy(artifacts))
            changed = rng.choice(n_users, size=k, replace=False)
            replaced = {}
            for u in changed:
                ids, _ = matrix.user_ratings(int(u))
                replaced[int(u)] = (ids, rng.uniform(1.0, 5.0, ids.size))
            m3 = matrix.with_users_replaced(replaced)
            rep_chg = upd.change_points(m3, changed)
            change_times.append(rep_chg.seconds)
        result.percents.append(int(pct))
        result.add_s.append(float(np.mean(add_times)))
        result.change_s.append(float(np.mean(change_times)))
    return result


def _new_users(data, k: int, rng) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Draw k new users' ratings from the generator's latent model."""
    cfg = data.config
    protos = rng.integers(0, data.user_factors.shape[0], size=k)
    users_l, items_l, vals_l = [], [], []
    per_user = max(3, int(cfg.density * cfg.n_items))
    span = cfg.rating_max - cfg.rating_min
    for local, proto in enumerate(protos):
        factors = data.user_factors[proto] + rng.normal(0.0, 0.2,
                                                        data.user_factors.shape[1])
        items = rng.choice(cfg.n_items, size=per_user, replace=False)
        raw = data.item_factors[items] @ factors
        vals = np.clip(cfg.rating_min + span / (1.0 + np.exp(-raw))
                       + rng.normal(0.0, cfg.noise, raw.shape),
                       cfg.rating_min, cfg.rating_max)
        users_l.append(np.full(per_user, local, dtype=np.int64))
        items_l.append(np.asarray(items, dtype=np.int64))
        vals_l.append(vals)
    return (np.concatenate(users_l), np.concatenate(items_l),
            np.concatenate(vals_l))


def run_fig3_search(n_docs: int = 1500, percents=range(1, 11),
                    repeats: int = 3, n_iters: int = 100,
                    seed: int = 0) -> Fig3Result:
    """Search-service updating experiment (see :func:`run_fig3_cf`)."""
    adapter = SearchAdapter()
    config = SynopsisConfig(n_iters=n_iters, target_ratio=30.0, seed=seed)
    corpus = generate_corpus(CorpusConfig(n_docs=n_docs, seed=seed))

    t0 = time.perf_counter()
    synopsis, artifacts = SynopsisBuilder(adapter, config).build(corpus.partition)
    creation_s = time.perf_counter() - t0

    result = Fig3Result(service="search", creation_s=creation_s)
    rng = make_rng(seed, "fig3-search")
    gen_rng_seq = iter(range(10_000))
    for pct in percents:
        k = max(1, int(round(n_docs * pct / 100.0)))
        add_times, change_times = [], []
        for rep in range(repeats):
            # Category 1: add k new pages from fresh topic draws.
            part = copy.deepcopy(corpus.partition)
            upd = SynopsisUpdater(adapter, config, part,
                                  copy.deepcopy(synopsis), copy.deepcopy(artifacts))
            extra = generate_corpus(
                CorpusConfig(n_docs=k, n_topics=corpus.config.n_topics,
                             vocab_size=corpus.config.vocab_size,
                             words_per_topic=corpus.config.words_per_topic,
                             seed=seed),
                seed=seed + 7919 + next(gen_rng_seq))
            new_ids = part.add_pages(
                extra.partition.tokens_of(d) for d in range(k))
            rep_add = upd.add_points(part, new_ids)
            add_times.append(rep_add.seconds)

            # Category 2: change k existing pages' contents.
            part = copy.deepcopy(corpus.partition)
            upd = SynopsisUpdater(adapter, config, part,
                                  copy.deepcopy(synopsis), copy.deepcopy(artifacts))
            changed = rng.choice(n_docs, size=k, replace=False)
            fresh = generate_corpus(
                CorpusConfig(n_docs=k, n_topics=corpus.config.n_topics,
                             vocab_size=corpus.config.vocab_size,
                             words_per_topic=corpus.config.words_per_topic,
                             seed=seed),
                seed=seed + 104729 + next(gen_rng_seq))
            for local, d in enumerate(changed):
                part.replace_page(int(d), fresh.partition.tokens_of(local))
            rep_chg = upd.change_points(part, changed)
            change_times.append(rep_chg.seconds)
        result.percents.append(int(pct))
        result.add_s.append(float(np.mean(add_times)))
        result.change_s.append(float(np.mean(change_times)))
    return result
