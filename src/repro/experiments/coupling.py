"""Couple latency-simulation outcomes to the accuracy substrates.

The latency simulation runs at cluster scale (every request x every
component); the accuracy substrate is a smaller real service instance.
The coupling samples, per accuracy-evaluation request, a simulated request
and a set of simulated components, and carries over:

- AT: the *fraction of the group cap* each component managed to refine
  (depth / i_max), applied to the substrate partition's own cap;
- partial execution: the fraction of components that answered before the
  deadline, applied as the fraction of substrate partitions used.

Fractions (not absolute depths) transfer between scales because both the
simulated profile and the substrate synopses use the same aggregation-
ratio geometry.
"""

from __future__ import annotations

import numpy as np

from repro.strategies.accuracytrader import AccuracyTraderStrategy
from repro.strategies.partial import PartialExecutionStrategy

__all__ = ["at_depth_fractions", "partial_used_fractions"]


def at_depth_fractions(strategy: AccuracyTraderStrategy, n_requests: int,
                       n_partitions: int, rng: np.random.Generator) -> np.ndarray:
    """Sample an (n_requests, n_partitions) depth-fraction matrix.

    Each accuracy request adopts one simulated request's row and samples
    ``n_partitions`` of its per-component depths, preserving both the
    load level (row) and across-component variance (columns).
    """
    depths = strategy.groups_processed
    if depths.size == 0:
        raise ValueError("simulation recorded no requests")
    n_sim_req, n_sim_comp = depths.shape
    cap = max(strategy.i_max, 1)
    rows = rng.integers(0, n_sim_req, size=n_requests)
    cols = rng.integers(0, n_sim_comp, size=(n_requests, n_partitions))
    sampled = depths[rows[:, None], cols].astype(float)
    return np.clip(sampled / cap, 0.0, 1.0)


def partial_used_fractions(strategy: PartialExecutionStrategy, n_requests: int,
                           rng: np.random.Generator) -> np.ndarray:
    """Sample per-accuracy-request used-component fractions."""
    fractions = strategy.used_fractions()
    if fractions.size == 0:
        raise ValueError("simulation recorded no requests")
    rows = rng.integers(0, fractions.size, size=n_requests)
    return fractions[rows]
