"""Experiment runners reproducing every table and figure of §4.

Each module regenerates one paper artifact (see DESIGN.md §4 for the
index); the benchmarks under ``benchmarks/`` are thin wrappers that call
these runners and print the paper-shaped rows/series.

- :mod:`repro.experiments.common` — latency profiles, cluster scale,
  technique runner shared by all latency experiments;
- :mod:`repro.experiments.cf_service` / :mod:`repro.experiments.search_service`
  — scaled "accuracy substrates": real service instances whose refinement
  depths / skip fractions are driven by the latency simulation
  (DESIGN.md §5.1);
- :mod:`repro.experiments.cf_tables` — Tables 1 & 2;
- :mod:`repro.experiments.fig3` — synopsis-updating overheads;
- :mod:`repro.experiments.fig4` — synopsis effectiveness sections;
- :mod:`repro.experiments.hourly` — Figures 5 & 6 (hours 9, 10, 24);
- :mod:`repro.experiments.daily` — Figures 7 & 8 (24 hours);
- :mod:`repro.experiments.headline` — the abstract's headline ratios.
"""

from repro.experiments.common import (
    ExperimentScale,
    ServiceLatencyProfile,
    TechniqueRun,
    run_techniques,
)

__all__ = [
    "ExperimentScale",
    "ServiceLatencyProfile",
    "TechniqueRun",
    "run_techniques",
]
