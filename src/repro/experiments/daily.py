"""Figures 7 & 8: search workloads over 24 hours (paper §4.3).

Figure 7: (a) the mean request arrival rate of each hour; (b, c, d) the
mean 99.9th-percentile component latency of Basic / Request reissue /
AccuracyTrader per hour.  Figure 8: mean accuracy losses of Partial
execution vs AccuracyTrader per hour.

Each hour is simulated as one session at the hour's mean rate (the
paper's per-hour values are averages over its sessions; a single longer
session at the mean rate estimates the same quantity at a fraction of
the cost — raise ``sessions_per_hour`` to average like the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.experiments.common import (
    ExperimentScale,
    ServiceLatencyProfile,
    run_techniques,
)
from repro.experiments.coupling import at_depth_fractions, partial_used_fractions
from repro.experiments.formatting import format_table
from repro.experiments.search_service import SearchAccuracyService
from repro.util.rng import make_rng
from repro.workloads.arrival import poisson_arrivals
from repro.workloads.sogou import hour_arrival_rate

__all__ = ["DailyResult", "run_daily"]


@dataclass
class DailyResult:
    """Per-hour series for Figures 7 and 8."""

    hours: list[int] = field(default_factory=list)
    rates: list[float] = field(default_factory=list)                 # Fig 7(a)
    tails_ms: dict[str, list[float]] = field(default_factory=dict)   # Fig 7(b-d)
    losses: dict[str, list[float]] = field(default_factory=dict)     # Fig 8

    def text(self) -> str:
        headers = ["hour", "rate(req/s)", "basic(ms)", "reissue(ms)", "AT(ms)",
                   "partial loss%", "AT loss%"]
        rows = []
        for i, h in enumerate(self.hours):
            rows.append([
                h, self.rates[i],
                self.tails_ms["basic"][i],
                self.tails_ms["reissue"][i],
                self.tails_ms["at"][i],
                self.losses["partial"][i],
                self.losses["at"][i],
            ])
        return format_table(headers, rows, title="Figures 7/8: 24-hour series")

    def reissue_over_at_latency(self) -> float:
        """Mean Reissue/AT tail ratio over the day (headline: 42.72x)."""
        re = np.asarray(self.tails_ms["reissue"])
        at = np.asarray(self.tails_ms["at"])
        return float(np.mean(re / at))

    def partial_over_at_loss(self) -> float:
        """Mean Partial/AT loss ratio over the day (headline: 13.85x)."""
        pe = np.asarray(self.losses["partial"])
        at = np.maximum(np.asarray(self.losses["at"]), 1e-3)
        mask = ~np.isnan(pe)
        return float(np.mean(pe[mask] / at[mask]))

    def best_technique_hours(self) -> dict[str, list[int]]:
        """Which latency technique wins each hour (paper: reissue during
        the light-load hours ~2-8, AccuracyTrader elsewhere)."""
        out: dict[str, list[int]] = {"basic": [], "reissue": [], "at": []}
        for i, h in enumerate(self.hours):
            vals = {n: self.tails_ms[n][i] for n in out}
            out[min(vals, key=vals.get)].append(h)
        return out


def run_daily(profile: ServiceLatencyProfile | None = None,
              scale: ExperimentScale | None = None,
              service: SearchAccuracyService | None = None,
              peak_rate: float = 100.0,
              hours=range(1, 25),
              seed: int = 0) -> DailyResult:
    """Run the 24-hour comparison.

    ``service=None`` skips accuracy coupling (latency-only).
    """
    profile = profile if profile is not None else ServiceLatencyProfile.search()
    scale = scale if scale is not None else ExperimentScale(session_s=60.0)

    result = DailyResult()
    result.tails_ms = {"basic": [], "reissue": [], "at": []}
    result.losses = {"partial": [], "at": []}

    for hour in hours:
        rate = hour_arrival_rate(hour, peak_rate)
        arrivals = poisson_arrivals(rate, scale.session_s,
                                    make_rng(seed, "daily", hour))
        hour_scale = replace(scale, seed=scale.seed + hour)
        runs = run_techniques(arrivals, profile, hour_scale)
        result.hours.append(int(hour))
        result.rates.append(rate)
        for name in ("basic", "reissue", "at"):
            result.tails_ms[name].append(runs[name].tail_ms())
        if service is not None:
            rng = make_rng(seed, "daily-coupling", hour)
            n_req = service.config.n_requests
            at_frac = at_depth_fractions(runs["at"].strategy, n_req,
                                         service.n_partitions, rng)
            pe_frac = partial_used_fractions(runs["partial"].strategy, n_req, rng)
            result.losses["at"].append(service.at_loss_percent(at_frac))
            result.losses["partial"].append(service.partial_loss_percent(pe_frac))
        else:
            result.losses["at"].append(float("nan"))
            result.losses["partial"].append(float("nan"))
    return result
