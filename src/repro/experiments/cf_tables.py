"""Tables 1 & 2: the CF-workload comparison (paper §4.3).

Table 1 — 99.9th-percentile component latency (ms) of Basic / Request
reissue / AccuracyTrader at arrival rates 20..100 req/s.  Table 2 —
accuracy-loss percentages of Partial execution vs AccuracyTrader for the
same runs.  One latency simulation per rate drives both tables
(DESIGN.md §5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.common import (
    ExperimentScale,
    ServiceLatencyProfile,
    run_techniques,
)
from repro.experiments.coupling import at_depth_fractions, partial_used_fractions
from repro.experiments.cf_service import CFAccuracyService
from repro.experiments.formatting import format_table
from repro.util.rng import make_rng
from repro.workloads.arrival import poisson_arrivals

__all__ = ["CFTablesResult", "run_cf_tables"]


@dataclass
class CFTablesResult:
    """Both tables' rows plus the headline ratios derived from them."""

    rates: list[int]
    latency_ms: dict[str, list[float]] = field(default_factory=dict)   # Table 1
    loss_percent: dict[str, list[float]] = field(default_factory=dict)  # Table 2

    def table1_text(self) -> str:
        headers = ["Request arrival rate"] + [str(r) for r in self.rates]
        rows = [
            ["Basic"] + self.latency_ms["basic"],
            ["Request reissue"] + self.latency_ms["reissue"],
            ["AccuracyTrader"] + self.latency_ms["at"],
        ]
        return format_table(headers, rows,
                            title="Table 1: 99.9th percentile component latency (ms), CF workloads")

    def table2_text(self) -> str:
        headers = ["Request arrival rate"] + [str(r) for r in self.rates]
        rows = [
            ["Partial execution"] + self.loss_percent["partial"],
            ["AccuracyTrader"] + self.loss_percent["at"],
        ]
        return format_table(headers, rows,
                            title="Table 2: accuracy losses (%), CF workloads")

    def reissue_over_at_latency(self) -> float:
        """Mean Reissue/AT tail ratio (paper headline: 133.38x)."""
        re = np.asarray(self.latency_ms["reissue"])
        at = np.asarray(self.latency_ms["at"])
        return float(np.mean(re / at))

    def partial_over_at_loss(self) -> float:
        """Mean Partial/AT accuracy-loss ratio (paper headline: 15.12x)."""
        pe = np.asarray(self.loss_percent["partial"])
        at = np.maximum(np.asarray(self.loss_percent["at"]), 1e-3)
        return float(np.mean(pe / at))


def run_cf_tables(rates=(20, 40, 60, 80, 100),
                  profile: ServiceLatencyProfile | None = None,
                  scale: ExperimentScale | None = None,
                  service: CFAccuracyService | None = None,
                  seed: int = 0) -> CFTablesResult:
    """Run the CF comparison at each arrival rate.

    Parameters
    ----------
    rates:
        Request arrival rates in req/s (paper: 20, 40, 60, 80, 100).
    profile, scale:
        Latency geometry and cluster size (paper-shaped defaults).
    service:
        The accuracy substrate; built on demand (expensive) if omitted.
    seed:
        Arrival/coupling randomness seed.
    """
    profile = profile if profile is not None else ServiceLatencyProfile.cf()
    scale = scale if scale is not None else ExperimentScale()
    service = service if service is not None else CFAccuracyService()

    result = CFTablesResult(rates=[int(r) for r in rates])
    for name in ("basic", "reissue", "at"):
        result.latency_ms[name] = []
    result.loss_percent = {"partial": [], "at": []}

    n_req = service.config.n_requests
    for rate in rates:
        arrivals = poisson_arrivals(float(rate), scale.session_s,
                                    make_rng(seed, "cf-arrivals", rate))
        runs = run_techniques(arrivals, profile, scale)
        for name in ("basic", "reissue", "at"):
            result.latency_ms[name].append(runs[name].tail_ms())

        rng = make_rng(seed, "cf-coupling", rate)
        at_frac = at_depth_fractions(runs["at"].strategy, n_req,
                                     service.n_partitions, rng)
        pe_frac = partial_used_fractions(runs["partial"].strategy, n_req, rng)
        result.loss_percent["at"].append(
            service.loss_percent(service.at_rmse(at_frac)))
        result.loss_percent["partial"].append(
            service.loss_percent(service.partial_rmse(pe_frac)))
    return result
