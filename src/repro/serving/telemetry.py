"""Per-request distributed tracing + the unified metrics plane.

Two instruments, one module:

**Traces.**  Every :class:`~repro.serving.envelope.ServingRequest` is a
trace root — the trace id *is* the envelope's ``request_id``.  The
instrumented request path (admission queueing, router fan-out and hedged
re-issue, batch coalescing, wire send/recv, worker-side epoch fetch and
kernel execution, async dispatch) emits :class:`Span` values keyed by
that trace id.  Span context crosses process boundaries by riding the
detached envelope already carried on every
:class:`~repro.serving.backends.ComponentTask`: a worker records its
spans locally (:class:`SpanRecorder`) and piggybacks them on the
:class:`~repro.serving.backends.ComponentOutcome` travelling back, and
the parent stitches them into the live :class:`Tracer` — span ids are
salted with the recording pid, so a merged trace is a well-formed tree
even when four processes contributed to it.  Ingestion is idempotent
(de-duplicated per ``(trace_id, span_id)``), so outcomes observed at
several gather points never double-count.

Sampling is *head* sampling, decided once per request at trace-root
creation and carried on the context: per-class rates with a
deterministic counter scheme (request ``n`` of a class samples iff
``floor(n * rate)`` advances), so rates ``0.0`` and ``1.0`` are exact
and any fixed rate is reproducible without an RNG.  An unsampled
request costs one dictionary lookup and no allocations on the hot path.

**Metrics.**  :class:`MetricsRegistry` unifies the serving plane's
counter families — :meth:`~repro.serving.backends.ExecutionBackend.
payload_counters`, :meth:`~repro.serving.router.ShardedService.
hedge_counters`, :meth:`~repro.serving.backends.BatchingBackend.
batch_stats`, admission statistics — behind one interface: named
counters, gauges (with high-watermark tracking), and fixed-bucket
histograms, timed by an injectable clock.  The legacy snapshot methods
keep their exact dict shapes, now *read from* the registry, so existing
consumers observe bit-identical values.

Timestamps come from :func:`repro.core.clock.monotonic` — the single
wall-clock seam the serving plane is allowed to use (CI lints for stray
``time.monotonic()`` calls outside this module and the clock module).
On Linux ``CLOCK_MONOTONIC`` is boot-wide, so worker spans align with
parent spans without clock translation.

Exports: :meth:`Tracer.export_json` (plain span dump) and
:meth:`Tracer.chrome_trace` (Chrome ``trace_event`` format — load the
file in ``chrome://tracing`` or https://ui.perfetto.dev).
"""

from __future__ import annotations

import itertools
import json
import math
import os
import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterable

from repro.core.clock import monotonic

__all__ = [
    "TraceContext",
    "Span",
    "SpanRecorder",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "trace_context_of",
    "attach_context",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
]


# ---------------------------------------------------------------------------
# Span identity
# ---------------------------------------------------------------------------

# Span ids must stay unique when spans from several processes merge into
# one trace; salting a per-process counter with the pid keeps ids unique
# without any cross-process coordination.
_SPAN_COUNTER = itertools.count(1)


def _new_span_id() -> int:
    return ((os.getpid() & 0xFFFF) << 40) | next(_SPAN_COUNTER)


@dataclass(frozen=True)
class TraceContext:
    """Propagatable span context: plain, picklable data.

    ``span_id`` names the span that is the *current parent* — spans
    opened under this context become its children (``0`` means "no
    parent yet": the next span is a trace root).  The context rides the
    envelope's ``trace`` field across every boundary the envelope
    crosses, which is all of them.
    """

    trace_id: int
    span_id: int = 0
    sampled: bool = True


@dataclass
class Span:
    """One timed operation within a trace (wall seconds, half-open)."""

    trace_id: int
    span_id: int
    parent_id: int | None
    name: str
    start: float
    end: float = 0.0
    pid: int = field(default_factory=os.getpid)
    tid: int = 0
    tags: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    def as_dict(self) -> dict:
        return {
            "trace_id": self.trace_id, "span_id": self.span_id,
            "parent_id": self.parent_id, "name": self.name,
            "start": self.start, "end": self.end, "pid": self.pid,
            "tid": self.tid, "tags": dict(self.tags),
        }


def trace_context_of(envelope) -> TraceContext | None:
    """The envelope's trace context, if it carries a valid one."""
    ctx = getattr(envelope, "trace", None)
    return ctx if isinstance(ctx, TraceContext) else None


def attach_context(envelope, ctx: TraceContext):
    """A copy of ``envelope`` carrying ``ctx`` (same id, same payload)."""
    return replace(envelope, trace=ctx)


class _NullScope:
    """No-op span handle for unsampled/untraced requests."""

    __slots__ = ("ctx",)

    def __init__(self, ctx: TraceContext | None):
        self.ctx = ctx

    def __enter__(self) -> "_NullScope":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def tag(self, **tags) -> None:
        del tags


class _SpanScope:
    """Live span handle: a context manager that records on exit.

    ``ctx`` is the *child* context — spans opened under this handle
    nest beneath it.  ``tag()`` adds attributes mid-flight (e.g. the
    hedge winner, a shed reason) before the span closes.
    """

    __slots__ = ("ctx", "span", "_sink", "_clock")

    def __init__(self, span: Span, sink: Callable[[Span], None],
                 clock: Callable[[], float], sampled: bool = True):
        self.span = span
        self._sink = sink
        self._clock = clock
        self.ctx = TraceContext(trace_id=span.trace_id,
                                span_id=span.span_id, sampled=sampled)

    def __enter__(self) -> "_SpanScope":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.span.tags.setdefault("error", exc_type.__name__)
        self.finish()
        return False

    def tag(self, **tags) -> None:
        self.span.tags.update(tags)

    def finish(self, end: float | None = None) -> None:
        self.span.end = self._clock() if end is None else end
        self._sink(self.span)


def _open_span(name: str, ctx: TraceContext, sink, clock,
               tags: dict) -> _SpanScope:
    span = Span(
        trace_id=ctx.trace_id, span_id=_new_span_id(),
        parent_id=ctx.span_id or None, name=name, start=clock(),
        tid=threading.get_ident() & 0xFFFFFFFF,
        tags=tags,
    )
    return _SpanScope(span, sink, clock)


class SpanRecorder:
    """Standalone span collector for worker-side instrumentation.

    A worker process cannot reach the parent's :class:`Tracer`; it
    records spans into a local list and the executing code attaches
    them to the outgoing :class:`~repro.serving.backends.
    ComponentOutcome`, where any parent-side gather point ingests them
    (idempotently) into the live tracer.
    """

    __slots__ = ("ctx", "spans", "_clock")

    def __init__(self, ctx: TraceContext,
                 clock: Callable[[], float] = monotonic):
        self.ctx = ctx
        self.spans: list[Span] = []
        self._clock = clock

    def span(self, name: str, ctx: TraceContext | None = None, **tags):
        parent = self.ctx if ctx is None else ctx
        return _open_span(name, parent, self.spans.append, self._clock, tags)


# ---------------------------------------------------------------------------
# The tracer
# ---------------------------------------------------------------------------


class Tracer:
    """Collects one process's view of every sampled trace.

    Parameters
    ----------
    enabled:
        Master switch.  Disabled, every API degrades to a no-op that
        neither allocates nor attaches context.
    sample_rates:
        Per-request-class head-sampling rates, keyed by the class'
        string value (``"latency_critical"`` etc.).  Missing classes use
        ``default_rate``.  Rates are deterministic: of the first ``n``
        requests of a class, exactly ``floor(n * rate)`` are sampled.
    default_rate:
        Sampling rate for classes not named in ``sample_rates``
        (default ``1.0`` — tracing is on by default; the overhead
        benchmark gates that this stays cheap).
    clock:
        Timestamp source (injectable for deterministic tests).
    max_traces:
        Retained-trace cap; the oldest trace is evicted when a new root
        would exceed it (evictions counted in ``traces_evicted``).
    """

    def __init__(self, enabled: bool = True,
                 sample_rates: dict | None = None,
                 default_rate: float = 1.0,
                 clock: Callable[[], float] = monotonic,
                 max_traces: int = 4096):
        rates = dict(sample_rates or {})
        for value in rates.values():
            if not 0.0 <= float(value) <= 1.0:
                raise ValueError("sampling rates must be in [0, 1]")
        if not 0.0 <= default_rate <= 1.0:
            raise ValueError("default_rate must be in [0, 1]")
        self.enabled = bool(enabled)
        self.sample_rates = rates
        self.default_rate = float(default_rate)
        self.clock = clock
        self.max_traces = int(max_traces)
        self._lock = threading.Lock()
        # trace_id -> (spans in arrival order, seen span ids)
        self._traces: OrderedDict[int, tuple[list[Span], set[int]]] = \
            OrderedDict()
        self._class_counts: dict[str, int] = {}
        self.traces_evicted = 0

    # -- sampling / context ---------------------------------------------

    def _rate_of(self, request_class) -> float:
        value = getattr(request_class, "value", request_class)
        return float(self.sample_rates.get(value, self.default_rate))

    def _sample(self, request_class) -> bool:
        rate = self._rate_of(request_class)
        if rate >= 1.0:
            return True
        if rate <= 0.0:
            return False
        value = getattr(request_class, "value", request_class)
        with self._lock:
            n = self._class_counts.get(value, 0) + 1
            self._class_counts[value] = n
        return math.floor(n * rate) > math.floor((n - 1) * rate)

    def trace(self, envelope):
        """Root ``envelope`` in a trace (the head-sampling decision).

        Idempotent: an envelope that already carries a context passes
        through unchanged, so the outermost instrumented layer — the
        harness, or a bare ``serve()`` call — wins the root.  With the
        tracer disabled the envelope passes through untouched.

        The context is written into the envelope's ``trace`` slot *in
        place* (``trace`` is compare-excluded observability metadata,
        deliberately outside the frozen identity fields), so the caller
        keeps the same object — response/request identity is preserved
        end to end.
        """
        if not self.enabled or trace_context_of(envelope) is not None:
            return envelope
        sampled = self._sample(getattr(envelope, "request_class", None))
        ctx = TraceContext(trace_id=envelope.request_id, span_id=0,
                           sampled=sampled)
        try:
            object.__setattr__(envelope, "trace", ctx)
        except (AttributeError, TypeError):
            return envelope
        return envelope

    # -- recording -------------------------------------------------------

    def span(self, name: str, ctx: TraceContext | None, **tags):
        """Context manager timing one operation under ``ctx``.

        No-op (allocation-free timing path) when ``ctx`` is missing or
        unsampled; the returned handle always exposes ``.ctx`` so
        nesting code never branches.
        """
        if not self.enabled or ctx is None or not ctx.sampled:
            return _NullScope(ctx)
        return _open_span(name, ctx, self._store, self.clock, tags)

    def record(self, name: str, ctx: TraceContext | None, start: float,
               end: float, **tags) -> Span | None:
        """Record a span from explicit timestamps (post-hoc recording)."""
        if not self.enabled or ctx is None or not ctx.sampled:
            return None
        span = Span(trace_id=ctx.trace_id, span_id=_new_span_id(),
                    parent_id=ctx.span_id or None, name=name, start=start,
                    end=end, tid=threading.get_ident() & 0xFFFFFFFF,
                    tags=tags)
        self._store(span)
        return span

    def _bucket_locked(self, trace_id: int) -> tuple[list[Span], set[int]]:
        bucket = self._traces.get(trace_id)
        if bucket is None:
            while len(self._traces) >= self.max_traces:
                self._traces.popitem(last=False)
                self.traces_evicted += 1
            bucket = self._traces[trace_id] = ([], set())
        return bucket

    def _store(self, span: Span) -> None:
        with self._lock:
            spans, seen = self._bucket_locked(span.trace_id)
            if span.span_id not in seen:
                seen.add(span.span_id)
                spans.append(span)

    def ingest(self, spans: Iterable[Span]) -> int:
        """Merge foreign spans (worker-side recordings); idempotent.

        Returns the number of spans actually added — re-ingesting the
        same outcome at a second gather point adds nothing.
        """
        added = 0
        with self._lock:
            for span in spans:
                bucket, seen = self._bucket_locked(span.trace_id)
                if span.span_id not in seen:
                    seen.add(span.span_id)
                    bucket.append(span)
                    added += 1
        return added

    def ingest_outcomes(self, outcomes: Iterable) -> int:
        """Ingest the piggybacked spans of any outcomes that carry them."""
        if not self.enabled:
            return 0
        added = 0
        for outcome in outcomes:
            spans = getattr(outcome, "spans", None)
            if spans:
                added += self.ingest(spans)
        return added

    # -- reading / export ------------------------------------------------

    def trace_ids(self) -> list[int]:
        with self._lock:
            return list(self._traces)

    def spans_of(self, trace_id: int) -> list[Span]:
        """The trace's spans, sorted by start time."""
        with self._lock:
            bucket = self._traces.get(trace_id)
            spans = list(bucket[0]) if bucket else []
        return sorted(spans, key=lambda s: (s.start, s.span_id))

    def reset(self) -> None:
        with self._lock:
            self._traces.clear()
            self._class_counts.clear()
            self.traces_evicted = 0

    def export_json(self, path: str | None = None) -> dict:
        """Plain-JSON dump: ``{"traces": [{trace_id, spans: [...]}, ...]}``."""
        with self._lock:
            data = {"traces": [
                {"trace_id": tid,
                 "spans": [s.as_dict() for s in
                           sorted(spans, key=lambda s: (s.start, s.span_id))]}
                for tid, (spans, _) in self._traces.items()
            ]}
        if path is not None:
            with open(path, "w") as fh:
                json.dump(data, fh, indent=2, default=str)
        return data

    def chrome_trace(self, path: str | None = None) -> dict:
        """Chrome ``trace_event`` export (chrome://tracing / Perfetto).

        Each span becomes one complete (``"ph": "X"``) event with
        microsecond timestamps; the trace id, span id and parent id ride
        in ``args`` alongside the span's tags, so the timeline keeps the
        tree structure inspectable.
        """
        events: list[dict] = []
        with self._lock:
            traces = {tid: list(spans)
                      for tid, (spans, _) in self._traces.items()}
        pids = set()
        for tid, spans in traces.items():
            for s in spans:
                pids.add(s.pid)
                events.append({
                    "name": s.name, "cat": "serving", "ph": "X",
                    "ts": s.start * 1e6, "dur": s.duration * 1e6,
                    "pid": s.pid, "tid": s.tid,
                    "args": {"trace_id": s.trace_id, "span_id": s.span_id,
                             "parent_id": s.parent_id,
                             **{k: v if isinstance(v, (int, float, str,
                                                       bool, type(None)))
                                else str(v) for k, v in s.tags.items()}},
                })
        for pid in sorted(pids):
            events.append({"name": "process_name", "ph": "M", "pid": pid,
                           "tid": 0, "args": {"name": f"repro pid {pid}"}})
        data = {"traceEvents": sorted(
            events, key=lambda e: (e["ph"] == "M", e["ts"] if "ts" in e
                                   else 0.0)),
            "displayTimeUnit": "ms"}
        if path is not None:
            with open(path, "w") as fh:
                json.dump(data, fh)
        return data


_GLOBAL_TRACER = Tracer()
_GLOBAL_LOCK = threading.Lock()


def get_tracer() -> Tracer:
    """The process-wide tracer the instrumented request path records to."""
    return _GLOBAL_TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process-wide tracer; returns the old one."""
    global _GLOBAL_TRACER
    with _GLOBAL_LOCK:
        previous, _GLOBAL_TRACER = _GLOBAL_TRACER, tracer
    return previous


@contextmanager
def use_tracer(tracer: Tracer):
    """Scoped :func:`set_tracer` — restores the previous tracer on exit."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------

DEFAULT_LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)
"""Default histogram bucket bounds (seconds), roughly log-spaced."""


class Counter:
    """Monotonically increasing count (thread-safe, integer-exact).

    Backing the serving plane's byte/count accounting with plain Python
    ints keeps snapshots bit-identical to the pre-registry fields.
    """

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: tuple = ()):
        self.name = name
        self.labels = labels
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount=1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self):
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0


class Gauge:
    """Point-in-time value with a high-watermark (thread-safe)."""

    __slots__ = ("name", "labels", "_value", "_max", "_lock")

    def __init__(self, name: str, labels: tuple = ()):
        self.name = name
        self.labels = labels
        self._value = 0
        self._max = 0
        self._lock = threading.Lock()

    def set(self, value) -> None:
        with self._lock:
            self._value = value
            if value > self._max:
                self._max = value

    def inc(self, amount=1):
        with self._lock:
            self._value += amount
            if self._value > self._max:
                self._max = self._value
            return self._value

    def dec(self, amount=1):
        with self._lock:
            self._value -= amount
            return self._value

    @property
    def value(self):
        return self._value

    @property
    def max(self):
        """The high-watermark since creation (or the last reset)."""
        return self._max

    def reset_max(self) -> None:
        with self._lock:
            self._max = self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0
            self._max = 0


class Histogram:
    """Fixed-bucket histogram: cumulative-friendly counts + sum + count."""

    __slots__ = ("name", "labels", "buckets", "counts", "_sum", "_count",
                 "_lock")

    def __init__(self, name: str, buckets=DEFAULT_LATENCY_BUCKETS,
                 labels: tuple = ()):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("buckets must be a non-empty ascending sequence")
        self.name = name
        self.labels = labels
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)   # +1: the overflow bucket
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        i = 0
        for bound in self.buckets:
            if value <= bound:
                break
            i += 1
        with self._lock:
            self.counts[i] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def percentile(self, q: float) -> float:
        """Bucket-resolution percentile (upper bound of the target bucket)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        with self._lock:
            total = self._count
            if total == 0:
                return float("nan")
            rank = q * total
            seen = 0
            for i, n in enumerate(self.counts):
                seen += n
                if seen >= rank and n:
                    return (self.buckets[i] if i < len(self.buckets)
                            else float("inf"))
        return float("inf")

    def snapshot(self) -> dict:
        with self._lock:
            return {"buckets": list(self.buckets),
                    "counts": list(self.counts),
                    "sum": self._sum, "count": self._count}

    def reset(self) -> None:
        with self._lock:
            self.counts = [0] * (len(self.buckets) + 1)
            self._sum = 0.0
            self._count = 0


def _metric_key(name: str, labels: dict) -> tuple:
    return (name, tuple(sorted(labels.items())))


def _render_key(name: str, labels: tuple) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Get-or-create store of named counters/gauges/histograms.

    One registry per instrumented object (a backend, a router, an
    admission controller) keeps scopes honest; the legacy snapshot
    methods read their values straight out of it.  ``clock`` feeds
    :meth:`timer` so timed sections are deterministic under test.
    """

    def __init__(self, clock: Callable[[], float] = monotonic):
        self.clock = clock
        self._lock = threading.Lock()
        self._metrics: dict[tuple, Any] = {}

    def _get(self, cls, name: str, labels: dict, **kwargs):
        key = _metric_key(name, labels)
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, labels=key[1], **kwargs)
                self._metrics[key] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}")
            return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, buckets=DEFAULT_LATENCY_BUCKETS,
                  **labels) -> Histogram:
        return self._get(Histogram, name, labels, buckets=buckets)

    @contextmanager
    def timer(self, name: str, buckets=DEFAULT_LATENCY_BUCKETS, **labels):
        """Time a block into the named histogram (seconds)."""
        hist = self.histogram(name, buckets=buckets, **labels)
        t0 = self.clock()
        try:
            yield hist
        finally:
            hist.observe(self.clock() - t0)

    def counters_with_prefix(self, prefix: str) -> dict:
        """``{rendered_name: value}`` for counters whose name has ``prefix``."""
        with self._lock:
            metrics = list(self._metrics.values())
        return {_render_key(m.name, m.labels): m.value for m in metrics
                if isinstance(m, Counter) and m.name.startswith(prefix)}

    def counters_named(self, name: str) -> dict:
        """``{labels dict (frozen as a tuple): value}`` of counters ``name``.

        Covers the labelled-family read pattern (e.g. per-reason shed
        counts): every counter registered under exactly ``name``, keyed
        by its sorted ``(key, value)`` label tuple.
        """
        with self._lock:
            metrics = list(self._metrics.values())
        return {m.labels: m.value for m in metrics
                if isinstance(m, Counter) and m.name == name}

    def snapshot(self) -> dict:
        """Every metric's current value, keyed by rendered name."""
        with self._lock:
            metrics = list(self._metrics.values())
        out: dict = {}
        for m in metrics:
            key = _render_key(m.name, m.labels)
            if isinstance(m, Counter):
                out[key] = m.value
            elif isinstance(m, Gauge):
                out[key] = {"value": m.value, "max": m.max}
            else:
                out[key] = m.snapshot()
        return out

    def reset(self) -> None:
        with self._lock:
            metrics = list(self._metrics.values())
        for m in metrics:
            m.reset()
