"""Parallel serving layer: execute the paper's fan-out for real.

Architecture note — simulator vs serving
========================================

The reproduction contains two deliberately separate answers to "what does
an n-component AccuracyTrader deployment do under load?":

- **The simulator** (:mod:`repro.cluster`) predicts *latency*.  It models
  each component as a FIFO queue in virtual time, charging abstract work
  units against per-component speeds (interference included).  It never
  computes real answers; it is exact, fast, and deterministic — the right
  tool for the paper's tail-latency experiments, where one run covers
  hours of cluster time.
- **The serving layer** (this package) produces *answers*.  It executes
  Algorithm 1's per-component work for real, in parallel, against live
  synopses that may be updated mid-stream, and measures wall-clock
  throughput and latency.  It is the right tool for validating that the
  system actually serves — that parallel execution returns the same
  answers as sequential, that synopsis updates do not tear in-flight
  reads, and that fan-out parallelism buys real throughput.

The two layers meet in the middle: both report latency distributions in
the same shape (:class:`~repro.serving.harness.ServingRunStats` mirrors
:class:`repro.cluster.FanoutRunStats`), and both drive arrivals from
:mod:`repro.workloads.arrival`, so simulator predictions and served
measurements are directly comparable.

Pieces
------

- :mod:`repro.serving.envelope` — the typed request envelope:
  :class:`ServingRequest` (payload, deadline, request class —
  accuracy-critical / latency-critical / best-effort — priority,
  per-request hedging override, monotonic id, arrival timestamp) and
  :class:`ServingResponse` (answer, reports, state epochs,
  queue/service timing).  Every ``Servable`` serves envelopes natively
  via ``serve`` / ``aserve``; the positional ``process`` / ``aprocess``
  remain as bit-identical legacy shims.
- :mod:`repro.serving.backends` — :class:`ExecutionBackend` and its
  sequential / thread-pool / process-pool / persistent-worker
  implementations; per-component work travels as picklable
  :class:`ComponentTask` values referencing state by ``(component,
  epoch)`` into the service's :class:`~repro.core.state.StateStore`,
  which is what makes execution placement a plug-in — and what lets
  :class:`PersistentProcessBackend` ship state once per update epoch
  instead of once per task (payload bytes measured per run in
  :class:`ServingRunStats`).
- :mod:`repro.serving.loadgen` — deterministic open-loop (Poisson,
  bursty) and closed-loop request-stream generation.
- :mod:`repro.serving.harness` — :class:`ServingHarness` drives a stream
  against a live :class:`~repro.core.service.AccuracyTraderService`,
  optionally applying synopsis updates concurrently, and reports
  throughput, p50/p95/p99 latency, and accuracy-vs-deadline curves.
- :mod:`repro.serving.adapters` — :class:`IOStallAdapter`, a wrapper
  charging real per-operation stalls (the remote storage/network access
  the simulator abstracts as work units).
- :mod:`repro.serving.router` — the scale-out tier: :class:`ReplicaGroup`
  (replicated services, updates fanned out, pluggable ring/p2c hedge
  placement) and :class:`ShardedService` (sharded routing with per-shard
  deadline budgets, shard-map-routed updates, live hedged re-issue
  across replicas under a Dean & Barroso-style hedge budget, and online
  shard rebalancing — live record moves published as new state epochs).
  Both are :class:`~repro.core.servable.Servable`, so the harness drives
  a routed cluster through the same API as a single service.
- :mod:`repro.serving.aio` — the async tier: an event-loop
  :class:`~repro.serving.aio.AsyncExecutionBackend`, the async
  ``aprocess`` path through every ``Servable`` (hedged fan-out with real
  cancellation of the losing copy), and the
  :class:`~repro.serving.aio.AsyncServingHarness` holding thousands of
  in-flight requests where the thread tier is capped at
  ``max_concurrency``.
- :mod:`repro.serving.admission` — admission control for the async
  tier: bounded pending queue (priority-ordered dequeue: urgent
  classes first, FIFO within a class), in-flight concurrency limit,
  and pluggable shed policies (reject-on-full, deadline-aware early
  drop, class-aware :class:`PriorityShedPolicy` — best-effort shed
  first, accuracy-critical last — and the CoDel-style
  :class:`QueueDelayShed`), with counters and per-class breakdowns
  surfaced in :class:`ServingRunStats`.
- :mod:`repro.serving.telemetry` — the observability plane:
  per-request distributed tracing (:class:`Tracer` roots a trace at
  every envelope, spans cover admission / routing / hedging / batching
  / wire / worker execution, and worker-side spans ride
  :class:`ComponentOutcome` back across process boundaries) plus the
  unified :class:`MetricsRegistry` (counters, gauges, fixed-bucket
  histograms) that backs every legacy counter dict bit-identically.
  Traces export as JSON or Chrome ``trace_event`` files; per-class
  head sampling is deterministic.
- :mod:`repro.serving.transport` — the multi-host tier: length-prefixed
  socket framing for requests and responses,
  :class:`~repro.serving.transport.RemoteServable` (a service in
  another process, pluggable into :class:`ReplicaGroup` /
  :class:`ShardedService` unchanged), and
  :class:`~repro.serving.transport.RemoteBackend` — the wire state
  plane: workers over TCP, snapshots published once per epoch per
  worker, epoch-to-epoch transitions shipped as content-defined binary
  *deltas* (:mod:`repro.core.state`) so state traffic scales with
  update size, not synopsis size.

Concurrency model: :class:`~repro.core.service.AccuracyTraderService`
publishes each component's ``(partition, synopsis)`` through a
:class:`~repro.core.state.StateStore` as an immutable snapshot tagged
with a monotonically increasing epoch id (copy-on-swap); request
execution is pinned at dispatch to the then-current epoch and never
observes a half-updated pair — across synopsis updates *and* live shard
rebalances.  See :mod:`repro.core.state` for details.
"""

from repro.serving.adapters import IOStallAdapter
from repro.serving.admission import (
    AdmissionController,
    AdmissionStats,
    DeadlineAwareDrop,
    PriorityShedPolicy,
    QueueDelayShed,
    RejectOnFull,
    ShedPolicy,
)
from repro.serving.envelope import (
    RequestClass,
    ServingRequest,
    ServingResponse,
    as_envelope,
)
from repro.serving.aio import (
    AsyncExecutionBackend,
    AsyncServingHarness,
    AsyncStallAdapter,
)
from repro.serving.backends import (
    BatchingBackend,
    ComponentOutcome,
    ComponentTask,
    ExecutionBackend,
    PersistentProcessBackend,
    ProcessPoolBackend,
    SequentialBackend,
    ThreadPoolBackend,
    resolve_backend,
)
from repro.serving.harness import AccuracyPoint, ServingHarness, ServingRunStats
from repro.serving.loadgen import ClosedLoopLoad, LoadGenerator, OpenLoopLoad
from repro.serving.router import RebalanceReport, ReplicaGroup, ShardedService
from repro.serving.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Span,
    SpanRecorder,
    TraceContext,
    Tracer,
    attach_context,
    get_tracer,
    set_tracer,
    trace_context_of,
    use_tracer,
)
from repro.serving.transport import (
    RemoteBackend,
    RemoteChannel,
    RemoteError,
    RemoteServable,
    bind_with_retry,
    connect_with_retry,
)

__all__ = [
    "ComponentOutcome",
    "ComponentTask",
    "ExecutionBackend",
    "SequentialBackend",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
    "PersistentProcessBackend",
    "BatchingBackend",
    "resolve_backend",
    "IOStallAdapter",
    "LoadGenerator",
    "OpenLoopLoad",
    "ClosedLoopLoad",
    "ServingHarness",
    "ServingRunStats",
    "AccuracyPoint",
    "ReplicaGroup",
    "ShardedService",
    "RebalanceReport",
    "AsyncExecutionBackend",
    "AsyncServingHarness",
    "AsyncStallAdapter",
    "AdmissionController",
    "AdmissionStats",
    "ShedPolicy",
    "RejectOnFull",
    "DeadlineAwareDrop",
    "PriorityShedPolicy",
    "QueueDelayShed",
    "RequestClass",
    "ServingRequest",
    "ServingResponse",
    "as_envelope",
    "RemoteBackend",
    "RemoteChannel",
    "RemoteError",
    "RemoteServable",
    "bind_with_retry",
    "connect_with_retry",
    "Tracer",
    "TraceContext",
    "Span",
    "SpanRecorder",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "attach_context",
    "trace_context_of",
    "get_tracer",
    "set_tracer",
    "use_tracer",
]
