"""Router tier: scale-out serving over sharded, replicated services.

After PR 1 the live path served one monolithic
:class:`~repro.core.service.AccuracyTraderService`; only the *simulator*
(:mod:`repro.cluster.hedged`) knew about shards, replicas, and hedging.
This module closes that gap with two more :class:`~repro.core.servable.
Servable` implementations, so :class:`~repro.serving.harness.
ServingHarness` and :class:`~repro.serving.loadgen.LoadGenerator` drive
a routed cluster completely unchanged:

- :class:`ReplicaGroup` — N replica services over the *same* partitions.
  Requests round-robin across replicas; synopsis updates fan out to all
  of them, keeping every replica able to answer for the group.
- :class:`ShardedService` — a router over many replica groups, each
  owning one shard of the data (build shards with the
  :class:`~repro.workloads.partitioning.ShardMap` helpers).  A request
  fans out to every shard with a per-shard deadline budget, and the
  per-component results merge across shards through the same associative
  merge functions a single service uses — so a routed answer is
  bit-identical to the unsharded one over the same partitions.

Both are envelope-native :class:`~repro.core.servable.Servable`
implementations: requests travel as typed
:class:`~repro.serving.envelope.ServingRequest` envelopes through
``serve`` / ``aserve`` (the envelope's ``hedge`` field opts a single
request out of re-issue).

Live hedged re-issue
--------------------

With a :class:`~repro.strategies.reissue.ReissueStrategy` attached, the
router mirrors :class:`~repro.cluster.hedged.HedgedFanoutSimulator`
semantics on the live path (Dean & Barroso's tied requests, paper §4.1):

- a shard call outstanding longer than the strategy's adaptive p95
  threshold is re-issued once on a sibling replica — chosen by the
  group's placement strategy (fixed next-in-ring, or power-of-two-
  choices over observed per-replica latency);
- re-issues are bounded by a **hedge budget** (Dean & Barroso's ~5%
  rule, ``hedge_budget``): the realized re-issue fraction never exceeds
  the configured cap, so a systemic slowdown — where every call looks
  like a straggler — cannot double cluster load;
- the first copy to complete wins.  On the sync path the loser is
  cancelled *best-effort* — a queued copy is dropped
  (``Future.cancel``), a copy already executing runs to completion and
  its answer is discarded.  On the async path (``aserve``) the loser
  is *really* cancelled: its next await raises ``CancelledError`` and
  its remaining stalls never run;
- every shard call's effective latency (first copy to finish) feeds the
  strategy's threshold estimator, so measured and simulated hedging are
  directly comparable.

Updates route through an optional component
:class:`~repro.workloads.partitioning.ShardMap`: ``add_points`` /
``change_points`` take *global* record ids and resolve the owning shard
and component themselves (see the update section below).

Online shard rebalancing (:meth:`ShardedService.rebalance`) moves
records between live shards: the minimal set of affected components is
rebuilt bit-identically to a cold build over the new map and published
as fresh state epochs on every replica, while in-flight requests keep
draining against their dispatch-time snapshots (epoch pinning — see
:mod:`repro.core.state`).
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import FIRST_COMPLETED, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.core.clock import ClockFactory, fresh_like, monotonic, \
    wall_clock_factory
from repro.core.service import AccuracyTraderService
from repro.serving.backends import (BatchingBackend, ExecutionBackend,
                                    resolve_backend)
from repro.serving.envelope import ServingRequest, ServingResponse, \
    payload_of
from repro.serving.telemetry import MetricsRegistry, attach_context, \
    get_tracer, trace_context_of
from repro.strategies.reissue import ReissueStrategy
from repro.workloads.partitioning import reshard_partitions

__all__ = ["ReplicaGroup", "ShardedService", "RebalanceReport"]


@dataclass
class RebalanceReport:
    """What one :meth:`ShardedService.rebalance` call did.

    ``epochs`` maps each affected *global* component to the state epochs
    its replicas published (one per replica); untouched components keep
    serving their existing epochs throughout.
    """

    n_moved: int
    affected_components: list[int]
    epochs: dict[int, list] = field(default_factory=dict, repr=False)


class ReplicaGroup:
    """N replica services over the same partitions — one logical shard.

    All replicas must agree on component count; with the deterministic
    seeded synopsis build, replicas constructed from the same inputs hold
    bit-identical state, so any replica can answer for the group.
    Replicas may still differ *operationally* (e.g. one wrapped in
    :class:`~repro.serving.adapters.IOStallAdapter` to model a slow
    node), which is what live hedging exploits.

    Parameters
    ----------
    replicas:
        Pre-built :class:`~repro.core.service.AccuracyTraderService`
        instances (use :meth:`build` to construct identical ones).
    hedge_placement:
        How a straggling call picks its hedge sibling: ``"ring"`` (the
        fixed next replica, the original behaviour) or ``"p2c"``
        (power-of-two-choices: sample two candidate siblings, hedge to
        the one with the lower observed latency — unobserved replicas
        are preferred, so every replica gets explored).  With two
        replicas the strategies coincide.
    placement_seed:
        Seed for the ``"p2c"`` candidate sampling.
    """

    _PLACEMENTS = ("ring", "p2c")
    _EWMA_ALPHA = 0.3

    def __init__(self, replicas: Sequence[AccuracyTraderService],
                 hedge_placement: str = "ring", placement_seed: int = 0):
        replicas = list(replicas)
        if not replicas:
            raise ValueError("need at least one replica")
        n0 = replicas[0].n_components
        if any(r.n_components != n0 for r in replicas):
            raise ValueError("replicas must have the same component count")
        if hedge_placement not in self._PLACEMENTS:
            raise ValueError(
                f"unknown hedge placement {hedge_placement!r}; "
                f"expected one of {self._PLACEMENTS}")
        self.replicas = replicas
        self.hedge_placement = hedge_placement
        self._next = 0
        self._pick_lock = threading.Lock()
        self._latency: list[float | None] = [None] * len(replicas)
        self._latency_lock = threading.Lock()
        from repro.util.rng import make_rng

        self._placement_rng = make_rng(placement_seed, "hedge-placement")

    @classmethod
    def build(cls, adapter, partitions, n_replicas: int,
              hedge_placement: str = "ring", placement_seed: int = 0,
              **service_kwargs) -> "ReplicaGroup":
        """Construct ``n_replicas`` identical services over ``partitions``."""
        if n_replicas < 1:
            raise ValueError("need at least one replica")
        partitions = list(partitions)
        return cls([AccuracyTraderService(adapter, partitions,
                                          **service_kwargs)
                    for _ in range(n_replicas)],
                   hedge_placement=hedge_placement,
                   placement_seed=placement_seed)

    # ------------------------------------------------------------------

    @property
    def n_replicas(self) -> int:
        return len(self.replicas)

    @property
    def n_components(self) -> int:
        return self.replicas[0].n_components

    @property
    def merge(self) -> Callable:
        return self.replicas[0].merge

    def next_replica(self) -> int:
        """Round-robin replica index for the next request (thread-safe)."""
        with self._pick_lock:
            i = self._next % self.n_replicas
            self._next += 1
            return i

    def sibling_of(self, replica: int) -> int:
        """The fixed next-in-ring sibling of ``replica``."""
        return (replica + 1) % self.n_replicas

    def observe_latency(self, replica: int, latency: float) -> None:
        """Record one observed shard-call latency on ``replica`` (EWMA)."""
        with self._latency_lock:
            prev = self._latency[replica]
            self._latency[replica] = (
                float(latency) if prev is None
                else (1.0 - self._EWMA_ALPHA) * prev
                + self._EWMA_ALPHA * float(latency))

    def replica_latency(self, replica: int) -> float | None:
        """Current latency estimate for ``replica`` (``None``: unobserved)."""
        with self._latency_lock:
            return self._latency[replica]

    def hedge_sibling(self, primary: int) -> int:
        """The replica a straggling call on ``primary`` is hedged to.

        ``"ring"`` placement returns the fixed next replica.  ``"p2c"``
        samples two distinct candidate siblings and hedges to the one
        with the lower observed-latency estimate — the classic
        power-of-two-choices load-aware pick, with unobserved replicas
        preferred so estimates exist for every replica eventually.
        """
        n = self.n_replicas
        if n < 2:
            raise ValueError("a single-replica group has no hedge sibling")
        if self.hedge_placement == "ring" or n == 2:
            return self.sibling_of(primary)
        candidates = [r for r in range(n) if r != primary]
        with self._pick_lock:
            picks = self._placement_rng.choice(len(candidates), size=2,
                                               replace=False)
        a, b = candidates[int(picks[0])], candidates[int(picks[1])]

        def estimate(replica: int) -> float:
            lat = self.replica_latency(replica)
            return float("-inf") if lat is None else lat

        return min(a, b, key=lambda r: (estimate(r), r))

    # -- Servable ------------------------------------------------------

    def serve(self, request: ServingRequest, clocks=None, backend=None,
              ) -> ServingResponse:
        """Answer one envelope on the next replica in round-robin order."""
        replica = self.replicas[self.next_replica()]
        return replica.serve(request, clocks=clocks, backend=backend)

    async def aserve(self, request: ServingRequest, clocks=None,
                     backend=None) -> ServingResponse:
        """Async :meth:`serve` on the next replica in round-robin order."""
        replica = self.replicas[self.next_replica()]
        return await replica.aserve(request, clocks=clocks, backend=backend)

    def exact_components(self, request) -> list:
        return self.replicas[0].exact_components(request)

    def exact(self, request) -> Any:
        return self.replicas[0].exact(request)

    # -- updates: fan out so replicas stay interchangeable -------------

    def add_points(self, component: int, partition, new_record_ids) -> list:
        """Apply an add-points update on *every* replica; list of reports."""
        return [r.add_points(component, partition, new_record_ids)
                for r in self.replicas]

    def change_points(self, component: int, partition,
                      changed_record_ids) -> list:
        """Apply a change-points update on *every* replica; list of reports."""
        return [r.change_points(component, partition, changed_record_ids)
                for r in self.replicas]

    def replace_partition(self, component: int, partition) -> list:
        """Replace one component's partition on *every* replica.

        The shard-rebalancing primitive: each replica rebuilds the
        component's synopsis deterministically and publishes it as a new
        state epoch (see :meth:`~repro.core.service.AccuracyTraderService.
        replace_partition`).  Returns the new epoch per replica.
        """
        return [r.replace_partition(component, partition)
                for r in self.replicas]

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        for r in self.replicas:
            r.close()

    def __enter__(self) -> "ReplicaGroup":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ShardedService:
    """A routed cluster of replica groups, itself a ``Servable``.

    Parameters
    ----------
    shards:
        One :class:`ReplicaGroup` (or bare ``AccuracyTraderService``,
        wrapped as a single-replica group) per shard.  Global component
        index is the concatenation in shard order, so clocks, reports and
        merges line up with an unsharded service over the same partition
        sequence.
    merge:
        Cross-shard merge; defaults to shard 0's merge function (the
        paper merges are associative, so component-level merging across
        shards equals the unsharded merge).
    deadline_budgets:
        Per-shard multipliers on the request deadline (default 1.0 each):
        shard s's components run under ``deadline * budgets[s]``, letting
        a deployment grant slow/large shards more refinement time.
    backend:
        Default :class:`~repro.serving.backends.ExecutionBackend`
        (instance, name, or ``None``); one resolved here from a spec is
        owned and closed by :meth:`close`.
    hedge:
        Optional :class:`~repro.strategies.reissue.ReissueStrategy`
        enabling live hedged re-issue (see module docstring).  Requires a
        backend with real queues (thread/process/async) to have any
        effect and at least one shard with two replicas.
    hedge_budget:
        Cap on the fraction of shard calls that may be re-issued (Dean &
        Barroso's ~5% rule, the default): a hedge is only issued while
        ``hedges_issued + 1 <= hedge_budget * shard_calls``, so a
        *systemic* slowdown — where every call looks like a straggler —
        cannot double cluster load.  ``None`` disables the cap.  The
        realized rate is :attr:`hedge_rate` and is surfaced per run in
        :class:`~repro.serving.harness.ServingRunStats`.
    clock_factory:
        Supplies fresh per-component deadline clocks for *hedged* copies
        (primary copies use the ``clocks`` passed to :meth:`process`).
        Defaults to wall clocks — the live-serving setting where hedging
        is meaningful.
    component_map:
        Optional :class:`~repro.workloads.partitioning.ShardMap`
        assigning global record ids to *global components* (its
        ``n_shards`` must equal this cluster's ``n_components``).  With
        a map attached, :meth:`add_points` / :meth:`change_points`
        accept global record ids and route to the owning shard and
        component themselves — the caller never addresses a shard index.
    batch_window, batch_max:
        A non-None ``batch_window`` wraps the default backend in a
        :class:`~repro.serving.backends.BatchingBackend`, coalescing
        concurrent requests' same-``(component, epoch)`` tasks — across
        shards and requests alike — into batched submissions held open
        ``batch_window`` seconds (flushed early at ``batch_max``).
        Hedged copies still queue per task, so tied-request
        cancellation keeps working.
    """

    def __init__(self, shards: Sequence,
                 merge: Callable | None = None,
                 deadline_budgets: Sequence[float] | None = None,
                 backend: ExecutionBackend | str | None = None,
                 hedge: ReissueStrategy | None = None,
                 hedge_budget: float | None = 0.05,
                 clock_factory: ClockFactory | None = None,
                 component_map=None,
                 batch_window: float | None = None,
                 batch_max: int = 32):
        groups = []
        for shard in shards:
            if isinstance(shard, ReplicaGroup):
                groups.append(shard)
            elif isinstance(shard, AccuracyTraderService):
                groups.append(ReplicaGroup([shard]))
            else:
                raise TypeError(
                    f"cannot interpret {shard!r} as a shard; expected a "
                    "ReplicaGroup or AccuracyTraderService")
        if not groups:
            raise ValueError("need at least one shard")
        self.shards: list[ReplicaGroup] = groups
        if deadline_budgets is None:
            self._budgets = [1.0] * len(groups)
        else:
            self._budgets = [float(b) for b in deadline_budgets]
            if len(self._budgets) != len(groups):
                raise ValueError("need one deadline budget per shard")
            if any(b <= 0 for b in self._budgets):
                raise ValueError("deadline budgets must be positive")
        # Global component index = concatenation in shard order.
        self._offsets = []
        off = 0
        for g in groups:
            self._offsets.append(off)
            off += g.n_components
        self._total_components = off
        self.merge = merge if merge is not None else groups[0].merge
        self._owns_backend = not isinstance(backend, ExecutionBackend)
        self.backend = resolve_backend(backend)
        if batch_window is not None:
            self.backend = BatchingBackend(self.backend,
                                           window=batch_window,
                                           max_batch=batch_max,
                                           close_inner=self._owns_backend)
            self._owns_backend = True
        self.hedge = hedge
        if hedge_budget is not None and not (0.0 < hedge_budget <= 1.0):
            raise ValueError("hedge_budget must be in (0, 1] or None")
        self.hedge_budget = hedge_budget
        self._clock_factory = (clock_factory if clock_factory is not None
                               else wall_clock_factory())
        self._hedge_lock = threading.Lock()
        # The hedging counters live in the unified metrics registry; the
        # public int attributes below are read-through properties and
        # ``hedge_counters()`` snapshots the same registry values, so
        # both views are bit-identical by construction.  Mutations still
        # happen under ``_hedge_lock`` — the budget invariant needs
        # ``shard_calls``/``hedges_issued`` to move consistently.
        self.metrics = MetricsRegistry()
        self._shard_calls = self.metrics.counter("shard_calls")
        self._hedges_issued = self.metrics.counter("hedges_issued")
        self._hedge_wins = self.metrics.counter("hedge_wins")
        if component_map is not None and \
                component_map.n_shards != self._total_components:
            raise ValueError(
                f"component map routes records to {component_map.n_shards} "
                f"components but the cluster has {self._total_components}")
        self.component_map = component_map
        # Serialises updates against rebalancing: an update that routed
        # under the old map must publish before a rebalance captures the
        # live partitions (or after it commits the new map), or the
        # rebuild would silently discard it.  Requests never take this
        # lock — they drain against pinned snapshots.
        self._state_write_lock = threading.Lock()

    # ------------------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def n_components(self) -> int:
        return self._total_components

    @property
    def deadline_budgets(self) -> list[float]:
        return list(self._budgets)

    @property
    def shard_calls(self) -> int:
        """Cumulative shard calls issued (registry-backed)."""
        return self._shard_calls.value

    @property
    def hedges_issued(self) -> int:
        """Cumulative hedge copies issued (registry-backed)."""
        return self._hedges_issued.value

    @property
    def hedge_wins(self) -> int:
        """Cumulative shard calls won by the hedge copy (registry-backed)."""
        return self._hedge_wins.value

    @property
    def hedge_rate(self) -> float:
        """Realized re-issue fraction over this service's lifetime."""
        with self._hedge_lock:
            return self._hedges_issued.value / max(self._shard_calls.value, 1)

    def hedge_counters(self) -> dict:
        """Snapshot of the cumulative hedging counters (thread-safe)."""
        with self._hedge_lock:
            return {"shard_calls": self._shard_calls.value,
                    "hedges_issued": self._hedges_issued.value,
                    "hedge_wins": self._hedge_wins.value}

    def _budget_allows_locked(self) -> bool:
        """Whether one more hedge fits the budget (``_hedge_lock`` held).

        The invariant ``hedges_issued <= hedge_budget * shard_calls``
        holds at every instant, so the realized :attr:`hedge_rate` never
        exceeds the configured fraction — the cost is that no hedge can
        fire until ``1 / hedge_budget`` shard calls have been issued.
        """
        if self.hedge_budget is None:
            return True
        return (self._hedges_issued.value + 1
                <= self.hedge_budget * self._shard_calls.value)

    def _shard_clocks(self, clocks, shard: int):
        if clocks is None:
            return None
        off = self._offsets[shard]
        return list(clocks[off:off + self.shards[shard].n_components])

    def _hedge_clocks(self, clocks, shard: int) -> list:
        """Fresh per-component clocks for a hedged copy of one shard call.

        A per-call ``clocks=`` override is threaded through the hedge
        path: each hedge-copy clock is a fresh, uncharged clone of the
        caller's clock for that component (:func:`~repro.core.clock.
        fresh_like`), so a request served under simulated clocks never
        silently hedges on wall clocks.  Without an override, the
        service's ``clock_factory`` supplies the copies (wall clocks by
        default — the live-serving setting).
        """
        shard_clocks = self._shard_clocks(clocks, shard)
        if shard_clocks is not None:
            return [fresh_like(c) for c in shard_clocks]
        off = self._offsets[shard]
        return [self._clock_factory(off + c)
                for c in range(self.shards[shard].n_components)]

    # -- Servable ------------------------------------------------------

    def _check_envelope(self, request, clocks) -> float:
        """Validate one serve call; returns the resolved deadline."""
        if not isinstance(request, ServingRequest):
            raise TypeError(
                "serve() takes a ServingRequest envelope; wrap bare "
                "payloads with as_envelope()")
        if request.deadline is None:
            raise ValueError(
                "serve() needs the envelope deadline resolved; use "
                "request.resolved(default) or with_deadline()")
        if clocks is not None and len(clocks) != self.n_components:
            raise ValueError("need one clock per component")
        return request.deadline

    def _hedge_enabled(self, request: ServingRequest) -> bool:
        """Whether this request may hedge (strategy + per-request override).

        ``request.hedge=False`` opts one request out of hedged re-issue
        entirely; ``True``/``None`` follow the service configuration (a
        ``True`` without an attached strategy still cannot hedge — there
        is no trigger threshold to race).
        """
        return self.hedge is not None and request.hedge is not False

    def serve(self, request: ServingRequest, clocks=None, backend=None,
              ) -> ServingResponse:
        """Fan one envelope out to every shard and merge the answers.

        ``clocks`` (optional) supplies one clock per *global* component.
        The envelope's ``hedge`` field opts a single request out of (or
        into) hedged re-issue; everything else follows the service
        configuration.  Thread-safe: concurrent calls round-robin
        replicas independently and hedging state is lock-protected.
        """
        deadline = self._check_envelope(request, clocks)
        exec_backend = self.backend if backend is None else backend
        tracer = get_tracer()
        request = tracer.trace(request)
        ctx = trace_context_of(request)
        t_dispatch = monotonic()
        picks = [g.next_replica() for g in self.shards]
        with self._hedge_lock:
            self._shard_calls.inc(self.n_shards)
        with tracer.span("router.serve", ctx, shards=self.n_shards,
                         hedged=self._hedge_enabled(request)) as sp:
            task_request = (request if sp.ctx is ctx
                            else attach_context(request, sp.ctx))
            if not self._hedge_enabled(request):
                outcomes = self._run_unhedged(task_request, deadline, clocks,
                                              exec_backend, picks)
            else:
                outcomes = self._run_hedged(task_request, deadline, clocks,
                                            exec_backend, picks)
            tracer.ingest_outcomes(outcomes)
            results = [o.result for o in outcomes]
            reports = [o.report for o in outcomes]
            answer = self.merge(results, request.payload)
        return ServingResponse(
            answer=answer, reports=reports,
            request=request, service_time=monotonic() - t_dispatch)

    async def aserve(self, request: ServingRequest, clocks=None,
                     backend=None) -> ServingResponse:
        """Async :meth:`serve`: shard fan-out as concurrent coroutines.

        The hedged variant is the event-loop version of the tied-request
        protocol: each shard call is an awaitable copy raced with
        ``asyncio.wait(FIRST_COMPLETED)``, and the losing copy is
        *really* cancelled — its next await raises ``CancelledError``
        and its remaining stalls never run, where the thread tier can
        only drop a still-queued future.  Budget, placement, and
        counters are shared with the sync path.
        """
        deadline = self._check_envelope(request, clocks)
        exec_backend = self.backend if backend is None else backend
        tracer = get_tracer()
        request = tracer.trace(request)
        ctx = trace_context_of(request)
        t_dispatch = monotonic()
        picks = [g.next_replica() for g in self.shards]
        with self._hedge_lock:
            self._shard_calls.inc(self.n_shards)
        with tracer.span("router.serve", ctx, shards=self.n_shards,
                         hedged=self._hedge_enabled(request)) as sp:
            task_request = (request if sp.ctx is ctx
                            else attach_context(request, sp.ctx))
            if not self._hedge_enabled(request):
                per_shard = await asyncio.gather(
                    *(self._arun_shard_copy(task_request, deadline, clocks,
                                            s, picks[s], exec_backend)
                      for s in range(self.n_shards)))
            else:
                per_shard = await asyncio.gather(
                    *(self._arun_hedged_shard(task_request, deadline, clocks,
                                              s, picks[s], exec_backend)
                      for s in range(self.n_shards)))
            outcomes = [o for shard in per_shard for o in shard]
            tracer.ingest_outcomes(outcomes)
            results = [o.result for o in outcomes]
            reports = [o.report for o in outcomes]
            answer = self.merge(results, request.payload)
        return ServingResponse(
            answer=answer, reports=reports,
            request=request, service_time=monotonic() - t_dispatch)

    async def _arun_shard_copy(self, request, deadline, clocks, shard: int,
                               replica: int, exec_backend) -> list:
        """Await one copy of one shard call on ``replica``."""
        from repro.serving.aio import arun_tasks

        group = self.shards[shard]
        t0 = monotonic()
        outcomes = await arun_tasks(
            exec_backend,
            group.replicas[replica].build_tasks(
                request, deadline * self._budgets[shard],
                self._shard_clocks(clocks, shard)))
        now = monotonic()
        group.observe_latency(replica, now - t0)
        get_tracer().record("shard.call", trace_context_of(request), t0, now,
                            shard=shard, replica=replica)
        return outcomes

    async def _arun_hedged_shard(self, request, deadline, clocks,
                                 shard: int, replica: int,
                                 exec_backend) -> list:
        """One shard call with live hedged re-issue, async edition."""
        from repro.serving.aio import arun_tasks

        group = self.shards[shard]
        t0 = monotonic()

        async def run_copy(rep: int, fresh_clocks) -> list:
            tasks = group.replicas[rep].build_tasks(
                request, deadline * self._budgets[shard], fresh_clocks)
            return await arun_tasks(exec_backend, tasks)

        primary = asyncio.ensure_future(
            run_copy(replica, self._shard_clocks(clocks, shard)))
        hedge_task = None
        hedge_replica = None
        hedge_t0 = None
        try:
            if group.n_replicas > 1:
                # Race the primary against the adaptive-p95 threshold.
                timeout = max(0.0, self.hedge.threshold
                              - (monotonic() - t0))
                done, _ = await asyncio.wait({primary}, timeout=timeout)
                if not done:
                    with self._hedge_lock:
                        allowed = self._budget_allows_locked()
                        if allowed:
                            self._hedges_issued.inc()
                    if allowed:
                        hedge_replica = group.hedge_sibling(replica)
                        fresh = self._hedge_clocks(clocks, shard)
                        hedge_t0 = monotonic()
                        hedge_task = asyncio.ensure_future(
                            run_copy(hedge_replica, fresh))
            if hedge_task is None:
                outcomes = await primary
                winner_replica, copy_t0 = replica, t0
                hedge_won = False
            else:
                done, _ = await asyncio.wait({primary, hedge_task},
                                             return_when=FIRST_COMPLETED)
                if primary in done:
                    winner, loser = primary, hedge_task
                    winner_replica, copy_t0 = replica, t0
                    hedge_won = False
                else:
                    winner, loser = hedge_task, primary
                    winner_replica, copy_t0 = hedge_replica, hedge_t0
                    hedge_won = True
                    with self._hedge_lock:
                        self._hedge_wins.inc()
                # Real tied-request cancellation: the losing copy's next
                # await raises CancelledError; reap it before returning.
                loser.cancel()
                await asyncio.gather(loser, return_exceptions=True)
                outcomes = winner.result()
        except asyncio.CancelledError:
            for copy in (primary, hedge_task):
                if copy is not None:
                    copy.cancel()
            await asyncio.gather(
                *(c for c in (primary, hedge_task) if c is not None),
                return_exceptions=True)
            raise
        now = monotonic()
        with self._hedge_lock:
            # Effective shard-call latency (from submission) feeds the
            # threshold estimator; the winning copy's own service time
            # feeds the placement EWMA (see the sync path).
            self.hedge.observe(now - t0)
        group.observe_latency(winner_replica, now - copy_t0)
        ctx = trace_context_of(request)
        if ctx is not None and ctx.sampled:
            tracer = get_tracer()
            tracer.record("shard.primary", ctx, t0, now, shard=shard,
                          replica=replica, winner=not hedge_won,
                          cancelled=hedge_won)
            if hedge_task is not None:
                tracer.record("shard.hedge", ctx, hedge_t0, now, shard=shard,
                              replica=hedge_replica, winner=hedge_won,
                              cancelled=not hedge_won)
        return outcomes

    def exact_components(self, request) -> list:
        payload = payload_of(request)
        return [r for g in self.shards for r in g.exact_components(payload)]

    def exact(self, request) -> Any:
        payload = payload_of(request)
        return self.merge(self.exact_components(payload), payload)

    # -- dispatch ------------------------------------------------------

    def _build_tasks(self, request, deadline: float, clocks, shard: int,
                     replica: int) -> list:
        group = self.shards[shard]
        return group.replicas[replica].build_tasks(
            request, deadline * self._budgets[shard],
            self._shard_clocks(clocks, shard))

    def _run_unhedged(self, request, deadline, clocks, exec_backend,
                      picks) -> list:
        # One flat dispatch: all shards' components fan out together, so
        # a parallel backend overlaps work across shards, not just within.
        tasks = [t for s in range(self.n_shards)
                 for t in self._build_tasks(request, deadline, clocks, s,
                                            picks[s])]
        return exec_backend.run_tasks(tasks)

    def _run_hedged(self, request, deadline, clocks, exec_backend,
                    picks) -> list:
        t0 = monotonic()
        ctx = trace_context_of(request)
        tracer = get_tracer()
        primary = []
        for s in range(self.n_shards):
            tasks = self._build_tasks(request, deadline, clocks, s, picks[s])
            primary.append([exec_backend.submit_task(t) for t in tasks])
        hedges: list[list | None] = [None] * self.n_shards
        hedge_replicas: list[int | None] = [None] * self.n_shards
        hedge_issued_at: list[float | None] = [None] * self.n_shards
        winners: list[list | None] = [None] * self.n_shards
        unfinished = set(range(self.n_shards))
        denied: set[int] = set()  # budget refused; single-shot per request

        while unfinished:
            # Completion first: first copy whose components all finished
            # wins (an already-answered shard call must never hedge).
            for s in list(unfinished):
                if all(f.done() for f in primary[s]):
                    winners[s], loser = primary[s], hedges[s]
                    winner_replica, copy_t0 = picks[s], t0
                    hedge_won = False
                elif hedges[s] is not None and \
                        all(f.done() for f in hedges[s]):
                    winners[s], loser = hedges[s], primary[s]
                    winner_replica, copy_t0 = \
                        hedge_replicas[s], hedge_issued_at[s]
                    hedge_won = True
                    with self._hedge_lock:
                        self._hedge_wins.inc()
                else:
                    continue
                unfinished.discard(s)
                now = monotonic()
                with self._hedge_lock:
                    # The strategy estimates *effective* shard-call
                    # latency: first copy to finish, measured from
                    # submission (hedge wait included).
                    self.hedge.observe(now - t0)
                # The placement EWMA instead wants the winning copy's
                # *own* service time, or a hedge target would be
                # charged the trigger wait it never caused.
                self.shards[s].observe_latency(winner_replica,
                                               now - copy_t0)
                if ctx is not None and ctx.sampled:
                    # Sibling spans: both copies of the shard call, the
                    # winner marked, the loser marked cancelled.
                    tracer.record("shard.primary", ctx, t0, now, shard=s,
                                  replica=picks[s], winner=not hedge_won,
                                  cancelled=hedge_won)
                    if hedges[s] is not None:
                        tracer.record("shard.hedge", ctx,
                                      hedge_issued_at[s], now, shard=s,
                                      replica=hedge_replicas[s],
                                      winner=hedge_won,
                                      cancelled=not hedge_won)
                if loser:
                    # Best-effort tied-request cancellation: only queued
                    # copies can be cancelled; running ones complete and
                    # their answers are discarded.
                    for f in loser:
                        f.cancel()
            if not unfinished:
                break
            now = monotonic()
            threshold = self.hedge.threshold
            # Trigger: shard call outstanding beyond the adaptive p95 —
            # and within the hedge budget (a denied shard stays denied
            # for this request; re-checking would busy-spin).
            issued_now = False
            for s in list(unfinished):
                group = self.shards[s]
                if (hedges[s] is None and s not in denied
                        and group.n_replicas > 1 and now - t0 >= threshold):
                    with self._hedge_lock:
                        allowed = self._budget_allows_locked()
                        if allowed:
                            self._hedges_issued.inc()
                    if not allowed:
                        denied.add(s)
                        continue
                    sibling = group.hedge_sibling(picks[s])
                    hedge_replicas[s] = sibling
                    hedge_issued_at[s] = monotonic()
                    fresh = self._hedge_clocks(clocks, s)
                    tasks = group.replicas[sibling].build_tasks(
                        request, deadline * self._budgets[s], fresh)
                    hedges[s] = [exec_backend.submit_task(t) for t in tasks]
                    issued_now = True
            if issued_now:
                # A hedge copy may already have completed while it was
                # being issued; re-run the completion check before
                # blocking, or we would wait on the losing primary.
                continue
            outstanding = [
                f for s in unfinished
                for f in [*primary[s], *(hedges[s] or [])]
                if not f.done()
            ]
            can_hedge_more = any(
                hedges[s] is None and s not in denied
                and self.shards[s].n_replicas > 1
                for s in unfinished)
            timeout = (max(0.0, threshold - (monotonic() - t0))
                       if can_hedge_more else None)
            if outstanding:
                wait(outstanding, timeout=timeout,
                     return_when=FIRST_COMPLETED)
        return [f.result() for s in range(self.n_shards)
                for f in winners[s]]

    # -- updates: routed by the component map, fanned out by the group --

    def locate_component(self, component: int) -> tuple[int, int]:
        """Map a *global* component index to ``(shard, local component)``."""
        if not (0 <= component < self._total_components):
            raise IndexError(
                f"component {component} out of range "
                f"[0, {self._total_components})")
        shard = 0
        for s in range(self.n_shards):
            if component >= self._offsets[s]:
                shard = s
        return shard, component - self._offsets[shard]

    def locate_record(self, record_id: int) -> tuple[int, int, int]:
        """``(shard, local component, local record id)`` of a global id."""
        if self.component_map is None:
            raise ValueError("record routing requires a component_map")
        component = self.component_map.shard_of(record_id)
        shard, local_component = self.locate_component(component)
        return shard, local_component, self.component_map.local_id(record_id)

    def _route_update(self, record_ids, grow: bool):
        """Resolve global ``record_ids`` to one component's local ids.

        ``grow`` extends the component map over previously-unseen ids
        (add-points); change-points of an unknown id is an error.  All
        ids must land on the same component — per-component synopsis
        updates are atomic units, so a multi-component batch must be
        split by the caller (use :meth:`locate_record` to group them).

        Returns ``(shard, local_component, local_ids, grown_map)``; the
        caller commits ``grown_map`` to :attr:`component_map` only once
        the update succeeded, so a rejected or failed update never
        leaves the map claiming records no component holds.
        """
        if self.component_map is None:
            raise ValueError(
                "shard-map update routing requires a component_map; "
                "pass component= to address a component explicitly")
        ids = [int(r) for r in record_ids]
        if not ids:
            raise ValueError("need at least one record id")
        top = max(ids)
        grown = self.component_map
        if top >= grown.n_records:
            if not grow:
                raise IndexError(
                    f"record {top} is beyond the component map "
                    f"({grown.n_records} records)")
            # Growth must be gap-free: every id the map would newly
            # cover has to be in this batch, or the map would claim
            # records no component ever received.
            missing = sorted(set(range(grown.n_records, top + 1))
                             - set(ids))
            if missing:
                raise ValueError(
                    f"new record ids skip {missing[:5]}"
                    f"{'...' if len(missing) > 5 else ''}; the id space "
                    "grows contiguously from "
                    f"{grown.n_records}")
            grown = grown.with_records_added(top + 1 - grown.n_records)
        components = {grown.shard_of(r) for r in ids}
        if len(components) != 1:
            raise ValueError(
                f"record ids span components {sorted(components)}; split "
                "the update per component (see locate_record)")
        component = components.pop()
        shard, local_component = self.locate_component(component)
        return shard, local_component, \
            [grown.local_id(r) for r in ids], grown

    def add_points(self, partition, new_record_ids,
                   component: int | None = None) -> list:
        """Add-points on the owning component, on every replica.

        With ``component`` given (a *global* component index),
        ``new_record_ids`` are that component's local record ids — the
        explicit addressing mode.  Otherwise the update routes through
        the component map: ``new_record_ids`` are global record ids (the
        map grows over new ids), and the owning shard and component are
        resolved here.  ``partition`` is the component's new partition
        in both modes.  Serialised against :meth:`rebalance` (an update
        routed under a map must land before a move recaptures state).
        """
        with self._state_write_lock:
            if component is not None:
                shard, local_component = self.locate_component(component)
                return self.shards[shard].add_points(
                    local_component, partition, new_record_ids)
            shard, local_component, local_ids, grown = \
                self._route_update(new_record_ids, grow=True)
            reports = self.shards[shard].add_points(local_component,
                                                    partition, local_ids)
            self.component_map = grown
            return reports

    def change_points(self, partition, changed_record_ids,
                      component: int | None = None) -> list:
        """Change-points on the owning component, on every replica.

        Addressing modes as in :meth:`add_points`; changed ids must
        already be covered by the component map.  Serialised against
        :meth:`rebalance`.
        """
        with self._state_write_lock:
            if component is not None:
                shard, local_component = self.locate_component(component)
                return self.shards[shard].change_points(
                    local_component, partition, changed_record_ids)
            shard, local_component, local_ids, _ = \
                self._route_update(changed_record_ids, grow=False)
            return self.shards[shard].change_points(local_component,
                                                    partition, local_ids)

    # -- online rebalancing: move records between live shards ----------

    def rebalance(self, moves) -> RebalanceReport:
        """Move records between live shards; requests keep serving.

        ``moves`` maps global record ids to destination *global
        components* (dict or ``(record_id, component)`` pairs — the
        component map's granularity, so a destination addresses both a
        shard and a component within it).  The operation:

        1. derives the new component map and the minimal set of
           affected components (:meth:`~repro.workloads.partitioning.
           ShardMap.rebalance`);
        2. rebuilds exactly those components' partitions from the live
           ones (:func:`~repro.workloads.partitioning.
           reshard_partitions` — bit-identical to a cold build over the
           new map);
        3. publishes each rebuilt partition as a **new state epoch** on
           every replica of the owning shards, while in-flight requests
           keep draining against their dispatch-time epochs — no torn
           component reads, no pause.  (Requests dispatched *during*
           this publication loop may pin a mix of pre- and post-move
           components — each internally consistent; an atomic
           cross-component cut is a ROADMAP follow-on);
        4. commits the new component map, so subsequent updates route
           to the records' new homes.

        Bit-identity guarantees: requests dispatched before the move
        complete with their pre-move answers (epoch pinning), and the
        post-move cluster state is bit-identical to one built cold over
        the new map — rebalancing never introduces state drift.  All
        validation happens before step 3, so a rejected move (unknown
        record, emptied component) leaves the cluster untouched.

        Serialised against :meth:`add_points` / :meth:`change_points`
        (``_state_write_lock``): an update that routed under the old
        map publishes before this move captures the live partitions, or
        waits for the new map — it is never silently discarded by the
        rebuild.  Requests are unaffected: they never take the lock.
        """
        if self.component_map is None:
            raise ValueError("rebalancing requires a component_map")
        with self._state_write_lock:
            new_map, affected = self.component_map.rebalance(moves)
            if not affected:
                return RebalanceReport(n_moved=0, affected_components=[])
            counts = new_map.counts()
            empty = [c for c in affected if int(counts[c]) == 0]
            if empty:
                raise ValueError(
                    f"rebalance would empty component(s) {empty}; every "
                    "component must keep at least one record")
            old_map = self.component_map
            n_moved = int(np.count_nonzero(
                new_map.assignments != old_map.assignments))
            parts = [self._component_partition(c)
                     for c in range(self.n_components)]
            rebuilt = reshard_partitions(parts, old_map, new_map, affected)
            epochs: dict[int, list] = {}
            for c in affected:
                shard, local_component = self.locate_component(c)
                epochs[c] = self.shards[shard].replace_partition(
                    local_component, rebuilt[c])
            self.component_map = new_map
            return RebalanceReport(n_moved=n_moved,
                                   affected_components=list(affected),
                                   epochs=epochs)

    def _component_partition(self, component: int):
        """The live partition of a global component (replica 0's view).

        Replicas hold bit-identical logical state, so replica 0 stands
        for the group.
        """
        shard, local_component = self.locate_component(component)
        group = self.shards[shard]
        return group.replicas[0].component_state(local_component).partition

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Close the owned backend and every shard's replicas."""
        if self._owns_backend:
            self.backend.close()
        for g in self.shards:
            g.close()

    def __enter__(self) -> "ShardedService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
