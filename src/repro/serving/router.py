"""Router tier: scale-out serving over sharded, replicated services.

After PR 1 the live path served one monolithic
:class:`~repro.core.service.AccuracyTraderService`; only the *simulator*
(:mod:`repro.cluster.hedged`) knew about shards, replicas, and hedging.
This module closes that gap with two more :class:`~repro.core.servable.
Servable` implementations, so :class:`~repro.serving.harness.
ServingHarness` and :class:`~repro.serving.loadgen.LoadGenerator` drive
a routed cluster completely unchanged:

- :class:`ReplicaGroup` — N replica services over the *same* partitions.
  Requests round-robin across replicas; synopsis updates fan out to all
  of them, keeping every replica able to answer for the group.
- :class:`ShardedService` — a router over many replica groups, each
  owning one shard of the data (build shards with the
  :class:`~repro.workloads.partitioning.ShardMap` helpers).  A request
  fans out to every shard with a per-shard deadline budget, and the
  per-component results merge across shards through the same associative
  merge functions a single service uses — so a routed answer is
  bit-identical to the unsharded one over the same partitions.

Live hedged re-issue
--------------------

With a :class:`~repro.strategies.reissue.ReissueStrategy` attached, the
router mirrors :class:`~repro.cluster.hedged.HedgedFanoutSimulator`
semantics on the live path (Dean & Barroso's tied requests, paper §4.1):

- a shard call outstanding longer than the strategy's adaptive p95
  threshold is re-issued once on a sibling replica;
- the first copy to complete wins; the loser is cancelled *best-effort*
  — a queued copy is dropped (``Future.cancel``), a copy already
  executing runs to completion and its answer is discarded;
- every shard call's effective latency (first copy to finish) feeds the
  strategy's threshold estimator, so measured and simulated hedging are
  directly comparable.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_COMPLETED, wait
from typing import Any, Callable, Sequence

from repro.core.clock import ClockFactory, wall_clock_factory
from repro.core.processor import ProcessingReport
from repro.core.service import AccuracyTraderService
from repro.serving.backends import ExecutionBackend, resolve_backend
from repro.strategies.reissue import ReissueStrategy

__all__ = ["ReplicaGroup", "ShardedService"]


class ReplicaGroup:
    """N replica services over the same partitions — one logical shard.

    All replicas must agree on component count; with the deterministic
    seeded synopsis build, replicas constructed from the same inputs hold
    bit-identical state, so any replica can answer for the group.
    Replicas may still differ *operationally* (e.g. one wrapped in
    :class:`~repro.serving.adapters.IOStallAdapter` to model a slow
    node), which is what live hedging exploits.

    Parameters
    ----------
    replicas:
        Pre-built :class:`~repro.core.service.AccuracyTraderService`
        instances (use :meth:`build` to construct identical ones).
    """

    def __init__(self, replicas: Sequence[AccuracyTraderService]):
        replicas = list(replicas)
        if not replicas:
            raise ValueError("need at least one replica")
        n0 = replicas[0].n_components
        if any(r.n_components != n0 for r in replicas):
            raise ValueError("replicas must have the same component count")
        self.replicas = replicas
        self._next = 0
        self._pick_lock = threading.Lock()

    @classmethod
    def build(cls, adapter, partitions, n_replicas: int,
              **service_kwargs) -> "ReplicaGroup":
        """Construct ``n_replicas`` identical services over ``partitions``."""
        if n_replicas < 1:
            raise ValueError("need at least one replica")
        partitions = list(partitions)
        return cls([AccuracyTraderService(adapter, partitions,
                                          **service_kwargs)
                    for _ in range(n_replicas)])

    # ------------------------------------------------------------------

    @property
    def n_replicas(self) -> int:
        return len(self.replicas)

    @property
    def n_components(self) -> int:
        return self.replicas[0].n_components

    @property
    def merge(self) -> Callable:
        return self.replicas[0].merge

    def next_replica(self) -> int:
        """Round-robin replica index for the next request (thread-safe)."""
        with self._pick_lock:
            i = self._next % self.n_replicas
            self._next += 1
            return i

    def sibling_of(self, replica: int) -> int:
        """The replica a straggling call on ``replica`` is hedged to."""
        return (replica + 1) % self.n_replicas

    # -- Servable ------------------------------------------------------

    def process(self, request, deadline: float, clocks=None, backend=None,
                ) -> tuple[Any, list[ProcessingReport]]:
        """Answer on the next replica in round-robin order."""
        replica = self.replicas[self.next_replica()]
        return replica.process(request, deadline, clocks=clocks,
                               backend=backend)

    def exact_components(self, request) -> list:
        return self.replicas[0].exact_components(request)

    def exact(self, request) -> Any:
        return self.replicas[0].exact(request)

    # -- updates: fan out so replicas stay interchangeable -------------

    def add_points(self, component: int, partition, new_record_ids) -> list:
        """Apply an add-points update on *every* replica; list of reports."""
        return [r.add_points(component, partition, new_record_ids)
                for r in self.replicas]

    def change_points(self, component: int, partition,
                      changed_record_ids) -> list:
        """Apply a change-points update on *every* replica; list of reports."""
        return [r.change_points(component, partition, changed_record_ids)
                for r in self.replicas]

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        for r in self.replicas:
            r.close()

    def __enter__(self) -> "ReplicaGroup":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ShardedService:
    """A routed cluster of replica groups, itself a ``Servable``.

    Parameters
    ----------
    shards:
        One :class:`ReplicaGroup` (or bare ``AccuracyTraderService``,
        wrapped as a single-replica group) per shard.  Global component
        index is the concatenation in shard order, so clocks, reports and
        merges line up with an unsharded service over the same partition
        sequence.
    merge:
        Cross-shard merge; defaults to shard 0's merge function (the
        paper merges are associative, so component-level merging across
        shards equals the unsharded merge).
    deadline_budgets:
        Per-shard multipliers on the request deadline (default 1.0 each):
        shard s's components run under ``deadline * budgets[s]``, letting
        a deployment grant slow/large shards more refinement time.
    backend:
        Default :class:`~repro.serving.backends.ExecutionBackend`
        (instance, name, or ``None``); one resolved here from a spec is
        owned and closed by :meth:`close`.
    hedge:
        Optional :class:`~repro.strategies.reissue.ReissueStrategy`
        enabling live hedged re-issue (see module docstring).  Requires a
        backend with real queues (thread/process) to have any effect and
        at least one shard with two replicas.
    clock_factory:
        Supplies fresh per-component deadline clocks for *hedged* copies
        (primary copies use the ``clocks`` passed to :meth:`process`).
        Defaults to wall clocks — the live-serving setting where hedging
        is meaningful.
    """

    def __init__(self, shards: Sequence,
                 merge: Callable | None = None,
                 deadline_budgets: Sequence[float] | None = None,
                 backend: ExecutionBackend | str | None = None,
                 hedge: ReissueStrategy | None = None,
                 clock_factory: ClockFactory | None = None):
        groups = []
        for shard in shards:
            if isinstance(shard, ReplicaGroup):
                groups.append(shard)
            elif isinstance(shard, AccuracyTraderService):
                groups.append(ReplicaGroup([shard]))
            else:
                raise TypeError(
                    f"cannot interpret {shard!r} as a shard; expected a "
                    "ReplicaGroup or AccuracyTraderService")
        if not groups:
            raise ValueError("need at least one shard")
        self.shards: list[ReplicaGroup] = groups
        if deadline_budgets is None:
            self._budgets = [1.0] * len(groups)
        else:
            self._budgets = [float(b) for b in deadline_budgets]
            if len(self._budgets) != len(groups):
                raise ValueError("need one deadline budget per shard")
            if any(b <= 0 for b in self._budgets):
                raise ValueError("deadline budgets must be positive")
        # Global component index = concatenation in shard order.
        self._offsets = []
        off = 0
        for g in groups:
            self._offsets.append(off)
            off += g.n_components
        self._total_components = off
        self.merge = merge if merge is not None else groups[0].merge
        self._owns_backend = not isinstance(backend, ExecutionBackend)
        self.backend = resolve_backend(backend)
        self.hedge = hedge
        self._clock_factory = (clock_factory if clock_factory is not None
                               else wall_clock_factory())
        self._hedge_lock = threading.Lock()
        self.hedges_issued = 0
        self.hedge_wins = 0

    # ------------------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def n_components(self) -> int:
        return self._total_components

    @property
    def deadline_budgets(self) -> list[float]:
        return list(self._budgets)

    def _shard_clocks(self, clocks, shard: int):
        if clocks is None:
            return None
        off = self._offsets[shard]
        return list(clocks[off:off + self.shards[shard].n_components])

    # -- Servable ------------------------------------------------------

    def process(self, request, deadline: float, clocks=None, backend=None,
                ) -> tuple[Any, list[ProcessingReport]]:
        """Fan ``request`` out to every shard and merge the answers.

        ``clocks`` (optional) supplies one clock per *global* component.
        Thread-safe: concurrent calls round-robin replicas independently
        and hedging state is lock-protected.
        """
        if clocks is not None and len(clocks) != self.n_components:
            raise ValueError("need one clock per component")
        exec_backend = self.backend if backend is None else backend
        picks = [g.next_replica() for g in self.shards]
        if self.hedge is None:
            outcomes = self._run_unhedged(request, deadline, clocks,
                                          exec_backend, picks)
        else:
            outcomes = self._run_hedged(request, deadline, clocks,
                                        exec_backend, picks)
        results = [o.result for o in outcomes]
        reports = [o.report for o in outcomes]
        return self.merge(results, request), reports

    def exact_components(self, request) -> list:
        return [r for g in self.shards for r in g.exact_components(request)]

    def exact(self, request) -> Any:
        return self.merge(self.exact_components(request), request)

    # -- dispatch ------------------------------------------------------

    def _build_tasks(self, request, deadline: float, clocks, shard: int,
                     replica: int) -> list:
        group = self.shards[shard]
        return group.replicas[replica].build_tasks(
            request, deadline * self._budgets[shard],
            self._shard_clocks(clocks, shard))

    def _run_unhedged(self, request, deadline, clocks, exec_backend,
                      picks) -> list:
        # One flat dispatch: all shards' components fan out together, so
        # a parallel backend overlaps work across shards, not just within.
        tasks = [t for s in range(self.n_shards)
                 for t in self._build_tasks(request, deadline, clocks, s,
                                            picks[s])]
        return exec_backend.run_tasks(tasks)

    def _run_hedged(self, request, deadline, clocks, exec_backend,
                    picks) -> list:
        t0 = time.monotonic()
        primary = []
        for s in range(self.n_shards):
            tasks = self._build_tasks(request, deadline, clocks, s, picks[s])
            primary.append([exec_backend.submit_task(t) for t in tasks])
        hedges: list[list | None] = [None] * self.n_shards
        winners: list[list | None] = [None] * self.n_shards
        unfinished = set(range(self.n_shards))

        while unfinished:
            # Completion first: first copy whose components all finished
            # wins (an already-answered shard call must never hedge).
            for s in list(unfinished):
                if all(f.done() for f in primary[s]):
                    winners[s], loser = primary[s], hedges[s]
                elif hedges[s] is not None and \
                        all(f.done() for f in hedges[s]):
                    winners[s], loser = hedges[s], primary[s]
                    with self._hedge_lock:
                        self.hedge_wins += 1
                else:
                    continue
                unfinished.discard(s)
                with self._hedge_lock:
                    self.hedge.observe(time.monotonic() - t0)
                if loser:
                    # Best-effort tied-request cancellation: only queued
                    # copies can be cancelled; running ones complete and
                    # their answers are discarded.
                    for f in loser:
                        f.cancel()
            if not unfinished:
                break
            now = time.monotonic()
            threshold = self.hedge.threshold
            # Trigger: shard call outstanding beyond the adaptive p95.
            issued_now = False
            for s in list(unfinished):
                group = self.shards[s]
                if (hedges[s] is None and group.n_replicas > 1
                        and now - t0 >= threshold):
                    sibling = group.sibling_of(picks[s])
                    off = self._offsets[s]
                    fresh = [self._clock_factory(off + c)
                             for c in range(group.n_components)]
                    tasks = group.replicas[sibling].build_tasks(
                        request, deadline * self._budgets[s], fresh)
                    hedges[s] = [exec_backend.submit_task(t) for t in tasks]
                    issued_now = True
                    with self._hedge_lock:
                        self.hedges_issued += 1
            if issued_now:
                # A hedge copy may already have completed while it was
                # being issued; re-run the completion check before
                # blocking, or we would wait on the losing primary.
                continue
            outstanding = [
                f for s in unfinished
                for f in [*primary[s], *(hedges[s] or [])]
                if not f.done()
            ]
            can_hedge_more = any(
                hedges[s] is None and self.shards[s].n_replicas > 1
                for s in unfinished)
            timeout = (max(0.0, threshold - (time.monotonic() - t0))
                       if can_hedge_more else None)
            if outstanding:
                wait(outstanding, timeout=timeout,
                     return_when=FIRST_COMPLETED)
        return [f.result() for s in range(self.n_shards)
                for f in winners[s]]

    # -- updates: routed by shard, fanned out by the group -------------

    def add_points(self, shard: int, component: int, partition,
                   new_record_ids) -> list:
        """Add-points on one shard's component, on every replica."""
        return self.shards[shard].add_points(component, partition,
                                             new_record_ids)

    def change_points(self, shard: int, component: int, partition,
                      changed_record_ids) -> list:
        """Change-points on one shard's component, on every replica."""
        return self.shards[shard].change_points(component, partition,
                                                changed_record_ids)

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Close the owned backend and every shard's replicas."""
        if self._owns_backend:
            self.backend.close()
        for g in self.shards:
            g.close()

    def __enter__(self) -> "ShardedService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
