"""Socket transport: remote components and a wire state plane.

Everything below PR 5 runs in one process tree: shard replicas are
objects, the state plane is a spill directory, and "shipping" a task
means pickling it into a :mod:`concurrent.futures` pool.  This module
moves both planes onto TCP sockets on localhost so replicas run as
separate processes behind the same :class:`~repro.core.servable.
Servable` protocol:

- **Framing** — every message is one length-prefixed frame: a fixed
  header (magic, wire version, kind, message id, payload length)
  followed by a pickled payload.  :func:`encode_frame` /
  :func:`decode_frame` are pure (unit-testable); :func:`write_frame` /
  :func:`read_frame` move frames over sockets and count bytes.

- **Request plane** — :class:`RemoteServable` spawns a service process
  (or any :class:`~repro.core.servable.Servable` factory) and speaks
  the request/response framing to it.  It exposes ``build_tasks`` /
  ``serve`` / ``aserve`` / update methods, so it plugs into
  :class:`~repro.serving.router.ReplicaGroup` (and, wrapped in one,
  :class:`~repro.serving.router.ShardedService`) **unchanged**: its
  tasks carry a ``runner`` that forwards execution over the socket
  while the local backend keeps doing the scheduling.

- **State plane** — :class:`RemoteBackend` is the socket analogue of
  :class:`~repro.serving.backends.PersistentProcessBackend`: worker
  processes connect back over TCP, state snapshots are published
  **once per epoch per worker** as explicit frames, and per task only
  a detached :class:`~repro.core.state.StateRef` travels.  On an
  epoch-to-epoch transition the parent ships the smallest of three
  encodings: a *semantic* delta (only the groups the updater
  re-aggregated, via :func:`~repro.core.state.compute_semantic_delta`
  when the store recorded an :class:`~repro.core.state.UpdateHint`), a
  content-defined *CDC* byte delta (:func:`~repro.core.state.
  compute_delta`), or the full snapshot — so state traffic scales
  with **update size**, not synopsis size.  Whole-blob checksums on
  apply keep reconstruction bit-identical or loudly failed.

- **Multiplexing** — both planes pipeline: any number of RPCs can be
  in flight per socket, correlated by the header's ``msg_id``, with a
  reader thread matching out-of-order replies to pending futures.
  :class:`RemoteServable` can hold N parallel links to one service
  process (``spawn(..., n_links=N)``) and picks the least-loaded link
  per call; :class:`RemoteChannel` supports an optional per-link
  in-flight cap.

- **Batch framing** — :meth:`RemoteBackend.submit_batch` ships a whole
  coalesced batch (e.g. from :class:`~repro.serving.backends.
  BatchingBackend`) as **one** ``KIND_BATCH`` frame and the worker
  runs it through :func:`~repro.serving.backends.run_component_batch`,
  so vectorized same-state kernels survive the process boundary.

Frames on one connection are strictly ordered and workers apply state
frames in their reader thread *before* resolving any later task frame,
so a task can never observe a half-applied or missing epoch that was
published ahead of it.

Hedging note: a :class:`RemoteBackend` task future is set running at
submit, so :meth:`~concurrent.futures.Future.cancel` on the losing
copy returns ``False`` and the remote copy runs to completion —
exactly Dean & Barroso's tied-request semantics for in-service copies.
:class:`RemoteChannel` futures stay cancellable until their reply
arrives: cancelling one in-flight RPC leaves its siblings on the same
socket untouched (the reader simply drops the late reply).
"""

from __future__ import annotations

import errno
import io
import itertools
import pickle
import socket
import struct
import threading
import time
import traceback
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import replace
from typing import Any, Callable, Sequence

from repro.core.clock import DeadlineClock, SimulatedClock, monotonic
from repro.core.servable import default_merge
from repro.core.state import (PICKLE_PROTOCOL, StaleEpochError, apply_delta,
                              apply_semantic_delta, blob_digest,
                              compute_delta, compute_semantic_delta)
from repro.serving.backends import (ComponentOutcome, ComponentTask,
                                    ExecutionBackend, _preferred_mp_context,
                                    _scatter_batch_future,
                                    run_component_batch, run_component_task)
from repro.serving.telemetry import get_tracer, trace_context_of

__all__ = [
    "MAGIC",
    "WIRE_VERSION",
    "KIND_REQUEST",
    "KIND_RESPONSE",
    "KIND_ERROR",
    "KIND_STATE",
    "KIND_TASK",
    "KIND_OUTCOME",
    "KIND_CONTROL",
    "KIND_BATCH",
    "encode_frame",
    "decode_frame",
    "write_frame",
    "read_frame",
    "bind_with_retry",
    "connect_with_retry",
    "RemoteError",
    "RemoteChannel",
    "RemoteServable",
    "RemoteBackend",
]


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------

MAGIC = b"RPRO"
#: Version 2: payloads pickled with :data:`~repro.core.state.
#: PICKLE_PROTOCOL` (``pickle.HIGHEST_PROTOCOL``) instead of the
#: interpreter default, plus the ``KIND_BATCH`` frame kind.  Decoding
#: is strict — a version-1 peer is refused, never silently mis-read.
WIRE_VERSION = 2

#: magic(4) | version(1) | kind(1) | msg_id(8) | payload length(8)
_HEADER = struct.Struct(">4sBBQQ")

KIND_REQUEST = 1   # ServingRequest-level RPC (client -> service process)
KIND_RESPONSE = 2  # successful RPC reply
KIND_ERROR = 3     # RPC reply carrying a remote exception
KIND_STATE = 4     # state-plane publication (parent -> backend worker)
KIND_TASK = 5      # ComponentTask shipment (parent -> backend worker)
KIND_OUTCOME = 6   # ComponentOutcome reply (backend worker -> parent)
KIND_CONTROL = 7   # connection control ("shutdown", ...)
KIND_BATCH = 8     # coalesced ComponentTask batch (parent -> worker)


class RemoteError(RuntimeError):
    """An exception raised on the far side of a transport connection.

    ``remote_type`` is the remote exception's class name and
    ``remote_traceback`` its formatted traceback, so the local failure
    is debuggable without attaching to the worker process.
    """

    def __init__(self, remote_type: str, message: str,
                 remote_traceback: str = ""):
        super().__init__(f"{remote_type}: {message}")
        self.remote_type = remote_type
        self.remote_traceback = remote_traceback


def encode_frame(kind: int, msg_id: int, obj: Any = None,
                 payload: bytes | None = None) -> bytes:
    """One wire frame: header + pickled payload.

    Pass ``payload`` to ship pre-pickled bytes (the backend does this so
    byte accounting sees exactly what travels); otherwise ``obj`` is
    pickled here with :data:`~repro.core.state.PICKLE_PROTOCOL` —
    pinned, so both ends of a connection frame identically regardless
    of interpreter defaults.
    """
    if payload is None:
        payload = pickle.dumps(obj, PICKLE_PROTOCOL)
    return _HEADER.pack(MAGIC, WIRE_VERSION, kind, msg_id,
                        len(payload)) + payload


def decode_frame(buf: bytes) -> tuple[int, int, Any, int]:
    """Decode one frame from ``buf``: ``(kind, msg_id, obj, consumed)``.

    Raises :class:`ValueError` on a bad magic/version or a truncated
    buffer — this is the strict pure-function counterpart of
    :func:`read_frame`, used by the framing tests.
    """
    if len(buf) < _HEADER.size:
        raise ValueError("buffer shorter than a frame header")
    magic, version, kind, msg_id, length = _HEADER.unpack_from(buf)
    if magic != MAGIC:
        raise ValueError(f"bad frame magic {magic!r}")
    if version != WIRE_VERSION:
        raise ValueError(f"unsupported wire version {version}")
    end = _HEADER.size + length
    if len(buf) < end:
        raise ValueError("buffer truncated mid-frame")
    obj = pickle.loads(buf[_HEADER.size:end])
    return kind, msg_id, obj, end


def write_frame(sock: socket.socket, kind: int, msg_id: int,
                obj: Any = None, payload: bytes | None = None) -> int:
    """Send one frame; returns the number of bytes written."""
    frame = encode_frame(kind, msg_id, obj, payload)
    sock.sendall(frame)
    return len(frame)


def _recv_exact(sock: socket.socket, n: int,
                at_boundary: bool) -> bytes | None:
    """Read exactly ``n`` bytes.

    Returns ``None`` on a clean EOF at a frame boundary; raises
    :class:`ConnectionError` on EOF mid-frame (a torn frame is a bug or
    a crashed peer, never a clean shutdown).
    """
    buf = io.BytesIO()
    got = 0
    while got < n:
        chunk = sock.recv(min(n - got, 1 << 20))
        if not chunk:
            if at_boundary and got == 0:
                return None
            raise ConnectionError("connection closed mid-frame")
        buf.write(chunk)
        got += len(chunk)
    return buf.getvalue()


def read_frame(sock: socket.socket) -> tuple[int, int, Any, int] | None:
    """Read one frame: ``(kind, msg_id, obj, nbytes)``; ``None`` on EOF."""
    header = _recv_exact(sock, _HEADER.size, at_boundary=True)
    if header is None:
        return None
    magic, version, kind, msg_id, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise ConnectionError(f"bad frame magic {magic!r}")
    if version != WIRE_VERSION:
        raise ConnectionError(f"unsupported wire version {version}")
    payload = _recv_exact(sock, length, at_boundary=False) if length else b""
    return kind, msg_id, pickle.loads(payload), _HEADER.size + length


# ---------------------------------------------------------------------------
# Socket helpers
# ---------------------------------------------------------------------------


def bind_with_retry(host: str = "127.0.0.1", port: int = 0,
                    retries: int = 5, backoff: float = 0.05,
                    ) -> socket.socket:
    """Bind and listen, retrying ``EADDRINUSE`` with linear backoff.

    ``port=0`` (the default everywhere in this module) lets the kernel
    pick a free port and never conflicts; the retry path exists for
    callers that pin a port on shared CI runners, where a previous
    run's socket may linger in ``TIME_WAIT``.
    """
    last: OSError | None = None
    for attempt in range(retries):
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            sock.bind((host, port))
            sock.listen(64)
            return sock
        except OSError as exc:
            sock.close()
            if exc.errno != errno.EADDRINUSE:
                raise
            last = exc
            time.sleep(backoff * (attempt + 1))
    raise OSError(errno.EADDRINUSE,
                  f"could not bind {host}:{port} after {retries} attempts"
                  ) from last


def connect_with_retry(host: str, port: int, retries: int = 40,
                       backoff: float = 0.05) -> socket.socket:
    """Connect, retrying refusals while the listener is still starting."""
    last: OSError | None = None
    for attempt in range(retries):
        try:
            sock = socket.create_connection((host, port))
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            return sock
        except OSError as exc:
            last = exc
            time.sleep(backoff * min(attempt + 1, 10))
    raise ConnectionError(
        f"could not connect to {host}:{port} after {retries} attempts"
    ) from last


def _error_payload(exc: BaseException) -> tuple[str, str, str]:
    return (type(exc).__name__, str(exc), traceback.format_exc())


def _raise_remote(payload: tuple[str, str, str]) -> Exception:
    """Map a wire error payload back to a local exception instance."""
    remote_type, message, tb = payload
    if remote_type == "StaleEpochError":
        return StaleEpochError(message)
    return RemoteError(remote_type, message, tb)


# ---------------------------------------------------------------------------
# Request plane: RPC channel + remote servable
# ---------------------------------------------------------------------------


class RemoteChannel:
    """One request/response connection with concurrent in-flight calls.

    Writers serialise on a lock; a daemon reader thread matches replies
    to pending futures by message id, so any number of threads can have
    calls outstanding on the same socket and replies may arrive in any
    order.  Byte counters cover every frame in both directions.

    Futures stay *cancellable* until their reply arrives: cancelling
    one in-flight RPC abandons only that call (the reader drops its
    late reply) and leaves sibling RPCs on the socket untouched.

    ``max_in_flight`` optionally caps concurrent outstanding RPCs on
    this link; :meth:`submit` blocks until a slot frees.  ``None`` (the
    default) means unbounded pipelining.
    """

    def __init__(self, sock: socket.socket,
                 max_in_flight: int | None = None):
        if max_in_flight is not None and max_in_flight < 1:
            raise ValueError("max_in_flight must be positive")
        self._sock = sock
        self._wlock = threading.Lock()
        self._plock = threading.Lock()
        self._pending: dict[int, Future] = {}
        self._ids = itertools.count(1)
        self._closed = False
        self._slots = (threading.BoundedSemaphore(max_in_flight)
                       if max_in_flight is not None else None)
        self.max_in_flight = max_in_flight
        self.bytes_sent = 0
        self.bytes_received = 0
        self._reader = threading.Thread(target=self._read_loop, daemon=True,
                                        name="repro-transport-reader")
        self._reader.start()

    @property
    def in_flight(self) -> int:
        """RPCs currently awaiting a reply on this link."""
        with self._plock:
            return len(self._pending)

    def submit(self, obj: Any) -> Future:
        """Send one RPC; the future completes when the reply arrives."""
        future: Future = Future()
        if self._slots is not None:
            self._slots.acquire()
            future.add_done_callback(lambda _f: self._slots.release())
        msg_id = next(self._ids)
        with self._plock:
            if self._closed:
                future.cancel()
                raise ConnectionError("channel is closed")
            self._pending[msg_id] = future
        try:
            with self._wlock:
                self.bytes_sent += write_frame(self._sock, KIND_REQUEST,
                                               msg_id, obj)
        except OSError as exc:
            with self._plock:
                self._pending.pop(msg_id, None)
            if not future.done():
                future.set_exception(
                    ConnectionError(f"channel write failed: {exc}"))
            raise
        return future

    def call(self, obj: Any, timeout: float | None = None) -> Any:
        """Blocking RPC round-trip."""
        return self.submit(obj).result(timeout=timeout)

    def send_control(self, obj: Any) -> None:
        """Fire-and-forget control frame (e.g. ``"shutdown"``)."""
        with self._wlock:
            self.bytes_sent += write_frame(self._sock, KIND_CONTROL, 0, obj)

    def _read_loop(self) -> None:
        try:
            while True:
                frame = read_frame(self._sock)
                if frame is None:
                    break
                kind, msg_id, obj, nbytes = frame
                self.bytes_received += nbytes
                with self._plock:
                    future = self._pending.pop(msg_id, None)
                if future is None or not future.set_running_or_notify_cancel():
                    continue  # unknown id or locally-cancelled RPC
                if kind == KIND_ERROR:
                    future.set_exception(_raise_remote(obj))
                else:
                    future.set_result(obj)
        except (ConnectionError, OSError) as exc:
            self._fail_all(exc)
        else:
            self._fail_all(ConnectionError("connection closed by peer"))

    def _fail_all(self, exc: BaseException) -> None:
        with self._plock:
            self._closed = True
            pending = list(self._pending.values())
            self._pending.clear()
        for future in pending:
            if future.set_running_or_notify_cancel():
                future.set_exception(exc)

    def close(self) -> None:
        with self._plock:
            self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()


def _run_remote_component(service, component: int, payload: Any,
                          deadline: float, clock: DeadlineClock | None,
                          envelope: Any) -> ComponentOutcome:
    """Service-process side of one remote component task.

    Builds the task against the service's *current* pinned epoch and
    runs it through the one execution choke point, so the outcome —
    state epoch, envelope stamping included — is bit-identical to the
    in-process path over the same snapshots and clocks.
    """
    task = ComponentTask(
        component=component, adapter=service.adapter, request=payload,
        deadline=deadline, state_ref=service.store.ref(component),
        clock=clock, i_max=service._i_max,
        i_max_fraction=service._i_max_fraction, envelope=envelope)
    return run_component_task(task)


def _dispatch_rpc(service, obj: Any) -> Any:
    """Service-process RPC dispatch table."""
    op, args = obj[0], obj[1:]
    if op == "component_task":
        return _run_remote_component(service, *args)
    if op == "serve":
        request, clocks = args
        return service.serve(request, clocks=clocks)
    if op == "hello":
        return {"n_components": service.n_components,
                "adapter": service.adapter}
    if op == "exact":
        return service.exact(*args)
    if op == "exact_components":
        return service.exact_components(*args)
    if op == "add_points":
        return service.add_points(*args)
    if op == "change_points":
        return service.change_points(*args)
    if op == "replace_partition":
        return service.replace_partition(*args)
    if op == "component_epoch":
        return service.component_epoch(*args)
    raise ValueError(f"unknown transport op {op!r}")


def _service_worker_main(conn, spec) -> None:
    """Entry point of a spawned service process.

    Builds the service from ``spec = (factory, args, kwargs)``, binds a
    listener on an OS-assigned port, reports ``("ok", port)`` (or
    ``("error", traceback)``) over the bootstrap pipe, then serves RPCs
    from **any number of accepted connections** — one
    :class:`RemoteServable` may open N parallel links — all sharing one
    service instance and one RPC thread pool.  Each connection gets its
    own reader thread and per-connection write lock.  The process exits
    on a shutdown control frame (from any link) or once every accepted
    connection has reached EOF.
    """
    try:
        factory, args, kwargs = spec
        service = factory(*args, **kwargs)
        listener = bind_with_retry()
        port = listener.getsockname()[1]
        conn.send(("ok", port))
    except BaseException:  # noqa: BLE001 - reported over the pipe
        conn.send(("error", traceback.format_exc()))
        return
    finally:
        conn.close()

    stop = threading.Event()
    conns_lock = threading.Lock()
    live_conns = 0
    accepted_any = threading.Event()

    def serve_conn(sock: socket.socket, pool: ThreadPoolExecutor) -> None:
        nonlocal live_conns
        wlock = threading.Lock()

        def handle(msg_id: int, obj: Any) -> None:
            try:
                reply_kind, reply = KIND_RESPONSE, _dispatch_rpc(service, obj)
            except BaseException as exc:  # noqa: BLE001 - to the client
                reply_kind, reply = KIND_ERROR, _error_payload(exc)
            with wlock:
                try:
                    write_frame(sock, reply_kind, msg_id, reply)
                except OSError:
                    pass

        try:
            while not stop.is_set():
                try:
                    frame = read_frame(sock)
                except (ConnectionError, OSError):
                    break
                if frame is None:
                    break
                kind, msg_id, obj, _ = frame
                if kind == KIND_CONTROL:
                    if obj == "shutdown":
                        stop.set()
                        break
                    continue
                pool.submit(handle, msg_id, obj)
        finally:
            sock.close()
            with conns_lock:
                live_conns -= 1
                if live_conns == 0 and accepted_any.is_set():
                    stop.set()

    with ThreadPoolExecutor(max_workers=8,
                            thread_name_prefix="repro-remote-rpc") as pool:
        listener.settimeout(0.2)
        deadline = monotonic() + 60.0
        readers: list[threading.Thread] = []
        try:
            while not stop.is_set():
                if not accepted_any.is_set() and monotonic() > deadline:
                    break  # nobody ever connected
                try:
                    sock, _ = listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                with conns_lock:
                    live_conns += 1
                accepted_any.set()
                reader = threading.Thread(target=serve_conn,
                                          args=(sock, pool), daemon=True,
                                          name="repro-remote-conn")
                reader.start()
                readers.append(reader)
        finally:
            listener.close()
        for reader in readers:
            reader.join(timeout=5.0)


class RemoteServable:
    """A servable living in another process, reached over pipelined links.

    Satisfies the :class:`~repro.core.servable.Servable` protocol, so a
    :class:`~repro.serving.router.ReplicaGroup` accepts it as a replica
    (and, wrapped in a group, :class:`~repro.serving.router.
    ShardedService` accepts it as a shard) with **no router changes**:

    - :meth:`serve` / :meth:`aserve` forward the whole envelope as one
      RPC and return the remote :class:`~repro.serving.envelope.
      ServingResponse`.
    - :meth:`build_tasks` returns local :class:`~repro.serving.backends.
      ComponentTask` values whose ``runner`` forwards each component
      over the socket — the local execution backend still schedules
      (and hedges) them, while the state stays remote.
    - update methods (:meth:`add_points` / :meth:`change_points` /
      :meth:`replace_partition`) forward to the remote service, so the
      router's update fan-out works unchanged.

    Use :meth:`spawn` to launch the service in a fresh process from an
    importable factory (e.g. :class:`~repro.core.service.
    AccuracyTraderService` plus its constructor arguments — the factory
    and arguments must be picklable, the built service need not be).
    ``spawn(..., n_links=N)`` opens N parallel sockets to the one
    process; each call then rides the least-loaded link, so concurrent
    requests spread across connections instead of serialising.
    """

    def __init__(self, channel, process=None, timeout: float = 60.0):
        """``channel`` is one :class:`RemoteChannel` or a list of them."""
        channels = (list(channel) if isinstance(channel, (list, tuple))
                    else [channel])
        if not channels:
            raise ValueError("need at least one channel")
        self._channels: list[RemoteChannel] = channels
        self._rr = itertools.count()
        self._process = process
        self._timeout = timeout
        self._closed = False
        hello = channels[0].call(("hello",), timeout=timeout)
        self._n_components = hello["n_components"]
        self._merge = default_merge(hello["adapter"])

    @classmethod
    def spawn(cls, factory: Callable, *args, start_method: str | None = None,
              timeout: float = 60.0, n_links: int = 1,
              max_in_flight: int | None = None,
              **kwargs) -> "RemoteServable":
        """Launch ``factory(*args, **kwargs)`` in a new process and attach.

        The child binds an OS-assigned port (no conflicts) and reports
        it over a bootstrap pipe; a build failure in the child surfaces
        here as a :class:`RuntimeError` carrying the child traceback.
        ``n_links`` opens that many parallel connections to the child;
        ``max_in_flight`` caps outstanding RPCs per link (see
        :class:`RemoteChannel`).
        """
        import multiprocessing as mp

        if n_links < 1:
            raise ValueError("n_links must be positive")
        ctx = _preferred_mp_context(start_method) or mp
        parent_conn, child_conn = ctx.Pipe()
        process = ctx.Process(target=_service_worker_main,
                              args=(child_conn, (factory, args, kwargs)),
                              daemon=True)
        process.start()
        child_conn.close()
        if not parent_conn.poll(timeout):
            process.terminate()
            raise TimeoutError("remote service did not start in time")
        status, value = parent_conn.recv()
        parent_conn.close()
        if status != "ok":
            process.join(timeout=5.0)
            raise RuntimeError(f"remote service failed to build:\n{value}")
        channels = [RemoteChannel(connect_with_retry("127.0.0.1", value),
                                  max_in_flight=max_in_flight)
                    for _ in range(n_links)]
        return cls(channels, process=process, timeout=timeout)

    # -- Servable protocol ----------------------------------------------

    @property
    def n_components(self) -> int:
        return self._n_components

    @property
    def merge(self) -> Callable:
        """The merge function (derived from the remote adapter)."""
        return self._merge

    @property
    def n_links(self) -> int:
        """Parallel connections to the remote process."""
        return len(self._channels)

    def _pick_channel(self) -> RemoteChannel:
        """The least-loaded link (fewest in-flight RPCs; round-robin tie)."""
        if len(self._channels) == 1:
            return self._channels[0]
        start = next(self._rr) % len(self._channels)
        best = None
        best_depth = -1
        for i in range(len(self._channels)):
            channel = self._channels[(start + i) % len(self._channels)]
            depth = channel.in_flight
            if best is None or depth < best_depth:
                best, best_depth = channel, depth
                if depth == 0:
                    break
        return best

    def build_tasks(self, request, deadline: float | None = None,
                    clocks: list[DeadlineClock] | None = None) -> list:
        """Per-component tasks whose execution happens remotely.

        Mirrors :meth:`AccuracyTraderService.build_tasks` envelope and
        deadline handling exactly; the returned tasks carry no adapter
        or state — their ``runner`` ships ``(component, payload,
        deadline, clock, envelope)`` over the socket and the service
        process pins its current epoch at execution.
        """
        from repro.serving.envelope import ServingRequest

        envelope = None
        payload = request
        if isinstance(request, ServingRequest):
            envelope = request.detached()
            payload = request.payload
            if deadline is None:
                deadline = request.deadline
        if deadline is None:
            raise ValueError(
                "a deadline is required: set it on the envelope or pass "
                "deadline= explicitly")
        if clocks is None:
            clocks = [SimulatedClock(speed=1e12)
                      for _ in range(self._n_components)]
        if len(clocks) != self._n_components:
            raise ValueError("need one clock per component")
        return [
            ComponentTask(
                component=c, adapter=None, request=payload,
                deadline=deadline, clock=clock, envelope=envelope,
                runner=self._run_task)
            for c, clock in enumerate(clocks)
        ]

    def _run_task(self, task: ComponentTask) -> ComponentOutcome:
        ctx = trace_context_of(task.envelope)
        channel = self._pick_channel()
        if ctx is None or not ctx.sampled:
            return channel.call(
                ("component_task", task.component, task.request,
                 task.deadline, task.clock, task.envelope),
                timeout=self._timeout)
        sent0 = channel.bytes_sent
        received0 = channel.bytes_received
        # Depth *before* this RPC joins the link: 0 means it had the
        # socket to itself, >0 means it pipelined behind siblings.
        depth = channel.in_flight
        t0 = monotonic()
        outcome = channel.call(
            ("component_task", task.component, task.request, task.deadline,
             task.clock, task.envelope), timeout=self._timeout)
        get_tracer().record(
            "wire.rpc", ctx, t0, monotonic(), component=task.component,
            in_flight=depth,
            bytes_sent=channel.bytes_sent - sent0,
            bytes_received=channel.bytes_received - received0)
        return outcome

    def serve(self, request, clocks: list[DeadlineClock] | None = None,
              backend=None):
        """One envelope RPC; execution runs on the remote service.

        ``backend`` is accepted for signature compatibility and
        ignored — the remote process executes with its own backend.
        """
        return self._pick_channel().call(("serve", request, clocks),
                                         timeout=self._timeout)

    async def aserve(self, request,
                     clocks: list[DeadlineClock] | None = None,
                     backend=None):
        """Async :meth:`serve`: the RPC waits in an executor thread."""
        import asyncio

        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, lambda: self.serve(request, clocks=clocks))

    def exact(self, request) -> Any:
        """Remote full exact computation (ground truth)."""
        return self._pick_channel().call(("exact", request), timeout=None)

    def exact_components(self, request) -> list:
        """Remote unmerged exact per-component results."""
        return self._pick_channel().call(("exact_components", request),
                                         timeout=None)

    # -- update fan-out --------------------------------------------------

    def add_points(self, component: int, partition, new_record_ids):
        return self._pick_channel().call(
            ("add_points", component, partition, new_record_ids),
            timeout=None)

    def change_points(self, component: int, partition, changed_record_ids):
        return self._pick_channel().call(
            ("change_points", component, partition, changed_record_ids),
            timeout=None)

    def replace_partition(self, component: int, partition):
        return self._pick_channel().call(
            ("replace_partition", component, partition), timeout=None)

    def component_epoch(self, component: int) -> int:
        """The remote component's current state epoch (test/debug)."""
        return self._pick_channel().call(("component_epoch", component),
                                         timeout=self._timeout)

    # -- lifecycle -------------------------------------------------------

    def transport_counters(self) -> dict:
        """Bytes moved over this servable's links, both directions."""
        return {"bytes_sent": sum(c.bytes_sent for c in self._channels),
                "bytes_received": sum(c.bytes_received
                                      for c in self._channels)}

    def close(self) -> None:
        """Shut down the remote process and every link (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._channels[0].send_control("shutdown")
        except OSError:
            pass
        for channel in self._channels:
            channel.close()
        if self._process is not None:
            self._process.join(timeout=10.0)
            if self._process.is_alive():
                self._process.terminate()
                self._process.join(timeout=5.0)

    def __enter__(self) -> "RemoteServable":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------------
# State plane: socket backend with delta epochs
# ---------------------------------------------------------------------------


def _backend_worker_main(host: str, port: int) -> None:
    """Entry point of a :class:`RemoteBackend` worker process.

    Connects back to the parent's listener and serves two frame kinds:

    - ``KIND_STATE`` — applied synchronously in the reader thread, so
      every task frame sent after a publication observes it.  A full
      frame with ``cache=True`` replaces the newest cached snapshot for
      its ``(store, component)``; ``cache=False`` goes to a small
      one-off cache for straggler epochs; a ``delta`` frame
      reconstructs the new blob from the cached base via
      :func:`~repro.core.state.apply_delta` and a ``semantic`` frame
      via :func:`~repro.core.state.apply_semantic_delta` (both
      checksum-verified against the sender's bytes).
    - ``KIND_TASK`` — the detached ref is resolved against the caches
      *in the reader thread* (eviction can never race execution), then
      the materialised task runs on a small pool and its outcome (or
      error) is framed back under a write lock.
    - ``KIND_BATCH`` — a list of tasks sharing one ref; resolved once
      in the reader, run through :func:`~repro.serving.backends.
      run_component_batch` on the pool (vectorized same-state kernels),
      and answered as one list-of-outcomes frame.
    """
    sock = connect_with_retry(host, port)
    wlock = threading.Lock()
    # (store_id, component) -> (epoch, blob, state): the newest snapshot.
    newest: dict[tuple, tuple[int, bytes, Any]] = {}
    # Straggler epochs, bounded: (store_id, component, epoch) -> state.
    oneoff: OrderedDict[tuple, Any] = OrderedDict()
    # (store_id, component) -> message from a failed state apply.
    failed: dict[tuple, str] = {}

    def reply(msg_id: int, kind: int, obj: Any) -> None:
        with wlock:
            try:
                write_frame(sock, kind, msg_id, obj)
            except OSError:
                pass

    def run(msg_id: int, task: ComponentTask, epoch: int | None) -> None:
        try:
            outcome = run_component_task(task)
            if epoch is not None:
                outcome.report.state_epoch = epoch
        except BaseException as exc:  # noqa: BLE001 - shipped to the parent
            reply(msg_id, KIND_ERROR, _error_payload(exc))
            return
        reply(msg_id, KIND_OUTCOME, outcome)

    def run_batch(msg_id: int, tasks: list, epoch: int | None) -> None:
        try:
            outcomes = run_component_batch(tasks)
            if epoch is not None:
                for outcome in outcomes:
                    outcome.report.state_epoch = epoch
        except BaseException as exc:  # noqa: BLE001 - shipped to the parent
            reply(msg_id, KIND_ERROR, _error_payload(exc))
            return
        reply(msg_id, KIND_OUTCOME, outcomes)

    def apply_state(obj) -> None:
        if obj[0] == "full":
            _, store_id, component, epoch, cache, blob = obj
            group = (store_id, component)
            state = pickle.loads(blob)
            if not cache:
                oneoff[(store_id, component, epoch)] = state
                while len(oneoff) > 16:
                    oneoff.popitem(last=False)
                return
            current = newest.get(group)
            if current is None or epoch >= current[0]:
                newest[group] = (epoch, blob, state)
            failed.pop(group, None)
        else:  # ("delta"|"semantic", store_id, comp, base_epoch, epoch, d)
            op, store_id, component, base_epoch, epoch, delta = obj
            group = (store_id, component)
            current = newest.get(group)
            if current is None or current[0] != base_epoch:
                failed[group] = (
                    f"{op} delta for epoch {epoch} arrived with base "
                    f"{base_epoch} but worker holds "
                    f"{current[0] if current else None}")
                return
            if op == "semantic":
                blob = apply_semantic_delta(current[1], delta)
            else:
                blob = apply_delta(current[1], delta)
            newest[group] = (epoch, blob, pickle.loads(blob))
            failed.pop(group, None)

    with ThreadPoolExecutor(max_workers=4,
                            thread_name_prefix="repro-remote-task") as pool:
        while True:
            try:
                frame = read_frame(sock)
            except (ConnectionError, OSError):
                break
            if frame is None:
                break
            kind, msg_id, obj, _ = frame
            if kind == KIND_CONTROL:
                if obj == "shutdown":
                    break
                continue
            if kind == KIND_STATE:
                try:
                    apply_state(obj)
                except BaseException as exc:  # noqa: BLE001
                    group = (obj[1], obj[2])
                    failed[group] = str(exc)
                continue
            # KIND_TASK / KIND_BATCH: resolve state here, in the
            # reader, so a later publication can never evict a snapshot
            # out from under a queued task.
            def resolve(task: ComponentTask):
                """(task, epoch) with inline state, or an error string."""
                ref = task.state_ref
                if ref is None or task.partition is not None \
                        or task.synopsis is not None:
                    return task, None
                group = (ref.store_id, ref.component)
                entry = newest.get(group)
                if entry is not None and entry[0] == ref.epoch:
                    state = entry[2]
                else:
                    state = oneoff.get(ref.key)
                if state is None:
                    detail = failed.get(group, "no snapshot for this epoch "
                                        "has been published to this worker")
                    return None, f"cannot resolve {ref.key}: {detail}"
                return replace(task, partition=state.partition,
                               synopsis=state.synopsis,
                               state_ref=None), ref.epoch

            if kind == KIND_BATCH:
                resolved = [resolve(t) for t in obj]
                bad = next((err for t, err in resolved if t is None), None)
                if bad is not None:
                    reply(msg_id, KIND_ERROR, ("StaleEpochError", bad, ""))
                    continue
                epochs = {e for _, e in resolved}
                epoch = epochs.pop() if len(epochs) == 1 else None
                pool.submit(run_batch, msg_id,
                            [t for t, _ in resolved], epoch)
                continue
            task, epoch = resolve(obj)
            if task is None:
                reply(msg_id, KIND_ERROR, ("StaleEpochError", epoch, ""))
                continue
            pool.submit(run, msg_id, task, epoch)
    sock.close()


class _WorkerLink:
    """Parent-side handle on one connected backend worker."""

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.wlock = threading.Lock()
        self.plock = threading.Lock()
        self.pending: dict[int, Future] = {}
        self.ids = itertools.count(1)
        # (store_id, component) -> (epoch, blob): the newest snapshot
        # this worker caches, mirrored byte-for-byte parent-side so
        # delta bases always match what the worker actually holds.
        self.held: dict[tuple, tuple[int, bytes]] = {}
        self.bytes_sent = 0
        self.bytes_received = 0
        self.reader = threading.Thread(target=self._read_loop, daemon=True,
                                       name="repro-backend-reader")
        self.reader.start()

    @property
    def in_flight(self) -> int:
        with self.plock:
            return len(self.pending)

    def _read_loop(self) -> None:
        try:
            while True:
                frame = read_frame(self.sock)
                if frame is None:
                    break
                kind, msg_id, obj, nbytes = frame
                self.bytes_received += nbytes
                with self.plock:
                    future = self.pending.pop(msg_id, None)
                if future is None:
                    continue
                if kind == KIND_ERROR:
                    future.set_exception(_raise_remote(obj))
                else:
                    future.set_result(obj)
        except (ConnectionError, OSError) as exc:
            self._fail_all(exc)
        else:
            self._fail_all(ConnectionError("backend worker disconnected"))

    def _fail_all(self, exc: BaseException) -> None:
        with self.plock:
            pending = list(self.pending.values())
            self.pending.clear()
        for future in pending:
            if not future.done():
                future.set_exception(exc)

    def close(self) -> None:
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self.sock.close()


#: Cache-miss sentinel: the semantic cache stores ``None`` for "tried,
#: no semantic encoding exists", which is distinct from "never tried".
_SEMANTIC_MISS = object()


class RemoteBackend(ExecutionBackend):
    """Socket execution backend: workers over TCP, state as delta epochs.

    The wire analogue of :class:`~repro.serving.backends.
    PersistentProcessBackend`: worker processes connect back over
    localhost TCP, each task travels as a small frame holding a
    detached :class:`~repro.core.state.StateRef`, and snapshots are
    published out-of-band at most once per epoch per worker.  The new
    part is *how* an epoch travels: on an epoch-to-epoch transition the
    parent picks the smallest of three encodings — a **semantic**
    delta carrying only the re-aggregated group vectors (when the
    store recorded an :class:`~repro.core.state.UpdateHint` for the
    transition), a content-defined **CDC** byte delta
    (:func:`~repro.core.state.compute_delta`), or the **full**
    snapshot — so for incremental updates (``add_points`` /
    ``change_points``) state bytes-on-wire scale with the size of the
    *update*, not the synopsis.  Checksums on apply make
    reconstruction bit-identical (to the sender's bytes) or loudly
    failed, never silently wrong.

    Links are multiplexed: every worker connection can carry many
    in-flight tasks (``msg_id``-correlated), and :meth:`submit_task`
    picks the least-loaded link.  :meth:`submit_batch` ships a whole
    coalesced batch as one ``KIND_BATCH`` frame that the worker runs
    through :func:`~repro.serving.backends.run_component_batch`.

    Straggler epochs (a task pinned to an epoch older than the newest a
    worker holds) are served by a one-off full publication that does
    not displace the worker's newest snapshot — sent per straggler
    task, since the worker's one-off cache is small and bounded.

    Tasks must carry a live (pinned) ref or inline state; a detached
    ref cannot be materialised parent-side and is rejected with
    :class:`~repro.core.state.StaleEpochError`.  Tasks carrying a
    ``runner`` are executed inline (runners are process-local
    callables that do their own remoting).

    :meth:`payload_counters` keeps the standard four keys —
    ``state_bytes`` / ``state_publishes`` cover full and delta frames
    combined — and :meth:`transport_counters` breaks the state plane
    down further (full vs delta counts and bytes, raw socket totals).
    """

    name = "remote"

    def __init__(self, n_workers: int = 2, start_method: str | None = None,
                 retain_blobs: int = 4):
        self.n_workers = n_workers
        self.start_method = start_method
        self.retain_blobs = retain_blobs
        self._lock = threading.Lock()
        self._listener: socket.socket | None = None
        self._links: list[_WorkerLink] = []
        self._procs: list = []
        self._rr = 0
        # (store_id, component) -> OrderedDict[epoch -> serialized blob],
        # bounded by retain_blobs: the delta bases.
        self._blobs: dict[tuple, OrderedDict[int, bytes]] = {}
        # Payload accounting lives in the registry; the historical
        # counter dicts below read through to these.
        self._task_bytes = self.metrics.counter("task_bytes")
        self._tasks_shipped = self.metrics.counter("tasks_shipped")
        self._state_full_bytes = self.metrics.counter("state_full_bytes")
        self._state_full_publishes = self.metrics.counter(
            "state_full_publishes")
        self._state_delta_bytes = self.metrics.counter("state_delta_bytes")
        self._state_delta_publishes = self.metrics.counter(
            "state_delta_publishes")
        self._state_semantic_bytes = self.metrics.counter(
            "state_semantic_bytes")
        self._state_semantic_publishes = self.metrics.counter(
            "state_semantic_publishes")
        self._batches_shipped = self.metrics.counter("batches_shipped")
        # (store_id, component, base_epoch, target_epoch) ->
        #   (SemanticDelta, as-applied blob) | None (None: tried, no
        #   semantic encoding exists for this transition).
        self._semantic_cache: OrderedDict[tuple, Any] = OrderedDict()

    # -- worker management ----------------------------------------------

    def _ensure_links(self) -> list[_WorkerLink]:
        with self._lock:
            if self._links:
                return self._links
            listener = bind_with_retry()
            listener.settimeout(60.0)
            port = listener.getsockname()[1]
            import multiprocessing as mp

            ctx = _preferred_mp_context(self.start_method) or mp
            procs = [ctx.Process(target=_backend_worker_main,
                                 args=("127.0.0.1", port), daemon=True)
                     for _ in range(self.n_workers)]
            for proc in procs:
                proc.start()
            links = []
            try:
                for _ in range(self.n_workers):
                    sock, _ = listener.accept()
                    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY,
                                    1)
                    links.append(_WorkerLink(sock))
            except OSError:
                for proc in procs:
                    proc.terminate()
                listener.close()
                raise
            self._listener = listener
            self._procs = procs
            self._links = links
            return self._links

    def _next_link(self, links: list[_WorkerLink]) -> _WorkerLink:
        """Least-loaded link (fewest in-flight tasks; round-robin tie)."""
        with self._lock:
            start = self._rr % len(links)
            self._rr += 1
        best = links[start]
        best_depth = best.in_flight
        for i in range(1, len(links)):
            if best_depth == 0:
                break
            link = links[(start + i) % len(links)]
            depth = link.in_flight
            if depth < best_depth:
                best, best_depth = link, depth
        return best

    # -- state plane -----------------------------------------------------

    def _epoch_blob(self, ref) -> bytes:
        """The serialized snapshot for ``ref``'s epoch (memoised)."""
        group = (ref.store_id, ref.component)
        with self._lock:
            cache = self._blobs.setdefault(group, OrderedDict())
            blob = cache.get(ref.epoch)
        if blob is None:
            blob = pickle.dumps(ref.resolve(), PICKLE_PROTOCOL)
            with self._lock:
                cache[ref.epoch] = blob
                while len(cache) > self.retain_blobs:
                    cache.popitem(last=False)
        return blob

    def _semantic_delta_for(self, ref, adapter, held_epoch: int,
                            held_blob: bytes):
        """``(SemanticDelta, as-applied blob)`` for the transition, or None.

        Semantic encoding needs a live store (for the recorded
        :class:`~repro.core.state.UpdateHint` chain) and the adapter
        (to recover per-group vectors).  Results are memoised per
        ``(group, base, target, base-digest)`` — the digest is part of
        the key because different links can hold *different bytes* for
        the same base epoch (a full publication vs an earlier delta's
        as-applied blob).
        """
        if adapter is None or ref.store is None:
            return None
        hint = ref.store.transition_hint(ref.component, held_epoch,
                                         ref.epoch)
        if hint is None:
            return None
        key = (ref.store_id, ref.component, held_epoch, ref.epoch,
               blob_digest(held_blob))
        with self._lock:
            cached = self._semantic_cache.get(key, _SEMANTIC_MISS)
            if cached is not _SEMANTIC_MISS:
                self._semantic_cache.move_to_end(key)
                return cached
        result = compute_semantic_delta(adapter, held_blob, ref.resolve(),
                                        hint)
        with self._lock:
            self._semantic_cache[key] = result
            while len(self._semantic_cache) > 32:
                self._semantic_cache.popitem(last=False)
        return result

    def _state_frames_locked(self, link: _WorkerLink, ref,
                             adapter=None) -> list[bytes]:
        """Frames that must precede a task pinned to ``ref`` (wlock held).

        Chooses, per worker, between nothing (epoch already held), the
        smallest of a semantic delta / CDC delta / full publication
        from the worker's held bytes, or a one-off straggler
        publication.  ``link.held`` is only read and written under the
        link's write lock, so the decision and the frames it produces
        are atomic with respect to other submitters.
        """
        group = (ref.store_id, ref.component)
        held = link.held.get(group)
        if held is not None and held[0] == ref.epoch:
            return []
        blob = self._epoch_blob(ref)
        if held is not None and ref.epoch < held[0]:
            # Straggler: one-off, does not displace the newest snapshot.
            frame = encode_frame(KIND_STATE, 0, (
                "full", ref.store_id, ref.component, ref.epoch, False,
                blob))
            self._state_full_bytes.inc(len(frame))
            self._state_full_publishes.inc()
            return [frame]
        full = encode_frame(KIND_STATE, 0, (
            "full", ref.store_id, ref.component, ref.epoch, True, blob))
        # (encoding, frame, bytes the worker will hold after applying).
        best = ("full", full, blob)
        if held is not None:
            held_epoch, held_blob = held
            delta = compute_delta(held_blob, blob)
            delta_frame = encode_frame(KIND_STATE, 0, (
                "delta", ref.store_id, ref.component, held_epoch,
                ref.epoch, delta))
            if len(delta_frame) < len(best[1]):
                best = ("delta", delta_frame, blob)
            semantic = self._semantic_delta_for(ref, adapter, held_epoch,
                                                held_blob)
            if semantic is not None:
                sdelta, applied = semantic
                semantic_frame = encode_frame(KIND_STATE, 0, (
                    "semantic", ref.store_id, ref.component, held_epoch,
                    ref.epoch, sdelta))
                if len(semantic_frame) < len(best[1]):
                    best = ("semantic", semantic_frame, applied)
        encoding, frame, held_after = best
        link.held[group] = (ref.epoch, held_after)
        if encoding == "semantic":
            self._state_semantic_bytes.inc(len(frame))
            self._state_semantic_publishes.inc()
        elif encoding == "delta":
            self._state_delta_bytes.inc(len(frame))
            self._state_delta_publishes.inc()
        else:
            self._state_full_bytes.inc(len(frame))
            self._state_full_publishes.inc()
        return [frame]

    # -- ExecutionBackend ------------------------------------------------

    def run_tasks(self, tasks: Sequence[ComponentTask]) -> list[ComponentOutcome]:
        return [f.result() for f in [self.submit_task(t) for t in tasks]]

    def submit_task(self, task: ComponentTask) -> "Future[ComponentOutcome]":
        if task.runner is not None:
            # Runners are process-local; run inline (base-class path).
            return super().submit_task(task)
        ref = task.state_ref
        live = ref is not None and (ref.store is not None
                                    or ref.pinned is not None)
        if ref is not None and not live and task.partition is None \
                and task.synopsis is None:
            raise StaleEpochError(
                f"detached ref {ref.key} cannot be materialised for the "
                "wire; submit the task with its live (pinned) ref instead")
        links = self._ensure_links()
        link = self._next_link(links)
        if live:
            wire_task = replace(task, state_ref=ref.detached())
            state_frames = None
        else:
            wire_task = task  # inline state ships whole
            state_frames = []
        ctx = trace_context_of(task.envelope)
        t_send = monotonic() if ctx is not None and ctx.sampled else 0.0
        depth = link.in_flight
        task_payload = pickle.dumps(wire_task, PICKLE_PROTOCOL)
        self._task_bytes.inc(len(task_payload))
        self._tasks_shipped.inc()
        future: Future = Future()
        future.set_running_or_notify_cancel()  # tied-request semantics
        msg_id = next(link.ids)
        with link.plock:
            link.pending[msg_id] = future
        try:
            with link.wlock:
                if state_frames is None:
                    state_frames = self._state_frames_locked(
                        link, ref, task.adapter)
                for frame in state_frames:
                    link.sock.sendall(frame)
                    link.bytes_sent += len(frame)
                link.bytes_sent += write_frame(link.sock, KIND_TASK, msg_id,
                                               payload=task_payload)
        except OSError as exc:
            with link.plock:
                link.pending.pop(msg_id, None)
            future.set_exception(ConnectionError(
                f"backend worker connection failed: {exc}"))
            return future
        if ctx is not None and ctx.sampled:
            get_tracer().record(
                "wire.send", ctx, t_send, monotonic(),
                component=task.component, task_bytes=len(task_payload),
                in_flight=depth, batch_size=1,
                state_bytes=sum(len(f) for f in state_frames))
        return future

    def submit_batch(self, tasks: Sequence[ComponentTask]) -> list[Future]:
        """Ship a coalesced batch as **one** ``KIND_BATCH`` frame.

        All tasks must be runner-less and share one live ref key (the
        invariant :class:`~repro.serving.backends.BatchingBackend`
        guarantees per bucket); anything else degrades to per-task
        submission, so a batch is never worse than unbatched dispatch.
        The worker resolves the shared snapshot once and runs the batch
        through :func:`~repro.serving.backends.run_component_batch` —
        one pickle, one frame, one vectorized stage-1 pass.
        """
        tasks = list(tasks)
        if len(tasks) <= 1:
            return [self.submit_task(t) for t in tasks]
        refs = [t.state_ref for t in tasks]
        batchable = (
            all(t.runner is None for t in tasks)
            and all(r is not None and (r.store is not None
                                       or r.pinned is not None)
                    for r in refs)
            and len({r.key for r in refs}) == 1)
        if not batchable:
            return [self.submit_task(t) for t in tasks]
        ref = refs[0]
        links = self._ensure_links()
        link = self._next_link(links)
        ctx = next((c for c in (trace_context_of(t.envelope)
                                for t in tasks)
                    if c is not None and c.sampled), None)
        t_send = monotonic() if ctx is not None else 0.0
        depth = link.in_flight
        payload = pickle.dumps(
            [replace(t, state_ref=t.state_ref.detached()) for t in tasks],
            PICKLE_PROTOCOL)
        self._task_bytes.inc(len(payload))
        self._tasks_shipped.inc(len(tasks))
        self._batches_shipped.inc()
        batch_future: Future = Future()
        batch_future.set_running_or_notify_cancel()
        msg_id = next(link.ids)
        with link.plock:
            link.pending[msg_id] = batch_future
        try:
            with link.wlock:
                state_frames = self._state_frames_locked(
                    link, ref, tasks[0].adapter)
                for frame in state_frames:
                    link.sock.sendall(frame)
                    link.bytes_sent += len(frame)
                link.bytes_sent += write_frame(link.sock, KIND_BATCH,
                                               msg_id, payload=payload)
        except OSError as exc:
            with link.plock:
                link.pending.pop(msg_id, None)
            batch_future.set_exception(ConnectionError(
                f"backend worker connection failed: {exc}"))
            return _scatter_batch_future(batch_future, len(tasks))
        if ctx is not None:
            get_tracer().record(
                "wire.send", ctx, t_send, monotonic(),
                component=tasks[0].component, task_bytes=len(payload),
                in_flight=depth, batch_size=len(tasks),
                state_bytes=sum(len(f) for f in state_frames))
        return _scatter_batch_future(batch_future, len(tasks))

    def payload_counters(self) -> dict:
        return {
            "task_bytes": self._task_bytes.value,
            "state_bytes": self._state_full_bytes.value
            + self._state_delta_bytes.value
            + self._state_semantic_bytes.value,
            "tasks_shipped": self._tasks_shipped.value,
            "state_publishes": self._state_full_publishes.value
            + self._state_delta_publishes.value
            + self._state_semantic_publishes.value,
        }

    def transport_counters(self) -> dict:
        """State-plane breakdown plus raw socket byte totals."""
        counters = {
            "state_full_publishes": self._state_full_publishes.value,
            "state_delta_publishes": self._state_delta_publishes.value,
            "state_semantic_publishes":
                self._state_semantic_publishes.value,
            "state_full_bytes": self._state_full_bytes.value,
            "state_delta_bytes": self._state_delta_bytes.value,
            "state_semantic_bytes": self._state_semantic_bytes.value,
            "batches_shipped": self._batches_shipped.value,
        }
        counters["bytes_sent"] = sum(l.bytes_sent for l in self._links)
        counters["bytes_received"] = sum(l.bytes_received
                                         for l in self._links)
        return counters

    def close(self) -> None:
        with self._lock:
            links, procs, listener = self._links, self._procs, self._listener
            self._links, self._procs, self._listener = [], [], None
            self._blobs.clear()
            self._semantic_cache.clear()
            self._rr = 0
        for link in links:
            try:
                with link.wlock:
                    write_frame(link.sock, KIND_CONTROL, 0, "shutdown")
            except OSError:
                pass
        for link in links:
            link.close()
        for proc in procs:
            proc.join(timeout=10.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        if listener is not None:
            listener.close()
