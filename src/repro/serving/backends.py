"""Pluggable per-component execution backends for the serving layer.

An n-component request fans out n independent sub-operations (Algorithm 1
runs per component); an :class:`ExecutionBackend` decides *where* those
sub-operations run:

- :class:`SequentialBackend` — inline, one after another.  The reference
  semantics; also the fastest choice for tiny components where dispatch
  overhead dominates.
- :class:`ThreadPoolBackend` — a shared :class:`~concurrent.futures.
  ThreadPoolExecutor`.  Overlaps per-component blocking time (storage /
  network stalls, GIL-releasing numpy kernels); the right default for a
  live service whose components do I/O.
- :class:`ProcessPoolBackend` — a shared :class:`~concurrent.futures.
  ProcessPoolExecutor`.  True CPU parallelism for pure-Python component
  work, at the cost of pickling each task — *including its state
  snapshot*, so state distribution cost scales with request rate.
- :class:`PersistentProcessBackend` — long-lived worker processes with a
  per-epoch snapshot cache.  Each worker fetches a component's
  ``(partition, synopsis)`` snapshot at most once per state epoch and
  caches it; per task only a tiny detached
  :class:`~repro.core.state.StateRef` travels, so state distribution
  cost scales with *update* rate (amortised distribution).

All backends consume :class:`ComponentTask` values and return
:class:`ComponentOutcome` values in task order.  A task references its
component's state by a pinned ``(component, epoch)``
:class:`~repro.core.state.StateRef` into the service's
:class:`~repro.core.state.StateStore` (inline ``partition`` /
``synopsis`` fields remain supported for hand-built tasks).  In-process
backends resolve the ref at execution time — the dispatch-time epoch,
never a torn or newer state — which is what makes concurrent synopsis
updates safe; process backends decide *how* the referenced state
crosses the process boundary (per task vs per epoch), which is what
:meth:`ExecutionBackend.payload_counters` measures.
"""

from __future__ import annotations

import abc
import os
import pickle
import shutil
import tempfile
import threading
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Any, Sequence

from repro.core.clock import DeadlineClock, monotonic
from repro.core.processor import (ProcessingReport, process_component,
                                  process_component_batch)
from repro.core.state import ComponentState, StaleEpochError, StateRef
from repro.serving.telemetry import (MetricsRegistry, SpanRecorder,
                                     get_tracer, trace_context_of)

__all__ = [
    "ComponentTask",
    "ComponentOutcome",
    "ExecutionBackend",
    "SequentialBackend",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
    "PersistentProcessBackend",
    "BatchingBackend",
    "resolve_backend",
    "run_component_task",
    "run_component_batch",
    "stamp_envelope",
]


@dataclass
class ComponentTask:
    """One component's share of one request.

    State travels by reference: ``state_ref`` names an immutable
    published snapshot by ``(store, component, epoch)`` and pins it, so
    executing the task at any later time — on any backend, concurrently
    with updates — always computes against the dispatch-time state.
    Hand-built tasks may instead inline ``partition`` / ``synopsis``
    directly; both are immutable references, never mutated by execution.

    Envelope identity travels with the task: ``envelope`` is the
    *detached* (payload-free) :class:`~repro.serving.envelope.
    ServingRequest` the task belongs to — ``request`` already carries
    the payload, so crossing a process boundary never serialises it
    twice.  Every backend's execution path stamps the envelope's
    ``request_id`` / ``request_class`` into the outcome's report
    (``None`` envelope for bare-payload tasks).

    Pickling materialises a live ref into the payload (the vanilla
    process-pool behaviour: state cost per *task*); the persistent
    backend detaches the ref first so only its identity triple travels
    (state cost per *epoch*).
    """

    component: int
    adapter: Any
    request: Any
    deadline: float
    partition: Any = None
    synopsis: Any = None
    state_ref: StateRef | None = None
    clock: DeadlineClock | None = None
    i_max: int | None = None
    i_max_fraction: float | None = None
    start_time: float | None = None
    envelope: Any = None
    # In-process execution override: when set, backends run the task by
    # calling ``runner(task)`` instead of the default resolve-and-process
    # path.  This is how a remote servable routes its per-component tasks
    # over its own socket while still flowing through any local backend's
    # scheduling (hedging futures included).  Runners are process-local —
    # a runner task must not be pickled to another process.
    runner: Any = None

    def resolve_state(self) -> tuple[Any, Any]:
        """The ``(partition, synopsis)`` this task must execute against.

        Inline state wins when present (a materialised task keeps its
        detached ref purely as epoch identity); otherwise the ref
        resolves through the store — the dispatch-time epoch.
        """
        if self.partition is not None or self.synopsis is not None:
            return self.partition, self.synopsis
        if self.state_ref is not None:
            state = self.state_ref.resolve()
            return state.partition, state.synopsis
        return self.partition, self.synopsis

    def __getstate__(self):
        # Crossing a process boundary with a *live* ref embeds the
        # snapshot in the payload — per-task state shipping, the vanilla
        # process-pool cost model — keeping the detached ref as epoch
        # identity.  An already-detached ref passes through as its tiny
        # identity triple (the persistent backend's cost model).
        state = dict(self.__dict__)
        ref = state.get("state_ref")
        if ref is not None and (ref.store is not None
                                or ref.pinned is not None):
            snapshot = ref.resolve()
            state["partition"] = snapshot.partition
            state["synopsis"] = snapshot.synopsis
            state["state_ref"] = ref.detached()
        return state


@dataclass
class ComponentOutcome:
    """Result of executing one :class:`ComponentTask`.

    ``spans`` piggybacks the executing side's trace spans (epoch fetch,
    kernel time) back to the dispatching process — the return leg of
    cross-process trace stitching.  ``None`` for unsampled requests, so
    the untraced outcome pickles exactly as small as before.  Excluded
    from equality: observability never changes what an outcome *is*.
    """

    component: int
    result: Any
    report: ProcessingReport
    spans: tuple = field(default=None, compare=False, repr=False)


def stamp_envelope(report: ProcessingReport, task: ComponentTask) -> None:
    """Record the task's envelope identity (id, class) on its report."""
    if task.envelope is not None:
        report.request_id = task.envelope.request_id
        report.request_class = task.envelope.request_class.value


def _task_recorder(task: ComponentTask) -> SpanRecorder | None:
    """A span recorder for the task's trace, or ``None`` when unsampled.

    The trace context rides the detached envelope, so this works
    identically in the dispatching process and in any worker process
    the task was pickled into.
    """
    if task.envelope is None:
        return None
    ctx = trace_context_of(task.envelope)
    if ctx is None or not ctx.sampled:
        return None
    return SpanRecorder(ctx)


def run_component_task(task: ComponentTask) -> ComponentOutcome:
    """Execute one task (module-level so process pools can pickle it)."""
    if task.runner is not None:
        return task.runner(task)
    rec = _task_recorder(task)
    if rec is None:
        partition, synopsis = task.resolve_state()
        result, report = process_component(
            task.adapter, partition, synopsis, task.request,
            task.deadline, clock=task.clock,
            i_max=task.i_max, i_max_fraction=task.i_max_fraction,
            start_time=task.start_time,
        )
        spans = None
    else:
        with rec.span("state.fetch", component=task.component) as fetch:
            partition, synopsis = task.resolve_state()
        if task.state_ref is not None:
            fetch.tag(epoch=task.state_ref.epoch)
        with rec.span("kernel", component=task.component) as kernel:
            result, report = process_component(
                task.adapter, partition, synopsis, task.request,
                task.deadline, clock=task.clock,
                i_max=task.i_max, i_max_fraction=task.i_max_fraction,
                start_time=task.start_time,
            )
        kernel.tag(groups_processed=report.groups_processed,
                   work_units=report.work_units)
        spans = tuple(rec.spans)
    if task.state_ref is not None:
        report.state_epoch = task.state_ref.epoch
    stamp_envelope(report, task)
    return ComponentOutcome(component=task.component, result=result,
                            report=report, spans=spans)


def run_component_batch(tasks: Sequence[ComponentTask]) -> list[ComponentOutcome]:
    """Execute several tasks, micro-batching same-state groups.

    Tasks sharing an ``(adapter, partition, synopsis, i_max)`` identity
    run through :func:`repro.core.processor.process_component_batch` —
    one vectorized stage-1 pass for the group — while runner tasks and
    singletons take their usual paths.  Outcomes come back in task
    order, bit-identical to per-task :func:`run_component_task` calls
    under deterministic clocks.

    Module-level so process pools can pickle it; grouping keys on object
    identity, which holds worker-side because one pickled batch
    deduplicates its shared snapshot (pickle memoization) and the
    persistent worker cache hands every same-epoch task the same
    resolved snapshot object.
    """
    outcomes: list[ComponentOutcome | None] = [None] * len(tasks)
    groups: dict[tuple, list] = {}
    order: list[tuple] = []
    for i, task in enumerate(tasks):
        if task.runner is not None:
            outcomes[i] = task.runner(task)
            continue
        rec = _task_recorder(task)
        if rec is None:
            partition, synopsis = task.resolve_state()
        else:
            with rec.span("state.fetch", component=task.component) as fetch:
                partition, synopsis = task.resolve_state()
            if task.state_ref is not None:
                fetch.tag(epoch=task.state_ref.epoch)
        key = (id(task.adapter), id(partition), id(synopsis),
               task.i_max, task.i_max_fraction)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append((i, task, partition, synopsis, rec))
    for key in order:
        entries = groups[key]
        _, first, partition, synopsis, _ = entries[0]
        t_batch0 = monotonic()
        pairs = process_component_batch(
            first.adapter, partition, synopsis,
            [t.request for _, t, _, _, _ in entries],
            [t.deadline for _, t, _, _, _ in entries],
            clocks=[t.clock for _, t, _, _, _ in entries],
            i_max=first.i_max, i_max_fraction=first.i_max_fraction,
            start_times=[t.start_time for _, t, _, _, _ in entries],
        )
        t_batch1 = monotonic()
        for (i, task, _, _, rec), (result, report) in zip(entries, pairs):
            if task.state_ref is not None:
                report.state_epoch = task.state_ref.epoch
            stamp_envelope(report, task)
            spans = None
            if rec is not None:
                # One vectorized pass served the whole group; every
                # member's kernel span covers it, tagged with the share.
                kernel = rec.span("kernel", component=task.component,
                                  batch_size=len(entries),
                                  groups_processed=report.groups_processed,
                                  work_units=report.work_units)
                kernel.span.start = t_batch0
                kernel.finish(end=t_batch1)
                spans = tuple(rec.spans)
            outcomes[i] = ComponentOutcome(component=task.component,
                                           result=result, report=report,
                                           spans=spans)
    return outcomes  # type: ignore[return-value]


def _scatter_batch_future(batch_future: Future, count: int) -> list[Future]:
    """Fan one batch future out into per-task outcome futures."""
    futures = [Future() for _ in range(count)]
    for f in futures:
        f.set_running_or_notify_cancel()

    def _done(bf: Future) -> None:
        try:
            outcomes = bf.result()
        except BaseException as exc:  # noqa: BLE001 - futures carry it
            for f in futures:
                f.set_exception(exc)
        else:
            for f, outcome in zip(futures, outcomes):
                f.set_result(outcome)

    batch_future.add_done_callback(_done)
    return futures


class ExecutionBackend(abc.ABC):
    """Strategy for executing a request's per-component tasks."""

    name: str = "abstract"

    @property
    def metrics(self) -> MetricsRegistry:
        """This backend's metrics registry (created lazily).

        The payload accounting counters live here;
        :meth:`payload_counters` is a registry read with the historical
        dict shape, so the registry is the single source of truth while
        every existing consumer keeps seeing bit-identical values.
        """
        registry = self.__dict__.get("_metrics_registry")
        if registry is None:
            registry = self.__dict__.setdefault("_metrics_registry",
                                                MetricsRegistry())
        return registry

    @abc.abstractmethod
    def run_tasks(self, tasks: Sequence[ComponentTask]) -> list[ComponentOutcome]:
        """Execute ``tasks`` and return their outcomes *in task order*."""

    def submit_task(self, task: ComponentTask) -> "Future[ComponentOutcome]":
        """Submit one task, returning a future for its outcome.

        The futures interface is what the router tier's hedged dispatch
        needs: it watches per-shard completion, re-issues stragglers, and
        cancels the losing copy — :meth:`Future.cancel` only takes effect
        while the task is still queued, which is exactly Dean & Barroso's
        tied-request semantics (an in-service copy runs to completion).

        The base implementation executes inline and returns an
        already-completed future, so backends without queues (sequential)
        still satisfy the interface — they simply can never hedge.
        """
        future: Future = Future()
        if future.set_running_or_notify_cancel():
            try:
                future.set_result(run_component_task(task))
            except BaseException as exc:  # noqa: BLE001 - future carries it
                future.set_exception(exc)
        return future

    def submit_batch(self, tasks: Sequence[ComponentTask]) -> list[Future]:
        """Submit a coalesced batch, returning one future per task.

        Backends that can amortise a submission hop across the batch —
        one pool submit, one pickle of the whole list — override this;
        the base implementation degrades to per-task submission, so a
        batch is never *worse* than unbatched dispatch.  Outcomes are
        bit-identical to per-task submission either way.
        """
        return [self.submit_task(task) for task in tasks]

    def payload_counters(self) -> dict:
        """Cumulative serialized-payload accounting (thread-safe snapshot).

        - ``task_bytes`` — serialized task payloads shipped to workers
          (for the vanilla process pool this *includes* the embedded
          state snapshot, which is the cost this counter exists to make
          visible);
        - ``state_bytes`` — state snapshots shipped separately from
          tasks (the persistent backend's once-per-epoch publications);
        - ``tasks_shipped`` / ``state_publishes`` — the matching counts.

        In-process backends move references, not bytes: all zeros.
        """
        m = self.metrics
        return {"task_bytes": m.counter("task_bytes").value,
                "state_bytes": m.counter("state_bytes").value,
                "tasks_shipped": m.counter("tasks_shipped").value,
                "state_publishes": m.counter("state_publishes").value}

    def close(self) -> None:
        """Release pooled resources (idempotent)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SequentialBackend(ExecutionBackend):
    """Run components inline, in order — the reference implementation."""

    name = "sequential"

    def run_tasks(self, tasks: Sequence[ComponentTask]) -> list[ComponentOutcome]:
        return [run_component_task(t) for t in tasks]

    def submit_batch(self, tasks: Sequence[ComponentTask]) -> list[Future]:
        tasks = list(tasks)
        futures = [Future() for _ in tasks]
        live = [f.set_running_or_notify_cancel() for f in futures]
        try:
            outcomes = run_component_batch(tasks)
        except BaseException as exc:  # noqa: BLE001 - futures carry it
            for f, ok in zip(futures, live):
                if ok:
                    f.set_exception(exc)
            return futures
        for f, ok, outcome in zip(futures, live, outcomes):
            if ok:
                f.set_result(outcome)
        return futures


class ThreadPoolBackend(ExecutionBackend):
    """Run components on a shared thread pool.

    Threads overlap any blocking in component work (storage/network
    stalls, GIL-releasing kernels).  The pool is created lazily and reused
    across requests; ``max_workers`` defaults to the executor's policy.
    """

    name = "thread"

    def __init__(self, max_workers: int | None = None):
        self.max_workers = max_workers
        self._pool: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="repro-serving")
            return self._pool

    def run_tasks(self, tasks: Sequence[ComponentTask]) -> list[ComponentOutcome]:
        return list(self._ensure_pool().map(run_component_task, tasks))

    def submit_task(self, task: ComponentTask) -> "Future[ComponentOutcome]":
        return self._ensure_pool().submit(run_component_task, task)

    def submit_batch(self, tasks: Sequence[ComponentTask]) -> list[Future]:
        tasks = list(tasks)
        if len(tasks) <= 1:
            return [self.submit_task(t) for t in tasks]
        batch = self._ensure_pool().submit(run_component_batch, tasks)
        return _scatter_batch_future(batch, len(tasks))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def _preferred_mp_context(start_method: str | None):
    """A multiprocessing context preferring ``forkserver``.

    Pools may be created lazily from a harness worker thread, and
    forking an already-multithreaded process can inherit held locks
    (deprecated in Python 3.12+); forkserver forks from a clean helper
    process instead.
    """
    import multiprocessing as mp

    method = start_method
    if method is None:
        available = mp.get_all_start_methods()
        method = "forkserver" if "forkserver" in available else None
    return mp.get_context(method) if method is not None else None


def _run_pickled_task(blob: bytes) -> ComponentOutcome:
    """Worker entry: unpickle a pre-serialized task and run it."""
    return run_component_task(pickle.loads(blob))


def _run_pickled_batch(blob: bytes) -> list[ComponentOutcome]:
    """Worker entry: unpickle a pre-serialized task *list* and run it.

    The list was pickled in one ``dumps`` call, so a state snapshot
    shared by every task crossed the boundary exactly once (pickle
    memoization) and unpickles to one shared object — which is also what
    lets :func:`run_component_batch` group the batch by state identity.
    """
    return run_component_batch(pickle.loads(blob))


class ProcessPoolBackend(ExecutionBackend):
    """Run components on a shared process pool — state shipped per task.

    Each task is pickled to a worker with its state snapshot embedded
    (see :meth:`ComponentTask.__getstate__`) and the (result, report)
    pickled back; mutations the worker makes to its copies — clock
    charges, adapter caches — do not propagate, which is exactly the
    isolation that makes the outcome a pure function of the task.

    Tasks are serialized *here*, not inside the executor, so the
    per-task payload cost is measured exactly once and surfaced via
    :meth:`payload_counters` — the number that motivates
    :class:`PersistentProcessBackend`, which ships state once per epoch
    instead.
    """

    name = "process"

    def __init__(self, max_workers: int | None = None,
                 start_method: str | None = None):
        self.max_workers = max_workers
        self.start_method = start_method
        self._pool: ProcessPoolExecutor | None = None
        self._lock = threading.Lock()
        self._task_bytes = self.metrics.counter("task_bytes")
        self._tasks_shipped = self.metrics.counter("tasks_shipped")

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.max_workers,
                    mp_context=_preferred_mp_context(self.start_method))
            return self._pool

    def run_tasks(self, tasks: Sequence[ComponentTask]) -> list[ComponentOutcome]:
        return [f.result() for f in [self.submit_task(t) for t in tasks]]

    def submit_task(self, task: ComponentTask) -> "Future[ComponentOutcome]":
        blob = pickle.dumps(task)
        self._task_bytes.inc(len(blob))
        self._tasks_shipped.inc()
        return self._ensure_pool().submit(_run_pickled_task, blob)

    def submit_batch(self, tasks: Sequence[ComponentTask]) -> list[Future]:
        tasks = list(tasks)
        if len(tasks) <= 1:
            return [self.submit_task(t) for t in tasks]
        # One dumps for the whole batch: a shared snapshot serialises
        # once instead of once per task — the pickle hop this backend
        # pays per request collapses to per batch.
        blob = pickle.dumps(tasks)
        self._task_bytes.inc(len(blob))
        self._tasks_shipped.inc(len(tasks))
        batch = self._ensure_pool().submit(_run_pickled_batch, blob)
        return _scatter_batch_future(batch, len(tasks))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


# ---------------------------------------------------------------------------
# Persistent workers: state shipped once per epoch
# ---------------------------------------------------------------------------


# Worker-side snapshot cache: (store_id, component, epoch) -> ComponentState.
# Module-level so it survives across tasks in one long-lived worker; a
# worker holds at most one epoch per (store, component) — inserting a
# newer epoch evicts the superseded ones (copy-on-swap mirrored
# worker-side).
_WORKER_STATE_CACHE: dict[tuple, ComponentState] = {}


def _channel_path(channel_dir: str, key: tuple) -> str:
    store_id, component, epoch = key
    return os.path.join(channel_dir, f"{store_id}-{component}-{epoch}.state")


def _worker_cached_state(key: tuple, channel_dir: str) -> ComponentState:
    """Resolve a snapshot in a worker: cache hit, or one channel fetch.

    Only the newest seen epoch per (store, component) is cached — a
    straggler task pinned to an older epoch is served from a one-off
    fetch without displacing (or joining) the newer cached snapshot.
    """
    state = _WORKER_STATE_CACHE.get(key)
    if state is not None:
        return state
    with open(_channel_path(channel_dir, key), "rb") as fh:
        state = pickle.load(fh)
    store_id, component, epoch = key
    group = [k for k in _WORKER_STATE_CACHE
             if k[0] == store_id and k[1] == component]
    if any(k[2] > epoch for k in group):
        return state
    for stale in group:
        del _WORKER_STATE_CACHE[stale]
    _WORKER_STATE_CACHE[key] = state
    return state


def _run_persistent_task(blob: bytes, channel_dir: str) -> ComponentOutcome:
    """Worker entry: resolve the detached ref from the cache, then run.

    Inline state wins over the ref, mirroring
    :meth:`ComponentTask.resolve_state` — a task that was materialised
    by an earlier pickling carries its snapshot inline plus a detached
    ref that was never published to this backend's channel.
    """
    task: ComponentTask = pickle.loads(blob)
    ref = task.state_ref
    if ref is not None and task.partition is None and task.synopsis is None:
        rec = _task_recorder(task)
        if rec is None:
            state = _worker_cached_state(ref.key, channel_dir)
        else:
            with rec.span("state.fetch", component=task.component,
                          epoch=ref.epoch, channel="persistent",
                          cached=ref.key in _WORKER_STATE_CACHE):
                state = _worker_cached_state(ref.key, channel_dir)
        task = replace(task, partition=state.partition,
                       synopsis=state.synopsis, state_ref=None)
        outcome = run_component_task(task)
        outcome.report.state_epoch = ref.epoch
        if rec is not None:
            outcome.spans = tuple(rec.spans) + tuple(outcome.spans or ())
        return outcome
    return run_component_task(task)


def _run_persistent_batch(blob: bytes, channel_dir: str) -> list[ComponentOutcome]:
    """Worker entry: resolve each detached ref once, run as one batch.

    Every task in a coalesced batch shares one ``(store, component,
    epoch)`` key, so the cache lookup returns the same snapshot object
    for all of them — :func:`run_component_batch` then groups the whole
    batch into a single vectorized stage-1 pass.  The detached ref stays
    on the task so the batch runner stamps ``state_epoch``.
    """
    tasks: list[ComponentTask] = pickle.loads(blob)
    resolved = []
    for task in tasks:
        ref = task.state_ref
        if ref is not None and task.partition is None \
                and task.synopsis is None:
            state = _worker_cached_state(ref.key, channel_dir)
            resolved.append(replace(task, partition=state.partition,
                                    synopsis=state.synopsis))
        else:
            resolved.append(task)
    return run_component_batch(resolved)


def _probe_worker_cache() -> list[tuple]:
    """Worker entry: this worker's cached snapshot keys (test/debug)."""
    return sorted(_WORKER_STATE_CACHE)


class PersistentProcessBackend(ExecutionBackend):
    """Long-lived worker processes with per-epoch snapshot caching.

    The vanilla process pool re-pickles each component's ``(partition,
    synopsis)`` snapshot into every task, so state-distribution cost
    scales with *request* rate.  This backend inverts that: state moves
    through a shared distribution channel (a spill directory holding one
    pickled snapshot per ``(store, component, epoch)``), published
    **once per epoch** on first use; per task only the task's
    request-plane fields plus a detached
    :class:`~repro.core.state.StateRef` travel.  Workers cache fetched
    snapshots by epoch — at most one channel read per epoch per worker —
    and evict superseded epochs on insert, mirroring copy-on-swap
    worker-side.

    Parent-side, a published epoch stays in the channel while tasks
    referencing it are outstanding (refcounted) and is removed once it
    is both superseded and drained, so in-flight requests stay pinned to
    their dispatch-time epoch across concurrent updates while the
    channel stays bounded.

    :meth:`payload_counters` separates the two flows: ``task_bytes``
    (per request, small) vs ``state_bytes`` (per epoch, large) — the
    O(updates)-not-O(requests) claim, measured.
    """

    name = "persistent"

    def __init__(self, max_workers: int | None = None,
                 start_method: str | None = None):
        self.max_workers = max_workers
        self.start_method = start_method
        self._pool: ProcessPoolExecutor | None = None
        self._channel_dir: str | None = None
        self._lock = threading.Lock()
        # (store_id, component) -> {epoch currently in the channel}.
        self._published: dict[tuple, set[int]] = {}
        self._outstanding: dict[tuple, int] = {}   # key -> in-flight tasks
        self._superseded: set[tuple] = set()
        self._task_bytes = self.metrics.counter("task_bytes")
        self._tasks_shipped = self.metrics.counter("tasks_shipped")
        self._state_bytes = self.metrics.counter("state_bytes")
        self._state_publishes = self.metrics.counter("state_publishes")

    # -- channel management (parent side) -------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._channel_dir = tempfile.mkdtemp(
                    prefix="repro-state-plane-")
                self._pool = ProcessPoolExecutor(
                    max_workers=self.max_workers,
                    mp_context=_preferred_mp_context(self.start_method))
            return self._pool

    def _ensure_published_locked(self, ref: StateRef) -> None:
        """Publish ``ref``'s snapshot to the channel (at most once/epoch).

        A straggler ref may *re*-publish an epoch older than the
        newest already in the channel (its file was evicted after
        draining); supersession is therefore computed against the
        newest published epoch, in both directions, so every non-newest
        epoch is evicted again the moment it drains.
        """
        group = (ref.store_id, ref.component)
        epochs = self._published.setdefault(group, set())
        if ref.epoch not in epochs:
            blob = pickle.dumps(ref.resolve())
            with open(_channel_path(self._channel_dir, ref.key), "wb") as fh:
                fh.write(blob)
            self._state_bytes.inc(len(blob))
            self._state_publishes.inc()
            epochs.add(ref.epoch)
        newest = max(epochs)
        for epoch in list(epochs):
            if epoch < newest:
                self._mark_superseded_locked((ref.store_id, ref.component,
                                              epoch))

    def _mark_superseded_locked(self, key: tuple) -> None:
        self._superseded.add(key)
        self._maybe_evict_locked(key)

    def _maybe_evict_locked(self, key: tuple) -> None:
        """Drop a superseded, drained epoch from the channel."""
        if key in self._superseded and self._outstanding.get(key, 0) == 0:
            self._superseded.discard(key)
            self._published.get((key[0], key[1]), set()).discard(key[2])
            try:
                os.unlink(_channel_path(self._channel_dir, key))
            except OSError:
                pass

    def _task_done(self, key: tuple, count: int = 1):
        def callback(_future) -> None:
            with self._lock:
                self._outstanding[key] = \
                    self._outstanding.get(key, count) - count
                if self._outstanding[key] <= 0:
                    del self._outstanding[key]
                self._maybe_evict_locked(key)

        return callback

    def published_epochs(self, store_id: str, component: int) -> list[int]:
        """Epochs currently in the distribution channel (test/debug)."""
        with self._lock:
            return sorted(self._published.get((store_id, component), set()))

    def probe_worker_cache(self) -> list[tuple]:
        """One worker's cached snapshot keys (test/debug helper).

        With ``max_workers=1`` this observes *the* worker's cache;
        with more workers it samples whichever worker takes the probe.
        """
        return self._ensure_pool().submit(_probe_worker_cache).result()

    # -- ExecutionBackend ------------------------------------------------

    def run_tasks(self, tasks: Sequence[ComponentTask]) -> list[ComponentOutcome]:
        return [f.result() for f in [self.submit_task(t) for t in tasks]]

    def submit_task(self, task: ComponentTask) -> "Future[ComponentOutcome]":
        pool = self._ensure_pool()
        ref = task.state_ref
        if ref is not None and (ref.store is not None
                                or ref.pinned is not None):
            with self._lock:
                # Outstanding first: publishing may immediately mark
                # this very epoch superseded (straggler re-publish),
                # and eviction must wait for this task to drain.
                self._outstanding[ref.key] = \
                    self._outstanding.get(ref.key, 0) + 1
                self._ensure_published_locked(ref)
            blob = pickle.dumps(replace(task, state_ref=ref.detached()))
            self._task_bytes.inc(len(blob))
            self._tasks_shipped.inc()
            future = pool.submit(_run_persistent_task, blob,
                                 self._channel_dir)
            future.add_done_callback(self._task_done(ref.key))
            return future
        if ref is not None and task.partition is None \
                and task.synopsis is None:
            # A detached ref without inline state only resolves if its
            # epoch is (still) in the channel; reject an unpublished one
            # here with the in-process backends' descriptive error
            # rather than a raw FileNotFoundError inside a worker.
            with self._lock:
                published = ref.epoch in self._published.get(
                    (ref.store_id, ref.component), set())
                if published:
                    self._outstanding[ref.key] = \
                        self._outstanding.get(ref.key, 0) + 1
            if not published:
                raise StaleEpochError(
                    f"detached ref {ref.key} references an epoch not in "
                    "this backend's channel; submit the task with its "
                    "live (pinned) ref instead")
            blob = pickle.dumps(task)
            self._task_bytes.inc(len(blob))
            self._tasks_shipped.inc()
            future = pool.submit(_run_persistent_task, blob,
                                 self._channel_dir)
            future.add_done_callback(self._task_done(ref.key))
            return future
        # Inline-state task: ship it whole, like the vanilla pool —
        # there is no unshipped state to amortise.
        blob = pickle.dumps(task)
        self._task_bytes.inc(len(blob))
        self._tasks_shipped.inc()
        return pool.submit(_run_persistent_task, blob, self._channel_dir)

    def submit_batch(self, tasks: Sequence[ComponentTask]) -> list[Future]:
        tasks = list(tasks)
        if len(tasks) <= 1:
            return [self.submit_task(t) for t in tasks]
        refs = [t.state_ref for t in tasks]
        live_same_key = (
            all(r is not None and (r.store is not None
                                   or r.pinned is not None) for r in refs)
            and len({r.key for r in refs}) == 1)
        if not live_same_key:
            # Mixed epochs / inline state: no shared snapshot to
            # amortise as one unit — degrade to per-task submission.
            return [self.submit_task(t) for t in tasks]
        ref = refs[0]
        pool = self._ensure_pool()
        with self._lock:
            # Outstanding first, as in submit_task: eviction of this
            # epoch must wait for the whole batch to drain.
            self._outstanding[ref.key] = \
                self._outstanding.get(ref.key, 0) + len(tasks)
            self._ensure_published_locked(ref)
        blob = pickle.dumps([replace(t, state_ref=t.state_ref.detached())
                             for t in tasks])
        self._task_bytes.inc(len(blob))
        self._tasks_shipped.inc(len(tasks))
        batch = pool.submit(_run_persistent_batch, blob, self._channel_dir)
        batch.add_done_callback(self._task_done(ref.key, len(tasks)))
        return _scatter_batch_future(batch, len(tasks))

    def close(self) -> None:
        with self._lock:
            pool, channel = self._pool, self._channel_dir
            self._pool = self._channel_dir = None
            self._published.clear()
            self._outstanding.clear()
            self._superseded.clear()
        if pool is not None:
            pool.shutdown(wait=True)
        if channel is not None:
            shutil.rmtree(channel, ignore_errors=True)


# ---------------------------------------------------------------------------
# Dispatch coalescing
# ---------------------------------------------------------------------------


@dataclass
class _Bucket:
    """Tasks awaiting one coalesced submission."""

    deadline: float
    entries: list = field(default_factory=list)


class BatchingBackend(ExecutionBackend):
    """Coalesce same-``(component, epoch)`` tasks into batched submissions.

    Wraps any :class:`ExecutionBackend`.  Tasks submitted within
    ``window`` seconds that share a batch key — same adapter and same
    pinned ``(store, component, epoch)`` state (or same inline state
    objects) — are buffered and handed to the inner backend as **one**
    :meth:`~ExecutionBackend.submit_batch` call: one pickle/queue hop
    and one vectorized stage-1 pass per batch instead of per request.
    Mixed epochs never coalesce (the epoch is part of the key), so a
    batch can never observe torn state across an update.

    Per-request separability is preserved end to end: every task keeps
    its own future, clock, deadline and :class:`~repro.core.processor.
    ProcessingReport` (stamped with the envelope's ``request_id``), and
    outcomes are bit-identical to unbatched dispatch under
    deterministic clocks.

    Future semantics match the router tier's hedging needs: a task's
    future can be cancelled until its bucket flushes (the queued-only
    window); at flush each future transitions to running and the batch
    is in service.  Runner tasks (remote execution) bypass coalescing
    straight to the inner backend.

    Parameters
    ----------
    inner:
        Backend (instance or name) that executes the batches.
    window:
        Seconds to hold an open bucket for more arrivals.  ``0.0``
        still coalesces whatever is pending when the flusher runs —
        the right choice when callers submit bursts synchronously.
    max_batch:
        Flush a bucket immediately when it reaches this many tasks.
    close_inner:
        Whether :meth:`close` also closes the inner backend (the
        wrapper owns it).
    """

    name = "batching"

    def __init__(self, inner, window: float = 0.002, max_batch: int = 32,
                 close_inner: bool = False):
        if window < 0:
            raise ValueError("window must be non-negative")
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        self.inner = resolve_backend(inner)
        self.window = float(window)
        self.max_batch = int(max_batch)
        self._close_inner = bool(close_inner)
        self._cond = threading.Condition(threading.Lock())
        self._buckets: dict[tuple, _Bucket] = {}
        self._flusher: threading.Thread | None = None
        self._closed = False
        self._batches_submitted = self.metrics.counter("batches_submitted")
        self._tasks_coalesced = self.metrics.counter("tasks_coalesced")

    # -- batching mechanics ---------------------------------------------

    @staticmethod
    def _batch_key(task: ComponentTask) -> tuple | None:
        """Coalescing identity, or None for tasks that must not batch."""
        if task.runner is not None:
            return None
        ref = task.state_ref
        if ref is not None:
            return ("ref", id(task.adapter), ref.store_id, ref.component,
                    ref.epoch)
        return ("inline", id(task.adapter), task.component,
                id(task.partition), id(task.synopsis))

    def _ensure_flusher_locked(self) -> None:
        if self._flusher is None or not self._flusher.is_alive():
            self._flusher = threading.Thread(
                target=self._flush_loop, name="repro-batching-flush",
                daemon=True)
            self._flusher.start()

    def _flush_loop(self) -> None:
        while True:
            with self._cond:
                while not self._buckets and not self._closed:
                    self._cond.wait()
                if self._closed and not self._buckets:
                    return
                now = monotonic()
                due_keys = [k for k, b in self._buckets.items()
                            if self._closed or b.deadline <= now]
                due = [self._buckets.pop(k) for k in due_keys]
                if not due:
                    horizon = min(b.deadline
                                  for b in self._buckets.values())
                    self._cond.wait(max(0.0, horizon - now))
                    continue
            for bucket in due:
                self._flush(bucket.entries)

    def _flush(self, entries: list) -> None:
        live = [(t, f, t_enq) for t, f, t_enq in entries
                if f.set_running_or_notify_cancel()]
        if not live:
            return
        tasks = [t for t, _, _ in live]
        self._batches_submitted.inc()
        self._tasks_coalesced.inc(len(tasks))
        t_flush = monotonic()
        tracer = get_tracer()
        for task, _, t_enq in live:
            # The coalescing wait is queue time this wrapper added on
            # purpose; make it attributable per request.
            ctx = trace_context_of(task.envelope) \
                if task.envelope is not None else None
            if ctx is not None and ctx.sampled:
                tracer.record("batch.coalesce", ctx, t_enq, t_flush,
                              component=task.component,
                              batch_size=len(tasks))
        try:
            inner_futures = self.inner.submit_batch(tasks)
        except BaseException as exc:  # noqa: BLE001 - futures carry it
            for _, f, _ in live:
                f.set_exception(exc)
            return
        for (_, outer, _), inner in zip(live, inner_futures):
            self._chain(inner, outer)

    @staticmethod
    def _chain(src: Future, dst: Future) -> None:
        def _done(fut: Future) -> None:
            if dst.done():
                return
            try:
                dst.set_result(fut.result())
            except BaseException as exc:  # noqa: BLE001
                dst.set_exception(exc)

        src.add_done_callback(_done)

    # -- ExecutionBackend ------------------------------------------------

    def submit_task(self, task: ComponentTask) -> "Future[ComponentOutcome]":
        key = self._batch_key(task)
        if key is None:
            return self.inner.submit_task(task)
        future: Future = Future()
        now = monotonic()
        with self._cond:
            if self._closed:
                raise RuntimeError("BatchingBackend is closed")
            bucket = self._buckets.get(key)
            if bucket is None:
                bucket = _Bucket(deadline=now + self.window)
                self._buckets[key] = bucket
                self._ensure_flusher_locked()
            bucket.entries.append((task, future, now))
            full = len(bucket.entries) >= self.max_batch
            if full:
                del self._buckets[key]
            self._cond.notify_all()
        if full:
            self._flush(bucket.entries)
        return future

    def run_tasks(self, tasks: Sequence[ComponentTask]) -> list[ComponentOutcome]:
        futures = [self.submit_task(t) for t in tasks]
        return [f.result() for f in futures]

    def payload_counters(self) -> dict:
        return self.inner.payload_counters()

    def batch_stats(self) -> dict:
        """Coalescing effectiveness: batches flushed vs tasks batched."""
        return {"batches_submitted": self._batches_submitted.value,
                "tasks_coalesced": self._tasks_coalesced.value}

    def close(self) -> None:
        with self._cond:
            self._closed = True
            flusher = self._flusher
            self._cond.notify_all()
        if flusher is not None:
            flusher.join(timeout=5.0)
        # Belt and braces: drain anything a dead flusher left behind.
        with self._cond:
            leftover = [b.entries for b in self._buckets.values()]
            self._buckets.clear()
        for entries in leftover:
            self._flush(entries)
        if self._close_inner:
            self.inner.close()


_BACKENDS = {
    "sequential": SequentialBackend,
    "thread": ThreadPoolBackend,
    "process": ProcessPoolBackend,
    "persistent": PersistentProcessBackend,
}


def resolve_backend(backend) -> ExecutionBackend:
    """Coerce ``backend`` (instance, name, or ``None``) to a backend.

    ``None`` means :class:`SequentialBackend`; strings name one of
    ``"sequential"``, ``"thread"``, ``"process"``, ``"persistent"``,
    ``"async"`` (the event-loop backend from :mod:`repro.serving.aio`),
    or ``"remote"`` (the socket backend from
    :mod:`repro.serving.transport`).
    """
    if backend is None:
        return SequentialBackend()
    if isinstance(backend, ExecutionBackend):
        return backend
    if isinstance(backend, str):
        if backend == "async":
            # Imported lazily: aio builds on this module.
            from repro.serving.aio import AsyncExecutionBackend

            return AsyncExecutionBackend()
        if backend == "remote":
            # Imported lazily: transport builds on this module.
            from repro.serving.transport import RemoteBackend

            return RemoteBackend()
        cls = _BACKENDS.get(backend)
        if cls is None:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of "
                f"{sorted([*_BACKENDS, 'async', 'remote'])}")
        return cls()
    raise TypeError(f"cannot interpret {backend!r} as an execution backend")
