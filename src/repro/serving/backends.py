"""Pluggable per-component execution backends for the serving layer.

An n-component request fans out n independent sub-operations (Algorithm 1
runs per component); an :class:`ExecutionBackend` decides *where* those
sub-operations run:

- :class:`SequentialBackend` — inline, one after another.  The reference
  semantics; also the fastest choice for tiny components where dispatch
  overhead dominates.
- :class:`ThreadPoolBackend` — a shared :class:`~concurrent.futures.
  ThreadPoolExecutor`.  Overlaps per-component blocking time (storage /
  network stalls, GIL-releasing numpy kernels); the right default for a
  live service whose components do I/O.
- :class:`ProcessPoolBackend` — a shared :class:`~concurrent.futures.
  ProcessPoolExecutor`.  True CPU parallelism for pure-Python component
  work, at the cost of pickling each task; worth it when per-request
  component work is large relative to its state.

All backends consume :class:`ComponentTask` values — self-contained,
picklable descriptions of one component's work built from a consistent
snapshot of that component's ``(partition, synopsis)`` state — and return
:class:`ComponentOutcome` values in task order.  Because tasks carry their
state explicitly, a backend never reads mutable service attributes, which
is what makes concurrent synopsis updates safe (copy-on-swap in
:class:`~repro.core.service.AccuracyTraderService`).
"""

from __future__ import annotations

import abc
import threading
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.clock import DeadlineClock
from repro.core.processor import ProcessingReport, process_component

__all__ = [
    "ComponentTask",
    "ComponentOutcome",
    "ExecutionBackend",
    "SequentialBackend",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
    "resolve_backend",
    "run_component_task",
]


@dataclass
class ComponentTask:
    """One component's share of one request, with all state inlined.

    The task owns immutable *references*: the partition and synopsis are
    never mutated by execution (updates replace them wholesale), so tasks
    can be executed concurrently with updates and with each other.
    """

    component: int
    adapter: Any
    partition: Any
    synopsis: Any
    request: Any
    deadline: float
    clock: DeadlineClock | None = None
    i_max: int | None = None
    i_max_fraction: float | None = None
    start_time: float | None = None


@dataclass
class ComponentOutcome:
    """Result of executing one :class:`ComponentTask`."""

    component: int
    result: Any
    report: ProcessingReport


def run_component_task(task: ComponentTask) -> ComponentOutcome:
    """Execute one task (module-level so process pools can pickle it)."""
    result, report = process_component(
        task.adapter, task.partition, task.synopsis, task.request,
        task.deadline, clock=task.clock,
        i_max=task.i_max, i_max_fraction=task.i_max_fraction,
        start_time=task.start_time,
    )
    return ComponentOutcome(component=task.component, result=result,
                            report=report)


class ExecutionBackend(abc.ABC):
    """Strategy for executing a request's per-component tasks."""

    name: str = "abstract"

    @abc.abstractmethod
    def run_tasks(self, tasks: Sequence[ComponentTask]) -> list[ComponentOutcome]:
        """Execute ``tasks`` and return their outcomes *in task order*."""

    def submit_task(self, task: ComponentTask) -> "Future[ComponentOutcome]":
        """Submit one task, returning a future for its outcome.

        The futures interface is what the router tier's hedged dispatch
        needs: it watches per-shard completion, re-issues stragglers, and
        cancels the losing copy — :meth:`Future.cancel` only takes effect
        while the task is still queued, which is exactly Dean & Barroso's
        tied-request semantics (an in-service copy runs to completion).

        The base implementation executes inline and returns an
        already-completed future, so backends without queues (sequential)
        still satisfy the interface — they simply can never hedge.
        """
        future: Future = Future()
        if future.set_running_or_notify_cancel():
            try:
                future.set_result(run_component_task(task))
            except BaseException as exc:  # noqa: BLE001 - future carries it
                future.set_exception(exc)
        return future

    def close(self) -> None:
        """Release pooled resources (idempotent)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SequentialBackend(ExecutionBackend):
    """Run components inline, in order — the reference implementation."""

    name = "sequential"

    def run_tasks(self, tasks: Sequence[ComponentTask]) -> list[ComponentOutcome]:
        return [run_component_task(t) for t in tasks]


class ThreadPoolBackend(ExecutionBackend):
    """Run components on a shared thread pool.

    Threads overlap any blocking in component work (storage/network
    stalls, GIL-releasing kernels).  The pool is created lazily and reused
    across requests; ``max_workers`` defaults to the executor's policy.
    """

    name = "thread"

    def __init__(self, max_workers: int | None = None):
        self.max_workers = max_workers
        self._pool: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="repro-serving")
            return self._pool

    def run_tasks(self, tasks: Sequence[ComponentTask]) -> list[ComponentOutcome]:
        return list(self._ensure_pool().map(run_component_task, tasks))

    def submit_task(self, task: ComponentTask) -> "Future[ComponentOutcome]":
        return self._ensure_pool().submit(run_component_task, task)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ProcessPoolBackend(ExecutionBackend):
    """Run components on a shared process pool.

    Each task (adapter, partition, synopsis, request, clock) is pickled to
    a worker and the (result, report) pickled back; mutations the worker
    makes to its copies — clock charges, adapter caches — do not propagate,
    which is exactly the isolation that makes the outcome a pure function
    of the task.  Prefers the ``forkserver`` start method where available:
    the pool may be created lazily from a harness worker thread, and
    forking an already-multithreaded process can inherit held locks
    (deprecated in Python 3.12+); forkserver forks from a clean helper
    process instead.
    """

    name = "process"

    def __init__(self, max_workers: int | None = None,
                 start_method: str | None = None):
        self.max_workers = max_workers
        self.start_method = start_method
        self._pool: ProcessPoolExecutor | None = None
        self._lock = threading.Lock()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._pool is None:
                import multiprocessing as mp

                method = self.start_method
                if method is None:
                    available = mp.get_all_start_methods()
                    method = ("forkserver" if "forkserver" in available
                              else None)
                ctx = mp.get_context(method) if method is not None else None
                self._pool = ProcessPoolExecutor(max_workers=self.max_workers,
                                                 mp_context=ctx)
            return self._pool

    def run_tasks(self, tasks: Sequence[ComponentTask]) -> list[ComponentOutcome]:
        return list(self._ensure_pool().map(run_component_task, tasks))

    def submit_task(self, task: ComponentTask) -> "Future[ComponentOutcome]":
        return self._ensure_pool().submit(run_component_task, task)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


_BACKENDS = {
    "sequential": SequentialBackend,
    "thread": ThreadPoolBackend,
    "process": ProcessPoolBackend,
}


def resolve_backend(backend) -> ExecutionBackend:
    """Coerce ``backend`` (instance, name, or ``None``) to a backend.

    ``None`` means :class:`SequentialBackend`; strings name one of
    ``"sequential"``, ``"thread"``, ``"process"``, or ``"async"`` (the
    event-loop backend from :mod:`repro.serving.aio`).
    """
    if backend is None:
        return SequentialBackend()
    if isinstance(backend, ExecutionBackend):
        return backend
    if isinstance(backend, str):
        if backend == "async":
            # Imported lazily: aio builds on this module.
            from repro.serving.aio import AsyncExecutionBackend

            return AsyncExecutionBackend()
        cls = _BACKENDS.get(backend)
        if cls is None:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of "
                f"{sorted([*_BACKENDS, 'async'])}")
        return cls()
    raise TypeError(f"cannot interpret {backend!r} as an execution backend")
