"""Admission control for the async serving tier: queue, limit, shed.

An event loop will happily accept millions of in-flight requests — which
is exactly how an overloaded service dies.  Real services in the paper's
setting bound what they accept: a request is either *admitted* (it may
wait in a bounded pending queue for one of a limited number of execution
slots) or *shed* immediately with a cheap rejection, so the work the
service does accept still meets its deadline.  This module provides that
layer for :class:`~repro.serving.aio.AsyncServingHarness`:

- :class:`AdmissionController` — a bounded pending queue plus an
  in-flight concurrency limiter, with per-reason shed counters and
  high-water marks surfaced into
  :class:`~repro.serving.harness.ServingRunStats`.  The pending queue
  dequeues by the envelope's *priority* (urgent classes first, FIFO
  within a class), so a freed slot goes to the queued
  accuracy-critical request even when best-effort requests have waited
  longer;
- :class:`ShedPolicy` — pluggable shed decisions, consulted both when a
  request *arrives* (before it may queue) and when it is *dispatched*
  (after its queue wait, before it burns an execution slot):

  - :class:`RejectOnFull` — classic bounded-queue rejection: arrival
    with the pending queue at capacity is shed;
  - :class:`DeadlineAwareDrop` — early drop: a request that has already
    waited a configurable fraction of its deadline is shed — serving it
    would burn a slot on an answer the client counts as missed anyway;
  - :class:`PriorityShedPolicy` — class-aware shedding over the typed
    request envelope (:mod:`repro.serving.envelope`): under overload,
    ``BEST_EFFORT`` requests are shed first and ``ACCURACY_CRITICAL``
    last — the paper's accuracy-critical traffic keeps its slots while
    background traffic absorbs the overload;
  - :class:`QueueDelayShed` — a CoDel-style controller on *standing*
    queue delay: sustained sojourn time above a target sheds at
    dispatch, with the classic inverse-sqrt drop cadence.

Admission consults the request's :class:`~repro.serving.envelope.
ServingRequest` when one is given (``acquire(request=...)``): the
snapshot a policy sees then carries the request's class and priority.
The positional ``acquire(deadline, waited)`` form remains for untyped
callers — policies see ``request_class=None`` and treat it as the
envelope default class.

Everything here is single-loop asyncio: counters need no locks because
they are only touched between awaits on one event loop.
"""

from __future__ import annotations

import abc
import asyncio
import heapq
import itertools
import math
from dataclasses import dataclass, field

from repro.core.clock import monotonic
from repro.serving.envelope import RequestClass, ServingRequest
from repro.serving.telemetry import MetricsRegistry, get_tracer, \
    trace_context_of

__all__ = [
    "AdmissionSnapshot",
    "AdmissionStats",
    "ShedPolicy",
    "RejectOnFull",
    "DeadlineAwareDrop",
    "PriorityShedPolicy",
    "QueueDelayShed",
    "AdmissionController",
]


@dataclass(frozen=True)
class AdmissionSnapshot:
    """What a shed policy sees when deciding one request's fate.

    Attributes
    ----------
    pending:
        Requests admitted but still waiting for an execution slot.
    max_pending:
        Capacity of the pending queue.
    inflight:
        Requests currently holding an execution slot.
    max_inflight:
        Number of execution slots.
    deadline:
        The request's per-component deadline (seconds).
    waited:
        Seconds this request has already spent waiting — queueing delay
        inherited from the arrival process at arrival time, plus the
        pending-queue wait by dispatch time.
    request_class / priority:
        The request envelope's class and priority when admission was
        given one (``acquire(request=...)``); ``None`` for untyped
        legacy callers — class-aware policies then assume the envelope
        default class.
    """

    pending: int
    max_pending: int
    inflight: int
    max_inflight: int
    deadline: float
    waited: float
    request_class: RequestClass | None = None
    priority: int | None = None


@dataclass
class AdmissionStats:
    """Counter snapshot of one controller (cumulative since reset)."""

    offered: int = 0
    admitted: int = 0
    shed: int = 0
    shed_reasons: dict = field(default_factory=dict)
    queue_depth_max: int = 0
    inflight_max: int = 0


class ShedPolicy(abc.ABC):
    """One pluggable shed decision.

    Either hook returns a short reason string to shed the request, or
    ``None`` to let it through.  ``on_arrival`` runs before the request
    may enter the pending queue; ``on_dispatch`` runs after its queue
    wait, just before it would occupy an execution slot.
    """

    name: str = "abstract"

    def on_arrival(self, snapshot: AdmissionSnapshot) -> str | None:
        return None

    def on_dispatch(self, snapshot: AdmissionSnapshot) -> str | None:
        return None


class RejectOnFull(ShedPolicy):
    """Shed arrivals that would wait behind a full pending queue.

    An arrival is only rejected when it would actually have to queue:
    the pending queue is at capacity *and* every execution slot is
    taken.  ``max_pending=0`` therefore means "no queueing, concurrency
    limit only", not "shed everything".
    """

    name = "reject_on_full"

    def on_arrival(self, snapshot: AdmissionSnapshot) -> str | None:
        if snapshot.pending >= snapshot.max_pending and \
                snapshot.inflight >= snapshot.max_inflight:
            return "queue_full"
        return None


class DeadlineAwareDrop(ShedPolicy):
    """Shed requests that already spent too much of their deadline waiting.

    Parameters
    ----------
    max_wait_fraction:
        A request whose accumulated wait reaches this fraction of its
        deadline is shed (``1.0``: shed once the deadline is provably
        blown; smaller: leave headroom for actual processing).
    """

    name = "deadline_aware"

    def __init__(self, max_wait_fraction: float = 1.0):
        if max_wait_fraction <= 0:
            raise ValueError("max_wait_fraction must be positive")
        self.max_wait_fraction = float(max_wait_fraction)

    def _verdict(self, snapshot: AdmissionSnapshot) -> str | None:
        if snapshot.waited >= self.max_wait_fraction * snapshot.deadline:
            return "deadline_expired"
        return None

    on_arrival = _verdict
    on_dispatch = _verdict


class PriorityShedPolicy(ShedPolicy):
    """Class-aware shedding: best-effort first, accuracy-critical last.

    The first consumer of the typed request envelope: instead of FIFO
    rejection, overload is absorbed by request *class*.  Each class gets
    a pending-queue occupancy threshold beyond which its arrivals are
    shed (only once every execution slot is busy — while slots are free,
    nothing queues and nothing is shed):

    - ``BEST_EFFORT`` sheds once the queue is half full (default 0.5);
    - ``LATENCY_CRITICAL`` at 0.9;
    - ``ACCURACY_CRITICAL`` only when the queue is actually full (1.0 —
      exactly :class:`RejectOnFull`'s behaviour).

    Thresholds are validated monotone in shed order
    (:attr:`~repro.serving.envelope.RequestClass.shed_rank`), so the
    structural invariant holds at every instant: *whenever an
    accuracy-critical request is shed, a latency-critical or best-effort
    request arriving at that moment would have been shed too* — the
    class the paper protects is always the last one standing.

    Parameters
    ----------
    thresholds:
        Optional ``{RequestClass: occupancy}`` overrides (merged over
        the defaults); each in ``(0, 1]`` and non-decreasing along
        ``BEST_EFFORT <= LATENCY_CRITICAL <= ACCURACY_CRITICAL``.
    default_class:
        Class assumed for untyped requests (legacy ``acquire(deadline)``
        callers); defaults to ``LATENCY_CRITICAL``, matching the
        envelope default.
    """

    name = "priority"

    DEFAULT_THRESHOLDS = {
        RequestClass.BEST_EFFORT: 0.5,
        RequestClass.LATENCY_CRITICAL: 0.9,
        RequestClass.ACCURACY_CRITICAL: 1.0,
    }

    def __init__(self, thresholds: dict | None = None,
                 default_class: RequestClass = RequestClass.LATENCY_CRITICAL):
        merged = dict(self.DEFAULT_THRESHOLDS)
        for cls, value in (thresholds or {}).items():
            merged[RequestClass.coerce(cls)] = float(value)
        for cls, value in merged.items():
            if not (0.0 < value <= 1.0):
                raise ValueError(
                    f"threshold for {cls.value} must be in (0, 1], "
                    f"got {value}")
        by_rank = sorted(merged, key=lambda c: c.shed_rank)
        for earlier, later in zip(by_rank, by_rank[1:]):
            if merged[earlier] > merged[later]:
                raise ValueError(
                    f"thresholds must be non-decreasing in shed order: "
                    f"{earlier.value} ({merged[earlier]}) must shed no "
                    f"later than {later.value} ({merged[later]})")
        self.thresholds = merged
        self.default_class = RequestClass.coerce(default_class)

    def _occupancy(self, snapshot: AdmissionSnapshot) -> float:
        if snapshot.max_pending <= 0:
            return 1.0
        return snapshot.pending / snapshot.max_pending

    def on_arrival(self, snapshot: AdmissionSnapshot) -> str | None:
        if snapshot.inflight < snapshot.max_inflight:
            return None  # a free slot: this request will not queue
        cls = snapshot.request_class or self.default_class
        if self._occupancy(snapshot) >= self.thresholds[cls]:
            return f"class_{cls.value}"
        return None


class QueueDelayShed(ShedPolicy):
    """CoDel-style shedding on *standing* queue delay (at dispatch).

    Bounded queues shed on *length*; CoDel (Nichols & Jacobson, 2012)
    sheds on sustained *sojourn time*, which is what clients actually
    feel.  This is the serving-side variant: each dispatched request's
    accumulated wait is the sojourn sample.  While every sample within
    an ``interval`` stays above ``target``, the policy enters a dropping
    state and sheds at the classic increasing cadence (the k-th
    consecutive drop after ``interval / sqrt(k)``); one sample back
    under the target exits the state and resets the cadence.  A
    deliberately simplified CoDel — no re-entry memory of the previous
    drop rate — because the pending queue here is a counter, not a
    packet queue.

    Parameters
    ----------
    target:
        Acceptable standing queue delay in seconds (CoDel's 5 ms scaled
        up to service-level waits: default 50 ms).
    interval:
        How long delay must stay above target before dropping starts
        (default 500 ms), and the base of the drop cadence.
    exempt:
        Request classes never shed by this policy; defaults to
        ``ACCURACY_CRITICAL`` so it composes with
        :class:`PriorityShedPolicy` out of the box.
    time_fn:
        Clock used for interval tracking (injectable for tests).
    """

    name = "queue_delay"

    def __init__(self, target: float = 0.050, interval: float = 0.500,
                 exempt=(RequestClass.ACCURACY_CRITICAL,),
                 time_fn=monotonic):
        if target <= 0:
            raise ValueError("target must be positive")
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.target = float(target)
        self.interval = float(interval)
        self.exempt = frozenset(RequestClass.coerce(c) for c in exempt)
        self._time = time_fn
        self._first_above: float | None = None
        self._dropping = False
        self._drop_next = 0.0
        self._drop_count = 0

    def on_dispatch(self, snapshot: AdmissionSnapshot) -> str | None:
        now = self._time()
        if snapshot.waited < self.target:
            # One good sojourn sample ends the overload episode.
            self._first_above = None
            self._dropping = False
            self._drop_count = 0
            return None
        if snapshot.request_class in self.exempt:
            return None
        if self._first_above is None:
            self._first_above = now + self.interval
        if not self._dropping:
            if now < self._first_above:
                return None  # above target, but not *standing* yet
            self._dropping = True
            self._drop_count = 0
        if self._drop_count == 0 or now >= self._drop_next:
            self._drop_count += 1
            self._drop_next = now + self.interval / math.sqrt(
                self._drop_count)
            return "queue_delay"
        return None


class AdmissionController:
    """Bounded pending queue + concurrency limiter + shed policies.

    Usage (from coroutines on one event loop)::

        reason = await controller.acquire(deadline=0.1, waited=lateness)
        if reason is not None:
            ...count the shed request; no slot is held...
        else:
            try:
                ...serve...
            finally:
                controller.release()

    Parameters
    ----------
    max_pending:
        Capacity of the pending queue (admitted requests waiting for a
        slot).
    max_inflight:
        Execution slots — requests concurrently past admission.
    policies:
        Shed policies consulted in order; the first reason wins.
        Defaults to ``[RejectOnFull()]``.

    Dequeue order
    -------------
    Queued requests do not leave in arrival order: when a slot frees,
    it is granted to the waiter with the lowest
    :attr:`~repro.serving.envelope.ServingRequest.priority` number
    (``ACCURACY_CRITICAL`` 0 < ``LATENCY_CRITICAL`` 1 <
    ``BEST_EFFORT`` 2, unless the envelope overrides it), FIFO within
    equal priorities.  Untyped ``acquire(deadline)`` callers queue at
    the envelope default class's priority.  This is the counterpart of
    :class:`PriorityShedPolicy`: shedding decides *whether* a request
    gets in, dequeue order decides *who goes first* among those that
    did.
    """

    def __init__(self, max_pending: int = 1024, max_inflight: int = 256,
                 policies: list[ShedPolicy] | None = None):
        if max_pending < 0:
            raise ValueError("max_pending must be non-negative")
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.max_pending = int(max_pending)
        self.max_inflight = int(max_inflight)
        self.policies = (list(policies) if policies is not None
                         else [RejectOnFull()])
        self._free = self.max_inflight
        # (priority, arrival seq, future): a heap, so the lowest
        # priority number leaves first and ties break FIFO by seq.
        self._waiters: list[tuple[int, int, asyncio.Future]] = []
        self._seq = itertools.count()
        self._loop: asyncio.AbstractEventLoop | None = None
        # All counters and occupancy gauges live in the unified metrics
        # registry; :meth:`stats` renders the legacy
        # :class:`AdmissionStats` shape from the same values, so both
        # views agree bit-for-bit.  Gauges track their own high-water
        # marks, replacing the hand-rolled ``*_max`` bookkeeping.
        self.metrics = MetricsRegistry()
        self._offered = self.metrics.counter("offered")
        self._admitted = self.metrics.counter("admitted")
        self._shed_total = self.metrics.counter("shed")
        self._pending_g = self.metrics.gauge("queue_depth")
        self._inflight_g = self.metrics.gauge("inflight")

    # ------------------------------------------------------------------

    def _snapshot(self, deadline: float, waited: float,
                  request: ServingRequest | None) -> AdmissionSnapshot:
        return AdmissionSnapshot(
            pending=self._pending_g.value, max_pending=self.max_pending,
            inflight=self._inflight_g.value, max_inflight=self.max_inflight,
            deadline=float(deadline), waited=float(waited),
            request_class=(request.request_class if request is not None
                           else None),
            priority=request.priority if request is not None else None)

    def _shed(self, reason: str) -> str:
        self._shed_total.inc()
        self.metrics.counter("shed", reason=reason).inc()
        return reason

    async def acquire(self, deadline: float | None = None,
                      waited: float = 0.0,
                      request: ServingRequest | None = None) -> str | None:
        """Admit or shed one request.

        Returns ``None`` when the request was admitted and now holds an
        execution slot (the caller must :meth:`release`), or the shed
        reason string when it was dropped (no slot held).  ``waited`` is
        queueing delay the request accumulated before reaching admission
        (open-loop lateness), counted against deadline-aware policies.

        ``request`` (a typed :class:`~repro.serving.envelope.
        ServingRequest`) lets class-aware policies see the request's
        class and priority; its deadline also fills in when ``deadline``
        is not given.  The positional ``acquire(deadline, waited)`` form
        keeps working for untyped callers.
        """
        if deadline is None:
            if request is None or request.deadline is None:
                raise ValueError(
                    "acquire() needs a deadline: pass deadline= or a "
                    "request envelope with its deadline resolved")
            deadline = request.deadline
        loop = asyncio.get_running_loop()
        if self._loop is not loop:
            # A fresh loop (e.g. each ``asyncio.run`` of a harness run):
            # waiter futures bind to the loop that created them, so the
            # wait state must be rebuilt — which is only sound while no
            # slots or queue places are held on the old loop.
            if self._pending_g.value or self._inflight_g.value:
                raise RuntimeError(
                    "AdmissionController is in use on another event loop")
            self._free = self.max_inflight
            self._waiters = []
            self._loop = loop
        self._offered.inc()
        ctx = trace_context_of(request) if request is not None else None
        with get_tracer().span("admission.queue", ctx,
                               pending=self._pending_g.value,
                               inflight=self._inflight_g.value) as sp:
            snapshot = self._snapshot(deadline, waited, request)
            for policy in self.policies:
                reason = policy.on_arrival(snapshot)
                if reason is not None:
                    sp.tag(outcome=f"shed:{reason}")
                    return self._shed(reason)
            priority = (request.priority if request is not None
                        else RequestClass.LATENCY_CRITICAL.default_priority)
            t_enqueue = loop.time()
            self._pending_g.inc()
            try:
                if self._free > 0 and not self._waiters:
                    self._free -= 1
                else:
                    future = loop.create_future()
                    heapq.heappush(self._waiters,
                                   (int(priority), next(self._seq), future))
                    try:
                        await future
                    except asyncio.CancelledError:
                        # Granted concurrently with the cancellation: the
                        # slot must not leak — hand it to the next waiter.
                        if future.done() and not future.cancelled():
                            self._release_slot()
                        raise
            finally:
                self._pending_g.dec()
            # Dispatch-time check: the queue wait itself may have eaten
            # the deadline; shedding now still saves the execution slot.
            queue_wait = loop.time() - t_enqueue
            sp.tag(queue_wait=queue_wait)
            snapshot = self._snapshot(deadline, waited + queue_wait,
                                      request)
            for policy in self.policies:
                reason = policy.on_dispatch(snapshot)
                if reason is not None:
                    self._release_slot()
                    sp.tag(outcome=f"shed:{reason}")
                    return self._shed(reason)
            self._inflight_g.inc()
            self._admitted.inc()
            sp.tag(outcome="admitted")
        return None

    def _release_slot(self) -> None:
        """Hand a freed slot to the most urgent live waiter, else bank it."""
        while self._waiters:
            _, _, future = heapq.heappop(self._waiters)
            if not future.done():
                future.set_result(True)
                return
        self._free += 1

    def release(self) -> None:
        """Return one execution slot (after a successful ``acquire``)."""
        if self._inflight_g.value < 1:
            raise RuntimeError("release() without a matching acquire()")
        self._inflight_g.dec()
        self._release_slot()

    # ------------------------------------------------------------------

    @property
    def pending(self) -> int:
        return self._pending_g.value

    @property
    def inflight(self) -> int:
        return self._inflight_g.value

    def stats(self) -> AdmissionStats:
        """Cumulative counters, rendered from the metrics registry."""
        reasons = {
            dict(labels)["reason"]: value
            for labels, value in self.metrics.counters_named("shed").items()
            if labels and value > 0
        }
        return AdmissionStats(
            offered=self._offered.value, admitted=self._admitted.value,
            shed=self._shed_total.value, shed_reasons=reasons,
            queue_depth_max=self._pending_g.max,
            inflight_max=self._inflight_g.max)

    def reset_stats(self) -> None:
        self.metrics.reset()

    def reset_watermarks(self) -> None:
        """Reset the high-water marks only (per-run reporting).

        Counters are cumulative and delta-friendly; the queue-depth and
        in-flight *maxima* are not, so a harness resets them at the
        start of each run to report run-local peaks.
        """
        self._pending_g.reset_max()
        self._inflight_g.reset_max()
