"""Admission control for the async serving tier: queue, limit, shed.

An event loop will happily accept millions of in-flight requests — which
is exactly how an overloaded service dies.  Real services in the paper's
setting bound what they accept: a request is either *admitted* (it may
wait in a bounded pending queue for one of a limited number of execution
slots) or *shed* immediately with a cheap rejection, so the work the
service does accept still meets its deadline.  This module provides that
layer for :class:`~repro.serving.aio.AsyncServingHarness`:

- :class:`AdmissionController` — a bounded pending queue plus an
  in-flight concurrency limiter (an :class:`asyncio.Semaphore`), with
  per-reason shed counters and high-water marks surfaced into
  :class:`~repro.serving.harness.ServingRunStats`;
- :class:`ShedPolicy` — pluggable shed decisions, consulted both when a
  request *arrives* (before it may queue) and when it is *dispatched*
  (after its queue wait, before it burns an execution slot):

  - :class:`RejectOnFull` — classic bounded-queue rejection: arrival
    with the pending queue at capacity is shed;
  - :class:`DeadlineAwareDrop` — early drop: a request that has already
    waited a configurable fraction of its deadline is shed — serving it
    would burn a slot on an answer the client counts as missed anyway.

Everything here is single-loop asyncio: counters need no locks because
they are only touched between awaits on one event loop.
"""

from __future__ import annotations

import abc
import asyncio
from dataclasses import dataclass, field

__all__ = [
    "AdmissionSnapshot",
    "AdmissionStats",
    "ShedPolicy",
    "RejectOnFull",
    "DeadlineAwareDrop",
    "AdmissionController",
]


@dataclass(frozen=True)
class AdmissionSnapshot:
    """What a shed policy sees when deciding one request's fate.

    Attributes
    ----------
    pending:
        Requests admitted but still waiting for an execution slot.
    max_pending:
        Capacity of the pending queue.
    inflight:
        Requests currently holding an execution slot.
    max_inflight:
        Number of execution slots.
    deadline:
        The request's per-component deadline (seconds).
    waited:
        Seconds this request has already spent waiting — queueing delay
        inherited from the arrival process at arrival time, plus the
        pending-queue wait by dispatch time.
    """

    pending: int
    max_pending: int
    inflight: int
    max_inflight: int
    deadline: float
    waited: float


@dataclass
class AdmissionStats:
    """Counter snapshot of one controller (cumulative since reset)."""

    offered: int = 0
    admitted: int = 0
    shed: int = 0
    shed_reasons: dict = field(default_factory=dict)
    queue_depth_max: int = 0
    inflight_max: int = 0


class ShedPolicy(abc.ABC):
    """One pluggable shed decision.

    Either hook returns a short reason string to shed the request, or
    ``None`` to let it through.  ``on_arrival`` runs before the request
    may enter the pending queue; ``on_dispatch`` runs after its queue
    wait, just before it would occupy an execution slot.
    """

    name: str = "abstract"

    def on_arrival(self, snapshot: AdmissionSnapshot) -> str | None:
        return None

    def on_dispatch(self, snapshot: AdmissionSnapshot) -> str | None:
        return None


class RejectOnFull(ShedPolicy):
    """Shed arrivals that would wait behind a full pending queue.

    An arrival is only rejected when it would actually have to queue:
    the pending queue is at capacity *and* every execution slot is
    taken.  ``max_pending=0`` therefore means "no queueing, concurrency
    limit only", not "shed everything".
    """

    name = "reject_on_full"

    def on_arrival(self, snapshot: AdmissionSnapshot) -> str | None:
        if snapshot.pending >= snapshot.max_pending and \
                snapshot.inflight >= snapshot.max_inflight:
            return "queue_full"
        return None


class DeadlineAwareDrop(ShedPolicy):
    """Shed requests that already spent too much of their deadline waiting.

    Parameters
    ----------
    max_wait_fraction:
        A request whose accumulated wait reaches this fraction of its
        deadline is shed (``1.0``: shed once the deadline is provably
        blown; smaller: leave headroom for actual processing).
    """

    name = "deadline_aware"

    def __init__(self, max_wait_fraction: float = 1.0):
        if max_wait_fraction <= 0:
            raise ValueError("max_wait_fraction must be positive")
        self.max_wait_fraction = float(max_wait_fraction)

    def _verdict(self, snapshot: AdmissionSnapshot) -> str | None:
        if snapshot.waited >= self.max_wait_fraction * snapshot.deadline:
            return "deadline_expired"
        return None

    on_arrival = _verdict
    on_dispatch = _verdict


class AdmissionController:
    """Bounded pending queue + concurrency limiter + shed policies.

    Usage (from coroutines on one event loop)::

        reason = await controller.acquire(deadline=0.1, waited=lateness)
        if reason is not None:
            ...count the shed request; no slot is held...
        else:
            try:
                ...serve...
            finally:
                controller.release()

    Parameters
    ----------
    max_pending:
        Capacity of the pending queue (admitted requests waiting for a
        slot).
    max_inflight:
        Execution slots — requests concurrently past admission.
    policies:
        Shed policies consulted in order; the first reason wins.
        Defaults to ``[RejectOnFull()]``.
    """

    def __init__(self, max_pending: int = 1024, max_inflight: int = 256,
                 policies: list[ShedPolicy] | None = None):
        if max_pending < 0:
            raise ValueError("max_pending must be non-negative")
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.max_pending = int(max_pending)
        self.max_inflight = int(max_inflight)
        self.policies = (list(policies) if policies is not None
                         else [RejectOnFull()])
        self._pending = 0
        self._inflight = 0
        self._sem: asyncio.Semaphore | None = None
        self._sem_loop: asyncio.AbstractEventLoop | None = None
        self._stats = AdmissionStats()

    # ------------------------------------------------------------------

    def _snapshot(self, deadline: float, waited: float) -> AdmissionSnapshot:
        return AdmissionSnapshot(
            pending=self._pending, max_pending=self.max_pending,
            inflight=self._inflight, max_inflight=self.max_inflight,
            deadline=float(deadline), waited=float(waited))

    def _shed(self, reason: str) -> str:
        self._stats.shed += 1
        self._stats.shed_reasons[reason] = \
            self._stats.shed_reasons.get(reason, 0) + 1
        return reason

    async def acquire(self, deadline: float, waited: float = 0.0,
                      ) -> str | None:
        """Admit or shed one request.

        Returns ``None`` when the request was admitted and now holds an
        execution slot (the caller must :meth:`release`), or the shed
        reason string when it was dropped (no slot held).  ``waited`` is
        queueing delay the request accumulated before reaching admission
        (open-loop lateness), counted against deadline-aware policies.
        """
        loop = asyncio.get_running_loop()
        if self._sem is None or self._sem_loop is not loop:
            # A fresh loop (e.g. each ``asyncio.run`` of a harness run):
            # an asyncio.Semaphore binds to the loop it first waits on,
            # so it must be rebuilt — which is only sound while no slots
            # or queue places are held on the old loop.
            if self._pending or self._inflight:
                raise RuntimeError(
                    "AdmissionController is in use on another event loop")
            self._sem = asyncio.Semaphore(self.max_inflight)
            self._sem_loop = loop
        self._stats.offered += 1
        snapshot = self._snapshot(deadline, waited)
        for policy in self.policies:
            reason = policy.on_arrival(snapshot)
            if reason is not None:
                return self._shed(reason)
        t_enqueue = loop.time()
        self._pending += 1
        self._stats.queue_depth_max = max(self._stats.queue_depth_max,
                                          self._pending)
        try:
            await self._sem.acquire()
        finally:
            self._pending -= 1
        # Dispatch-time check: the queue wait itself may have eaten the
        # deadline; shedding now still saves the execution slot.
        snapshot = self._snapshot(deadline,
                                  waited + (loop.time() - t_enqueue))
        for policy in self.policies:
            reason = policy.on_dispatch(snapshot)
            if reason is not None:
                self._sem.release()
                return self._shed(reason)
        self._inflight += 1
        self._stats.admitted += 1
        self._stats.inflight_max = max(self._stats.inflight_max,
                                       self._inflight)
        return None

    def release(self) -> None:
        """Return one execution slot (after a successful ``acquire``)."""
        if self._inflight < 1:
            raise RuntimeError("release() without a matching acquire()")
        self._inflight -= 1
        assert self._sem is not None
        self._sem.release()

    # ------------------------------------------------------------------

    @property
    def pending(self) -> int:
        return self._pending

    @property
    def inflight(self) -> int:
        return self._inflight

    def stats(self) -> AdmissionStats:
        """Cumulative counters (live object view; copy if you mutate)."""
        return self._stats

    def reset_stats(self) -> None:
        self._stats = AdmissionStats()

    def reset_watermarks(self) -> None:
        """Reset the high-water marks only (per-run reporting).

        Counters are cumulative and delta-friendly; the queue-depth and
        in-flight *maxima* are not, so a harness resets them at the
        start of each run to report run-local peaks.
        """
        self._stats.queue_depth_max = self._pending
        self._stats.inflight_max = self._inflight
