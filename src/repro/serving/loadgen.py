"""Closed- and open-loop request load generation.

An open-loop generator draws arrival *times* from the processes in
:mod:`repro.workloads.arrival` (users submit independently of service
state — the assumption behind all the paper's latency experiments) and
pairs each with a request drawn from a ``request_factory``.  A
closed-loop generator instead models a fixed population of clients that
each wait for their previous answer (plus think time) before submitting
again; arrival times are then *determined by the service*, so the
generator only supplies the request sequence and think times, and the
:class:`~repro.serving.harness.ServingHarness` materialises the timing.

Everything is seeded through :func:`repro.util.rng.make_rng`, so a given
``(seed, parameters)`` pair always produces the identical load — the
property the serving tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.util.rng import make_rng
from repro.workloads.arrival import bursty_arrivals, poisson_arrivals

__all__ = ["OpenLoopLoad", "ClosedLoopLoad", "LoadGenerator"]


@dataclass
class OpenLoopLoad:
    """A fully materialised open-loop request stream.

    ``arrivals[i]`` is the submission time (seconds from stream start) of
    ``requests[i]``; arrivals are sorted ascending.
    """

    arrivals: np.ndarray
    requests: list = field(repr=False)

    def __post_init__(self) -> None:
        self.arrivals = np.asarray(self.arrivals, dtype=float)
        if self.arrivals.ndim != 1:
            raise ValueError("arrivals must be 1-D")
        if self.arrivals.size != len(self.requests):
            raise ValueError("arrivals/requests length mismatch")
        if self.arrivals.size > 1 and np.any(np.diff(self.arrivals) < 0):
            raise ValueError("arrivals must be sorted")

    @property
    def n_requests(self) -> int:
        return len(self.requests)

    @property
    def duration(self) -> float:
        return float(self.arrivals[-1]) if self.arrivals.size else 0.0


@dataclass
class ClosedLoopLoad:
    """A closed-loop population: requests plus per-request think times.

    Requests are claimed in index order by whichever of the
    ``n_clients`` clients is free (no client affinity); after serving
    request ``i``, that client thinks for ``think_times[i]`` seconds
    before claiming its next request.
    """

    n_clients: int
    requests: list = field(repr=False)
    think_times: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        if self.n_clients < 1:
            raise ValueError("need at least one client")
        self.think_times = np.asarray(self.think_times, dtype=float)
        if self.think_times.shape != (len(self.requests),):
            raise ValueError("one think time per request required")
        if np.any(self.think_times < 0):
            raise ValueError("think times must be non-negative")

    @property
    def n_requests(self) -> int:
        return len(self.requests)


class LoadGenerator:
    """Deterministic request-stream generator.

    Parameters
    ----------
    request_factory:
        ``request_factory(i, rng)`` builds the i-th request; ``rng`` is a
        per-stream generator so factories can randomise request content
        reproducibly.
    seed:
        Root seed; every stream kind derives its own substream, so e.g.
        changing the Poisson draw does not perturb request content.
    """

    def __init__(self, request_factory: Callable[[int, np.random.Generator], Any],
                 seed: int = 0):
        self.request_factory = request_factory
        self.seed = int(seed)

    # ------------------------------------------------------------------

    def _requests(self, n: int, label: str) -> list:
        rng = make_rng(self.seed, "requests", label)
        return [self.request_factory(i, rng) for i in range(n)]

    def poisson(self, rate: float, duration: float) -> OpenLoopLoad:
        """Open-loop homogeneous Poisson stream at ``rate`` req/s."""
        rng = make_rng(self.seed, "arrivals", "poisson", rate, duration)
        arrivals = poisson_arrivals(rate, duration, rng)
        return OpenLoopLoad(arrivals=arrivals,
                            requests=self._requests(arrivals.size, "poisson"))

    def bursty(self, base_rate: float, burst_rate: float, period: float,
               duty: float, duration: float) -> OpenLoopLoad:
        """Open-loop on/off bursty stream (square-wave modulated Poisson)."""
        rng = make_rng(self.seed, "arrivals", "bursty", base_rate, burst_rate,
                       period, duty, duration)
        arrivals = bursty_arrivals(base_rate, burst_rate, period, duty,
                                   duration, rng)
        return OpenLoopLoad(arrivals=arrivals,
                            requests=self._requests(arrivals.size, "bursty"))

    def fixed(self, arrivals) -> OpenLoopLoad:
        """Open-loop stream replaying explicit ``arrivals`` times."""
        arrivals = np.asarray(arrivals, dtype=float)
        return OpenLoopLoad(arrivals=arrivals,
                            requests=self._requests(arrivals.size, "fixed"))

    def closed_loop(self, n_clients: int, n_requests: int,
                    think_time: float = 0.0,
                    think_jitter: float = 0.0) -> ClosedLoopLoad:
        """Closed-loop population of ``n_clients`` issuing ``n_requests``.

        Think times are ``think_time`` plus uniform jitter in
        ``[0, think_jitter)``.
        """
        if think_time < 0 or think_jitter < 0:
            raise ValueError("think times must be non-negative")
        rng = make_rng(self.seed, "think", n_clients, n_requests)
        think = np.full(n_requests, float(think_time))
        if think_jitter > 0:
            think = think + rng.random(n_requests) * think_jitter
        return ClosedLoopLoad(n_clients=n_clients,
                              requests=self._requests(n_requests, "closed"),
                              think_times=think)
