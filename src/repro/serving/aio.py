"""Async serving tier: one event loop holding thousands of requests.

The thread-pool tier (PR 1/2) costs one blocked OS thread per in-flight
request: ``ThreadPoolBackend`` tops out at ``max_concurrency`` threads,
far short of the ROADMAP's "heavy traffic from millions of users".  This
module rebuilds the serving path on an event loop:

- :func:`aprocess_component` — the async mirror of Algorithm 1
  (:func:`repro.core.processor.process_component`): identical control
  flow, deadline checks, and reports, but the per-operation storage /
  network stalls of an *async-native* adapter are awaited on the loop
  instead of slept in a thread.  Refinement is cancellable mid-await;
  a cancelled execution still finalizes the groups processed so far
  (``report.cancelled``) — a best-so-far answer, never a dropped one.
- :class:`AsyncStallAdapter` — the async-native twin of
  :class:`~repro.serving.adapters.IOStallAdapter`: same stalls, same
  results, but stalls are ``await asyncio.sleep`` for async execution
  (the sync entry points still block, so the same adapter instance runs
  on any backend — which is what the async benchmark compares).
- :class:`AsyncExecutionBackend` — an :class:`~repro.serving.backends.
  ExecutionBackend` over an event loop.  Async-native component work is
  awaited directly; plain CPU work is offloaded to a thread pool via
  ``run_in_executor``.  The sync ``run_tasks`` / ``submit_task``
  contract is served by a lazily-started dedicated loop thread, so the
  backend drops into every existing ``Servable`` unchanged; the async
  ``arun_tasks`` path runs on the caller's loop.  ``cancel_grace``
  wires per-task cancellation to the task's deadline budget.
- :class:`AsyncServingHarness` — drives an open-loop trace with one
  coroutine per request, optionally behind an
  :class:`~repro.serving.admission.AdmissionController`, and reports
  the same :class:`~repro.serving.harness.ServingRunStats` shape as the
  thread harness (plus shed / queue-depth / in-flight counters).

Where the thread tier's hedged routing can only ``Future.cancel`` a
*queued* losing copy, the async tier cancels a *running* one: the
loser's next ``await`` raises ``CancelledError`` and its stalls stop
occupying anything (see ``ShardedService.aprocess``).
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable, Sequence

import numpy as np

from repro.core.clock import ClockFactory, DeadlineClock, WallClock, \
    monotonic, wall_clock_factory
from repro.core.processor import ProcessingReport, effective_i_max
from repro.serving.adapters import IOStallAdapter
from repro.serving.admission import AdmissionController
from repro.serving.backends import ComponentOutcome, ComponentTask, \
    ExecutionBackend, _task_recorder, run_component_task, stamp_envelope
from repro.serving.envelope import aserve_via
from repro.serving.harness import ServingRunStats, apply_class_breakdown, \
    apply_hedge_delta, apply_payload_delta, collect_hedge_counters, \
    collect_payload_counters, payload_backend_of, resolve_envelopes
from repro.serving.loadgen import ClosedLoopLoad, OpenLoopLoad
from repro.serving.telemetry import attach_context, get_tracer, \
    trace_context_of

__all__ = [
    "is_async_adapter",
    "AsyncStallAdapter",
    "aprocess_component",
    "arun_component_task",
    "arun_tasks",
    "AsyncExecutionBackend",
    "AsyncServingHarness",
]


def is_async_adapter(adapter) -> bool:
    """Whether ``adapter`` exposes the async online hooks.

    An async-native adapter provides awaitable twins of the two online
    operations — ``ainitial_result`` and ``arefine`` — whose *results*
    must match the sync versions (only the waiting differs).
    """
    return hasattr(adapter, "ainitial_result") and hasattr(adapter, "arefine")


class AsyncStallAdapter(IOStallAdapter):
    """``IOStallAdapter`` whose stalls can be awaited on an event loop.

    The sync entry points (inherited) still ``time.sleep``, so one
    instance serves every backend: a thread backend blocks a worker per
    stall, the async backend parks a coroutine — identical answers,
    wildly different concurrency ceilings.
    """

    async def ainitial_result(self, synopsis, request):
        if self.synopsis_stall:
            await asyncio.sleep(self.synopsis_stall)
        return self.inner.initial_result(synopsis, request)

    async def arefine(self, partition, synopsis, group_id: int, request,
                      state):
        if self.group_stall:
            await asyncio.sleep(self.group_stall)
        return self.inner.refine(partition, synopsis, group_id, request,
                                 state)


# ---------------------------------------------------------------------------
# Async Algorithm 1
# ---------------------------------------------------------------------------


async def aprocess_component(adapter, partition, synopsis, request,
                             deadline: float,
                             clock: DeadlineClock | None = None,
                             i_max: int | None = None,
                             i_max_fraction: float | None = None,
                             start_time: float | None = None,
                             hard_deadline: float | None = None,
                             ) -> tuple[Any, ProcessingReport]:
    """Async mirror of :func:`repro.core.processor.process_component`.

    Control flow, deadline accounting, and the returned report are
    identical to the sync processor — with a simulated clock the two
    produce bit-identical results.  The adapter must be async-native
    (:func:`is_async_adapter`); its stalls are awaited on the loop.

    Cancellation semantics:

    - Stage 1 (synopsis) always completes — the component must produce
      *some* result (paper §2.3), so external cancellation is only
      delivered at refinement awaits.
    - ``hard_deadline`` (wall seconds from execution start) arms a
      watchdog that cancels refinement mid-await once the budget is
      spent; the execution then finalizes from the groups refined so
      far, with ``report.cancelled`` and ``report.hit_deadline`` set.
      This is what bounds a wall-clock deadline for real: the sync path
      can only *check* the clock between stalls, the async path
      interrupts the stall itself.
    - External cancellation (e.g. a hedged loser) propagates as normal
      ``CancelledError`` after the in-flight refinement is reaped.
    """
    if deadline < 0:
        raise ValueError("deadline must be non-negative")
    clock = clock if clock is not None else WallClock()
    t_submit = clock.now() if start_time is None else float(start_time)

    report = ProcessingReport(deadline=deadline)
    t_begin = clock.now()
    t_wall0 = monotonic()

    # Stage 1: initial result + correlations from the synopsis.
    syn_work = adapter.synopsis_work(synopsis)
    state, correlations = await adapter.ainitial_result(synopsis, request)
    clock.charge(syn_work)
    report.work_units += syn_work
    report.synopsis_elapsed = clock.now() - t_begin

    # Stage 2: rank groups by correlation, refine best-first.
    order = np.argsort(-np.asarray(correlations), kind="stable")
    report.groups_ranked = [int(g) for g in order]
    cap = effective_i_max(synopsis.n_aggregated, i_max, i_max_fraction)
    i = 0

    async def refine_loop() -> None:
        nonlocal state, i
        while True:
            if i >= len(report.groups_ranked):
                report.exhausted = True
                return
            if i >= cap:
                report.hit_imax = True
                return
            if clock.now() - t_submit >= deadline:
                report.hit_deadline = True
                return
            g = report.groups_ranked[i]
            work = adapter.group_work(synopsis, g)
            # ``state`` only advances once a refinement *completes*:
            # cancellation mid-await leaves the last consistent state.
            state = await adapter.arefine(partition, synopsis, g, request,
                                          state)
            clock.charge(work)
            report.work_units += work
            i += 1

    if hard_deadline is None:
        await refine_loop()
    else:
        inner = asyncio.ensure_future(refine_loop())
        remaining = hard_deadline - (monotonic() - t_wall0)
        try:
            done, _ = await asyncio.wait({inner},
                                         timeout=max(0.0, remaining))
        except asyncio.CancelledError:
            inner.cancel()
            await asyncio.gather(inner, return_exceptions=True)
            raise
        if not done:
            inner.cancel()
            await asyncio.gather(inner, return_exceptions=True)
            report.cancelled = True
            report.hit_deadline = True
        else:
            inner.result()  # propagate refinement exceptions

    report.groups_processed = i
    report.total_elapsed = clock.now() - t_begin
    result = adapter.finalize(state, request)
    return result, report


async def arun_component_task(task: ComponentTask,
                              hard_deadline: float | None = None,
                              ) -> ComponentOutcome:
    """Execute one :class:`ComponentTask` natively on the event loop.

    Epoch references resolve exactly as on the sync path: the task's
    pinned dispatch-time snapshot, never a newer or torn state.
    Sampled tasks record the same ``state.fetch`` / ``kernel`` spans as
    :func:`~repro.serving.backends.run_component_task`, piggybacked on
    the outcome.
    """
    rec = _task_recorder(task)
    if rec is None:
        partition, synopsis = task.resolve_state()
        result, report = await aprocess_component(
            task.adapter, partition, synopsis, task.request,
            task.deadline, clock=task.clock,
            i_max=task.i_max, i_max_fraction=task.i_max_fraction,
            start_time=task.start_time, hard_deadline=hard_deadline)
        spans = None
    else:
        with rec.span("state.fetch", component=task.component) as fetch:
            partition, synopsis = task.resolve_state()
            if task.state_ref is not None:
                fetch.tag(epoch=task.state_ref.epoch)
        with rec.span("kernel", component=task.component) as kernel:
            result, report = await aprocess_component(
                task.adapter, partition, synopsis, task.request,
                task.deadline, clock=task.clock,
                i_max=task.i_max, i_max_fraction=task.i_max_fraction,
                start_time=task.start_time, hard_deadline=hard_deadline)
            kernel.tag(groups_processed=report.groups_processed,
                       work_units=report.work_units)
        spans = tuple(rec.spans)
    if task.state_ref is not None:
        report.state_epoch = task.state_ref.epoch
    stamp_envelope(report, task)
    return ComponentOutcome(component=task.component, result=result,
                            report=report, spans=spans)


# ---------------------------------------------------------------------------
# The backend
# ---------------------------------------------------------------------------


class AsyncExecutionBackend(ExecutionBackend):
    """Event-loop execution backend.

    Async-native adapters run as coroutines on the loop (stalls awaited,
    never a blocked thread); plain adapters are offloaded to a bounded
    CPU thread pool via ``run_in_executor``.  Both entry styles of the
    :class:`ExecutionBackend` contract are served:

    - the **async** path (:meth:`arun_task` / :meth:`arun_tasks`) runs
      on the *caller's* loop — this is what ``Servable.aprocess`` and
      the :class:`AsyncServingHarness` use;
    - the **sync** path (:meth:`run_tasks` / :meth:`submit_task`)
      bridges onto a lazily-started dedicated loop thread, so the
      backend also drops into the thread harness, the sync router, and
      plain ``service.process`` calls unchanged.  The futures
      :meth:`submit_task` returns cancel the underlying coroutine —
      unlike a thread future, cancellation lands even after the task
      started running (at its next await).

    Parameters
    ----------
    max_workers:
        CPU-offload pool size for non-async-native tasks.
    cancel_grace:
        When set, arms per-task deadline cancellation for async-native
        tasks: a task is cancelled mid-await once ``deadline *
        cancel_grace`` wall seconds elapse, finalizing its best-so-far
        result (see :func:`aprocess_component`).  ``None`` (default)
        disables the watchdog — deadline checks then happen between
        awaits, exactly like the sync tier.
    """

    name = "async"

    def __init__(self, max_workers: int | None = None,
                 cancel_grace: float | None = None):
        if cancel_grace is not None and cancel_grace <= 0:
            raise ValueError("cancel_grace must be positive")
        self.max_workers = max_workers
        self.cancel_grace = cancel_grace
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._cpu_pool: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()
        self.tasks_cancelled = 0

    # -- async contract -------------------------------------------------

    async def arun_task(self, task: ComponentTask) -> ComponentOutcome:
        """Execute one task on the current loop."""
        ctx = trace_context_of(getattr(task, "envelope", None))
        t0 = monotonic() if ctx is not None and ctx.sampled else 0.0
        if is_async_adapter(task.adapter):
            hard = (None if self.cancel_grace is None
                    else task.deadline * self.cancel_grace)
            outcome = await arun_component_task(task, hard_deadline=hard)
            if outcome.report.cancelled:
                with self._lock:
                    self.tasks_cancelled += 1
            native = True
        else:
            loop = asyncio.get_running_loop()
            outcome = await loop.run_in_executor(self._ensure_cpu_pool(),
                                                 run_component_task, task)
            native = False
        if ctx is not None and ctx.sampled:
            get_tracer().record("async.dispatch", ctx, t0, monotonic(),
                                component=task.component,
                                async_native=native)
        return outcome

    async def arun_tasks(self, tasks: Sequence[ComponentTask],
                         ) -> list[ComponentOutcome]:
        """Execute ``tasks`` concurrently on the current loop, in order."""
        outcomes = list(await asyncio.gather(
            *(self.arun_task(t) for t in tasks)))
        get_tracer().ingest_outcomes(outcomes)
        return outcomes

    # -- sync contract (bridged through an owned loop thread) -----------

    def _ensure_loop(self) -> asyncio.AbstractEventLoop:
        with self._lock:
            if self._loop is None:
                self._loop = asyncio.new_event_loop()
                self._thread = threading.Thread(
                    target=self._loop.run_forever,
                    name="repro-aio-loop", daemon=True)
                self._thread.start()
            return self._loop

    def _ensure_cpu_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._cpu_pool is None:
                self._cpu_pool = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="repro-aio-cpu")
            return self._cpu_pool

    def run_tasks(self, tasks: Sequence[ComponentTask],
                  ) -> list[ComponentOutcome]:
        return asyncio.run_coroutine_threadsafe(
            self.arun_tasks(list(tasks)), self._ensure_loop()).result()

    def submit_task(self, task: ComponentTask) -> "Future[ComponentOutcome]":
        return asyncio.run_coroutine_threadsafe(self.arun_task(task),
                                                self._ensure_loop())

    def close(self) -> None:
        with self._lock:
            loop, thread = self._loop, self._thread
            pool = self._cpu_pool
            self._loop = self._thread = self._cpu_pool = None
        if loop is not None:
            loop.call_soon_threadsafe(loop.stop)
            if thread is not None:
                thread.join()
            loop.close()
        if pool is not None:
            pool.shutdown(wait=True)


async def arun_tasks(backend, tasks: Sequence[ComponentTask],
                     ) -> list[ComponentOutcome]:
    """Await ``tasks`` on any :class:`ExecutionBackend`.

    The bridge every ``aprocess`` implementation uses: an
    :class:`AsyncExecutionBackend` runs the tasks natively on the
    caller's loop; any other backend executes its blocking ``run_tasks``
    in an executor so the loop never stalls (at the cost of exactly the
    blocked thread the async tier exists to avoid).
    """
    if isinstance(backend, AsyncExecutionBackend):
        return await backend.arun_tasks(tasks)
    loop = asyncio.get_running_loop()
    outcomes = await loop.run_in_executor(None, backend.run_tasks,
                                          list(tasks))
    get_tracer().ingest_outcomes(outcomes)
    return outcomes


# ---------------------------------------------------------------------------
# The harness
# ---------------------------------------------------------------------------


class AsyncServingHarness:
    """Serve request streams as coroutines — one per in-flight request.

    Mirrors :class:`~repro.serving.harness.ServingHarness` for the async
    path: the same open- and closed-loop loads, the same deadline /
    clock-factory knobs, the same :class:`ServingRunStats` out — but
    in-flight requests are coroutines, so thousands ride one loop where
    the thread harness is capped at ``max_concurrency`` workers (open
    loop) or at one OS thread per client (closed loop).  An optional
    :class:`~repro.serving.admission.AdmissionController` bounds what
    the loop accepts; shed requests get ``None`` answers, and the shed /
    queue-depth / in-flight counters land in the stats.

    Parameters
    ----------
    service:
        Any :class:`~repro.core.servable.Servable` (its ``aprocess`` is
        driven).
    deadline, backend, clock_factory, time_scale:
        As in :class:`~repro.serving.harness.ServingHarness`.
    admission:
        Optional admission controller; without one the loop accepts the
        entire trace concurrently.
    batch_window, batch_max:
        As in :class:`~repro.serving.harness.ServingHarness`: a non-None
        ``batch_window`` wraps the backend in a
        :class:`~repro.serving.backends.BatchingBackend` so concurrent
        requests' same-``(component, epoch)`` tasks coalesce into one
        batched submission.
    """

    def __init__(self, service, deadline: float,
                 backend: ExecutionBackend | None = None,
                 clock_factory: ClockFactory | None = None,
                 admission: AdmissionController | None = None,
                 time_scale: float = 1.0,
                 batch_window: float | None = None,
                 batch_max: int = 32):
        from repro.serving.backends import BatchingBackend, resolve_backend

        if deadline < 0:
            raise ValueError("deadline must be non-negative")
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        self.service = service
        self.deadline = float(deadline)
        self._owns_backend = not isinstance(backend, ExecutionBackend)
        self.backend = (resolve_backend(backend)
                        if backend is not None else None)
        if batch_window is not None:
            inner = (self.backend if self.backend is not None
                     else resolve_backend(None))
            self.backend = BatchingBackend(inner, window=batch_window,
                                           max_batch=batch_max,
                                           close_inner=self._owns_backend)
            self._owns_backend = True
        self.clock_factory = (clock_factory if clock_factory is not None
                              else wall_clock_factory())
        self.admission = admission
        self.time_scale = float(time_scale)

    # ------------------------------------------------------------------

    def close(self) -> None:
        if self.backend is not None and self._owns_backend:
            self.backend.close()

    def __enter__(self) -> "AsyncServingHarness":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _clocks(self) -> list:
        n = self.service.n_components
        return [self.clock_factory(c) for c in range(n)]

    def _payload_backend(self):
        return payload_backend_of(self.backend, self.service)

    # ------------------------------------------------------------------

    def run_open_loop(self, load: OpenLoopLoad,
                      updates: Sequence[tuple[float, Callable]] | None = None,
                      ) -> ServingRunStats:
        """Sync entry point: runs :meth:`arun_open_loop` on a fresh loop."""
        return asyncio.run(self.arun_open_loop(load, updates))

    async def arun_open_loop(
            self, load: OpenLoopLoad,
            updates: Sequence[tuple[float, Callable]] | None = None,
    ) -> ServingRunStats:
        """Serve an open-loop stream; one self-pacing coroutine per request.

        ``updates`` follows the thread harness's schedule contract:
        each ``(at_seconds, fn)`` runs ``fn(service)`` once ``at``
        seconds of (scaled) stream time elapse — in an executor, since
        synopsis rebuilds block — with results (or exceptions) recorded
        in ``update_log``.
        """
        loop = asyncio.get_running_loop()
        n = load.n_requests
        envelopes = resolve_envelopes(load.requests, self.deadline)
        answers: list[Any] = [None] * n
        reports: list[Any] = [None] * n
        latencies = np.full(n, np.nan)
        queue_delays = np.full(n, np.nan)
        served = np.zeros(n, dtype=bool)
        update_log: list[tuple[float, Any]] = []
        inflight = 0
        inflight_max = 0
        hedge0 = collect_hedge_counters(self.service)
        payload0 = collect_payload_counters(self._payload_backend())
        adm = self.admission
        if adm is not None:
            adm.reset_watermarks()  # report run-local peaks, not lifetime
            shed0 = (adm.stats().shed, dict(adm.stats().shed_reasons))
        t0 = loop.time()

        async def apply_updates() -> None:
            for at, fn in sorted(updates or [], key=lambda p: p[0]):
                delay = t0 + at * self.time_scale - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
                try:
                    update_log.append(
                        (at, await loop.run_in_executor(None, fn,
                                                        self.service)))
                except Exception as exc:  # noqa: BLE001 - recorded
                    update_log.append((at, exc))

        async def serve(i: int) -> None:
            nonlocal inflight, inflight_max
            tracer = get_tracer()
            envelope = tracer.trace(envelopes[i])
            ctx = trace_context_of(envelope)
            scheduled = t0 + float(load.arrivals[i]) * self.time_scale
            delay = scheduled - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            # The "request" span is the trace root's first child and
            # covers admission queueing and the service call alike.
            with tracer.span("request", ctx,
                             request_class=envelope.request_class.value,
                             ) as sp:
                env = (envelope if sp.ctx is ctx
                       else attach_context(envelope, sp.ctx))
                if adm is not None:
                    waited = max(0.0, loop.time() - scheduled)
                    reason = await adm.acquire(waited=waited, request=env)
                    if reason is not None:
                        sp.tag(outcome=f"shed:{reason}")
                        return  # shed: no slot held, answer stays None
                inflight += 1
                inflight_max = max(inflight_max, inflight)
                t_dispatch = loop.time()
                try:
                    resp = await aserve_via(self.service, env,
                                            clocks=self._clocks(),
                                            backend=self.backend)
                finally:
                    inflight -= 1
                    if adm is not None:
                        adm.release()
            resp.queue_delay = max(0.0, t_dispatch - scheduled)
            answers[i] = resp.answer
            reports[i] = resp.reports
            latencies[i] = loop.time() - scheduled
            queue_delays[i] = resp.queue_delay
            served[i] = True

        updater = (asyncio.ensure_future(apply_updates())
                   if updates else None)
        try:
            await asyncio.gather(*(serve(i) for i in range(n)))
        finally:
            if updater is not None:
                updater.cancel()
                await asyncio.gather(updater, return_exceptions=True)

        duration = loop.time() - t0
        subs = np.array([rep.total_elapsed
                         for i in range(n) if served[i]
                         for rep in reports[i]], dtype=float)
        # answers/reports keep one aligned slot per *offered* request
        # (None where shed), like the thread harness; request_latencies
        # is compacted to served requests so percentiles stay finite.
        stats = ServingRunStats(
            sub_latencies=subs,
            request_latencies=latencies[served],
            n_requests=int(served.sum()),
            n_components=self.service.n_components,
            duration=float(duration),
            answers=list(answers),
            reports=list(reports),
            update_log=list(update_log),
            offered=n,
            inflight_max=inflight_max,
            queue_delays=queue_delays[served],
        )
        if adm is not None:
            a = adm.stats()
            stats.shed = a.shed - shed0[0]
            stats.shed_reasons = {
                k: v - shed0[1].get(k, 0)
                for k, v in a.shed_reasons.items()
                if v - shed0[1].get(k, 0) > 0}
            stats.queue_depth_max = a.queue_depth_max
        apply_class_breakdown(stats, envelopes, latencies, served)
        apply_payload_delta(stats, self._payload_backend(), payload0)
        return apply_hedge_delta(stats, self.service, hedge0)

    # ------------------------------------------------------------------

    def run_closed_loop(self, load: ClosedLoopLoad) -> ServingRunStats:
        """Sync entry point: runs :meth:`arun_closed_loop` on a fresh loop."""
        return asyncio.run(self.arun_closed_loop(load))

    async def arun_closed_loop(self, load: ClosedLoopLoad) -> ServingRunStats:
        """Serve a closed-loop population of ``load.n_clients`` coroutines.

        The async mirror of :meth:`~repro.serving.harness.ServingHarness.
        run_closed_loop`: each client coroutine repeatedly claims the
        next request in index order, awaits its answer, records
        issue-to-completion latency, then thinks (``asyncio.sleep``) —
        but a client in think or await costs a parked coroutine, not a
        blocked thread, so populations of thousands ride one loop.
        Admission control does not apply: a closed loop is
        self-limiting at ``n_clients`` in-flight requests by
        construction.
        """
        loop = asyncio.get_running_loop()
        n = load.n_requests
        envelopes = resolve_envelopes(load.requests, self.deadline)
        answers: list[Any] = [None] * n
        reports: list[Any] = [None] * n
        latencies = np.zeros(n, dtype=float)
        queue_delays = np.zeros(n, dtype=float)
        next_index = 0
        inflight = 0
        inflight_max = 0
        hedge0 = collect_hedge_counters(self.service)
        payload0 = collect_payload_counters(self._payload_backend())
        t0 = loop.time()

        async def client() -> None:
            nonlocal next_index, inflight, inflight_max
            tracer = get_tracer()
            while True:
                # Single-threaded loop: claim + counters need no lock
                # (no await between read and write).
                i = next_index
                if i >= n:
                    return
                next_index += 1
                inflight += 1
                inflight_max = max(inflight_max, inflight)
                issued = loop.time()
                envelope = tracer.trace(envelopes[i])
                ctx = trace_context_of(envelope)
                try:
                    with tracer.span(
                            "request", ctx,
                            request_class=envelope.request_class.value,
                            ) as sp:
                        env = (envelope if sp.ctx is ctx
                               else attach_context(envelope, sp.ctx))
                        resp = await aserve_via(self.service, env,
                                                clocks=self._clocks(),
                                                backend=self.backend)
                finally:
                    inflight -= 1
                done = loop.time()
                # Closed-loop clients dispatch immediately: the queue
                # part of the latency is what the stack spent outside
                # the service call proper (backend queueing).
                resp.queue_delay = max(0.0,
                                       (done - issued) - resp.service_time)
                answers[i] = resp.answer
                reports[i] = resp.reports
                latencies[i] = done - issued
                queue_delays[i] = resp.queue_delay
                think = float(load.think_times[i]) * self.time_scale
                if think > 0:
                    await asyncio.sleep(think)

        await asyncio.gather(*(client()
                               for _ in range(min(load.n_clients, n) or 1)))

        duration = loop.time() - t0
        subs = np.array([rep.total_elapsed for reps in reports
                         for rep in reps], dtype=float)
        stats = ServingRunStats(
            sub_latencies=subs,
            request_latencies=latencies,
            n_requests=n,
            n_components=self.service.n_components,
            duration=float(duration),
            answers=list(answers),
            reports=list(reports),
            inflight_max=inflight_max,
            queue_delays=queue_delays,
        )
        apply_class_breakdown(stats, envelopes, latencies)
        apply_payload_delta(stats, self._payload_backend(), payload0)
        return apply_hedge_delta(stats, self.service, hedge0)
