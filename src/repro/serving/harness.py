"""Drive sustained request streams against a live AccuracyTrader service.

Where :mod:`repro.cluster` *simulates* fan-out queueing to predict tail
latency, the :class:`ServingHarness` actually *serves*: it dispatches a
generated request stream (open- or closed-loop, see
:mod:`repro.serving.loadgen`) against any live
:class:`~repro.core.servable.Servable` — a single
:class:`~repro.core.service.AccuracyTraderService` or a routed
:class:`~repro.serving.router.ShardedService` cluster, identically —
executing component
work through a pluggable :class:`~repro.serving.backends.ExecutionBackend`
— optionally while synopsis updates land concurrently — and reports the
measured throughput and latency distribution in the same shape as
:class:`repro.cluster.FanoutRunStats` (``sub_latencies`` /
``request_latencies`` / ``n_requests`` / ``n_components``), so the
simulator's and the server's numbers can be compared side by side.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.core.clock import ClockFactory, monotonic, wall_clock_factory
from repro.serving.backends import (BatchingBackend, ExecutionBackend,
                                    resolve_backend)
from repro.serving.envelope import ServingRequest, as_envelope, serve_via
from repro.serving.loadgen import ClosedLoopLoad, OpenLoopLoad
from repro.serving.telemetry import attach_context, get_tracer, \
    trace_context_of
from repro.util.stats import percentile

__all__ = ["ServingRunStats", "AccuracyPoint", "ServingHarness",
           "collect_hedge_counters", "apply_hedge_delta",
           "collect_payload_counters", "apply_payload_delta",
           "payload_backend_of", "apply_class_breakdown",
           "resolve_envelopes"]


def resolve_envelopes(requests, deadline: float) -> list[ServingRequest]:
    """One resolved envelope per load request, in arrival order.

    Shared by the thread and async harnesses.  A load whose requests
    are already :class:`~repro.serving.envelope.ServingRequest`
    envelopes keeps its classes, priorities and per-request deadline
    overrides (``deadline`` only fills in where an envelope left it
    unset); bare payloads are wrapped as default-class envelopes.
    """
    return [as_envelope(r).resolved(deadline) for r in requests]


def collect_hedge_counters(service) -> dict | None:
    """Snapshot a service's hedge counters, if it keeps any.

    Duck-typed on ``hedge_counters()`` (today:
    :class:`~repro.serving.router.ShardedService`), so harnesses can
    report per-run hedge rates without knowing the service's type.
    """
    counters = getattr(service, "hedge_counters", None)
    return counters() if callable(counters) else None


def apply_hedge_delta(stats: "ServingRunStats", service,
                      before: dict | None) -> "ServingRunStats":
    """Fill ``stats``' hedge fields with this run's counter deltas.

    Shared by the thread and async harnesses: ``before`` is the
    :func:`collect_hedge_counters` snapshot taken at run start.
    """
    after = collect_hedge_counters(service)
    if before is not None and after is not None:
        stats.shard_calls = after["shard_calls"] - before["shard_calls"]
        stats.hedges_issued = (after["hedges_issued"]
                               - before["hedges_issued"])
        stats.hedge_wins = after["hedge_wins"] - before["hedge_wins"]
    return stats


def payload_backend_of(harness_backend, service):
    """Every backend whose payload counters describe a harness run.

    Returns a list (possibly empty).  A harness-level backend override
    dispatches the work, but a *routed* service still owns one backend
    per replica — a :class:`~repro.serving.router.ShardedService` of
    :class:`~repro.serving.router.ReplicaGroup` shards fans tasks out
    to each replica's own backend — so counting only ``service.
    backend`` undercounts every byte those replica backends shipped.
    This walks the service's routing structure (duck-typed, depth-wise:
    service → shards → replicas) and returns all distinct backends the
    run may have dispatched through.  Shared by the thread and async
    harnesses; idle backends contribute zero deltas, so over-collecting
    is harmless while under-collecting loses bytes.
    """
    backends: list = []

    def add(backend) -> None:
        if backend is not None and \
                not any(backend is seen for seen in backends):
            backends.append(backend)

    def walk(service) -> None:
        add(getattr(service, "backend", None))
        for shard in getattr(service, "shards", []) or []:
            walk(shard)
        for replica in getattr(service, "replicas", []) or []:
            walk(replica)

    add(harness_backend)
    walk(service)
    return backends


def collect_payload_counters(backends) -> dict | None:
    """Snapshot serialized-payload counters, summed across backends.

    ``backends`` is one backend or a list of them (the
    :func:`payload_backend_of` shape).  Duck-typed on
    ``payload_counters()`` (every :class:`~repro.serving.backends.
    ExecutionBackend`; in-process backends report zeros).  ``None``
    when nothing keeps counters at all.
    """
    if not isinstance(backends, (list, tuple)):
        backends = [backends]
    total: dict | None = None
    for backend in backends:
        counters = getattr(backend, "payload_counters", None)
        if not callable(counters):
            continue
        snapshot = counters()
        if total is None:
            total = dict(snapshot)
        else:
            for key, value in snapshot.items():
                total[key] = total.get(key, 0) + value
    return total


def apply_payload_delta(stats: "ServingRunStats", backend,
                        before: dict | None) -> "ServingRunStats":
    """Fill ``stats``' payload-bytes fields with this run's deltas.

    Shared by the thread and async harnesses: ``before`` is the
    :func:`collect_payload_counters` snapshot taken at run start.  This
    is what makes the process pool's per-task state pickling *visible*:
    ``task_bytes`` grows with request rate on the vanilla process
    backend but stays near-flat on the persistent backend, whose
    ``state_bytes`` grows with update (epoch) rate instead.
    """
    after = collect_payload_counters(backend)
    if before is not None and after is not None:
        for field_name in ("task_bytes", "state_bytes", "tasks_shipped",
                           "state_publishes"):
            setattr(stats, field_name,
                    after[field_name] - before[field_name])
    return stats


def apply_class_breakdown(stats: "ServingRunStats", envelopes,
                          latencies, served=None) -> "ServingRunStats":
    """Fill ``stats``' per-class fields from one run's envelopes.

    Shared by the thread and async harnesses.  ``latencies`` aligns
    index-wise with ``envelopes``; ``served`` is an optional boolean
    mask (``False`` = shed by admission — counted in ``class_shed``,
    its latency slot ignored).
    """
    by_class: dict[str, list[float]] = {}
    for i, env in enumerate(envelopes):
        key = env.request_class.value
        if served is None or served[i]:
            stats.class_served[key] = stats.class_served.get(key, 0) + 1
            by_class.setdefault(key, []).append(float(latencies[i]))
        else:
            stats.class_shed[key] = stats.class_shed.get(key, 0) + 1
    stats.class_latencies = {k: np.asarray(v, dtype=float)
                             for k, v in by_class.items()}
    return stats


@dataclass
class ServingRunStats:
    """Measured outcome of one served request stream.

    Field names and semantics deliberately mirror
    :class:`repro.cluster.FanoutRunStats` so analysis code works on
    either; serving adds wall-clock ``duration`` (hence throughput),
    per-request reports, and any concurrent-update log.

    Attributes
    ----------
    sub_latencies:
        Per-component processing elapsed times (seconds), request-major.
    request_latencies:
        Per-request service latency: completion minus scheduled arrival
        (open loop, queueing included) or issue time (closed loop).
    n_requests, n_components:
        Run dimensions.
    duration:
        Wall-clock seconds from stream start to last completion.
    answers:
        The merged per-request answers, in request order.
    reports:
        Per-request lists of :class:`~repro.core.processor.ProcessingReport`.
    update_log:
        ``(at_seconds, report)`` for every concurrent update applied.
    shard_calls / hedges_issued / hedge_wins:
        Router hedging counters for this run (deltas, collected via
        :func:`collect_hedge_counters`); zero for unrouted services.
        :meth:`hedge_rate` is the realized re-issue fraction — compare
        it to the router's configured ``hedge_budget``.
    offered / shed / shed_reasons / queue_depth_max / inflight_max:
        Admission-control accounting (async tier).  ``offered`` is the
        full trace length including shed requests (``None`` when no
        admission layer ran); ``n_requests`` counts *served* requests
        only.  ``answers`` and ``reports`` stay aligned with one slot
        per offered request (``None`` where shed); ``request_latencies``
        holds served requests only, so percentiles stay finite.
    class_served / class_shed / class_latencies:
        Per-request-class breakdowns, keyed by the class's value string
        (``"accuracy_critical"`` / ``"latency_critical"`` /
        ``"best_effort"``).  ``class_served`` / ``class_shed`` count
        this run's requests by envelope class; ``class_latencies`` holds
        each class's served request latencies (use
        :meth:`class_percentile` / :meth:`class_breakdown`).  Bare
        payloads are classed as the envelope default
        (``latency_critical``).
    queue_delays:
        Per served request, the queue part of its latency, matching
        :attr:`~repro.serving.envelope.ServingResponse.queue_delay` and
        aligned with ``request_latencies``.  Open loop: seconds between
        the request's scheduled arrival and its dispatch (admission
        wait included).  Closed loop: the client-observed latency minus
        the service's own ``service_time`` — dispatch overhead such as
        backend queueing (zero when the servable reports no service
        time).
    task_bytes / state_bytes / tasks_shipped / state_publishes:
        Serialized-payload accounting for this run (deltas from the
        harness's backend, collected via
        :func:`collect_payload_counters`; zero for in-process backends,
        which move references, not bytes).  ``task_bytes`` is what
        crossed the process boundary *per task* — on the vanilla
        process pool this embeds each task's state snapshot, the
        O(requests) distribution cost; ``state_bytes`` counts
        snapshots shipped separately once per epoch — the persistent
        backend's O(updates) cost.  :meth:`bytes_per_request` combines
        them for before/after comparisons.
    """

    sub_latencies: np.ndarray
    request_latencies: np.ndarray
    n_requests: int
    n_components: int
    duration: float
    answers: list = field(default_factory=list, repr=False)
    reports: list = field(default_factory=list, repr=False)
    update_log: list = field(default_factory=list, repr=False)
    shard_calls: int = 0
    hedges_issued: int = 0
    hedge_wins: int = 0
    offered: int | None = None
    shed: int = 0
    shed_reasons: dict = field(default_factory=dict)
    queue_depth_max: int = 0
    inflight_max: int = 0
    class_served: dict = field(default_factory=dict)
    class_shed: dict = field(default_factory=dict)
    class_latencies: dict = field(default_factory=dict, repr=False)
    queue_delays: np.ndarray = field(
        default_factory=lambda: np.zeros(0), repr=False)
    task_bytes: int = 0
    state_bytes: int = 0
    tasks_shipped: int = 0
    state_publishes: int = 0

    # -- FanoutRunStats-compatible accessors ----------------------------

    def component_tail(self, q: float = 99.9) -> float:
        """q-th percentile per-component processing latency.

        ``nan`` for an empty run (every request shed): an all-shed run
        is a legitimate measurement, not an error.
        """
        if len(self.sub_latencies) == 0:
            return float("nan")
        return percentile(self.sub_latencies, q)

    def tail_ms(self, q: float = 99.9) -> float:
        return 1000.0 * self.component_tail(q)

    def mean_latency(self) -> float:
        """Mean per-component processing latency (``nan`` for empty runs)."""
        if len(self.sub_latencies) == 0:
            return float("nan")
        return float(self.sub_latencies.mean())

    # -- serving metrics -------------------------------------------------

    def throughput(self) -> float:
        """Completed requests per wall-clock second."""
        if self.duration <= 0.0:
            return 0.0
        return self.n_requests / self.duration

    def request_percentile(self, q: float) -> float:
        """q-th percentile served-request latency (``nan`` if none served)."""
        if len(self.request_latencies) == 0:
            return float("nan")
        return percentile(self.request_latencies, q)

    def p50(self) -> float:
        return self.request_percentile(50.0)

    def p95(self) -> float:
        return self.request_percentile(95.0)

    def p99(self) -> float:
        return self.request_percentile(99.0)

    def deadline_miss_rate(self, deadline: float) -> float:
        """Fraction of requests whose service latency exceeded ``deadline``."""
        if self.n_requests == 0:
            return 0.0
        return float(np.mean(self.request_latencies > deadline))

    def hedge_rate(self) -> float:
        """Realized re-issue fraction: hedges issued per shard call."""
        return self.hedges_issued / max(self.shard_calls, 1)

    def shed_rate(self) -> float:
        """Fraction of offered requests shed by admission control."""
        if not self.offered:
            return 0.0
        return self.shed / self.offered

    def class_percentile(self, request_class, q: float) -> float:
        """q-th percentile served latency of one request class.

        ``request_class`` is a :class:`~repro.serving.envelope.
        RequestClass` or its value string; ``nan`` when the class served
        nothing this run.
        """
        key = getattr(request_class, "value", request_class)
        lats = self.class_latencies.get(key)
        if lats is None or len(lats) == 0:
            return float("nan")
        return percentile(np.asarray(lats, dtype=float), q)

    def class_breakdown(self) -> dict:
        """Per-class summary rows: served/shed counts and p50/p95/p99."""
        keys = sorted(set(self.class_served) | set(self.class_shed)
                      | set(self.class_latencies))
        return {
            key: {
                "served": int(self.class_served.get(key, 0)),
                "shed": int(self.class_shed.get(key, 0)),
                "p50_s": self.class_percentile(key, 50.0),
                "p95_s": self.class_percentile(key, 95.0),
                "p99_s": self.class_percentile(key, 99.0),
            }
            for key in keys
        }

    def bytes_per_request(self) -> float:
        """Serialized payload bytes shipped per served request.

        Task payloads plus separately-shipped state, averaged over the
        run — the headline state-distribution number: O(state size) per
        request on the vanilla process pool vs O(ref size) plus the
        amortised per-epoch state cost on the persistent backend.
        """
        if self.n_requests == 0:
            return 0.0
        return (self.task_bytes + self.state_bytes) / self.n_requests


@dataclass
class AccuracyPoint:
    """One point on an accuracy-vs-deadline curve."""

    deadline: float
    accuracy_mean: float
    latency_p50: float
    latency_p95: float
    latency_p99: float
    groups_processed_mean: float


class ServingHarness:
    """Serves generated load against one service and measures it.

    Parameters
    ----------
    service:
        The live :class:`~repro.core.servable.Servable` — a single
        :class:`~repro.core.service.AccuracyTraderService`, a
        :class:`~repro.serving.router.ReplicaGroup`, or a routed
        :class:`~repro.serving.router.ShardedService`.
    deadline:
        Per-component deadline (``l_spe``) handed to every request.
    backend:
        Execution backend (instance, name, or ``None`` for the service's
        own default); backends created here from a name are closed by
        :meth:`close`.
    clock_factory:
        Per-component deadline-clock factory for each request; defaults
        to fresh wall clocks (real serving).  Pass
        :func:`~repro.core.clock.simulated_clock_factory` for
        deterministic latency accounting.
    max_concurrency:
        Maximum in-flight requests in open-loop mode (the outer dispatch
        pool; per-component parallelism belongs to ``backend``).
    time_scale:
        Multiplier applied to arrival gaps at dispatch time (< 1
        compresses a long trace into a short wall-clock run).  Latencies
        are always reported in real wall seconds.
    batch_window:
        When set, wrap the execution backend in a
        :class:`~repro.serving.backends.BatchingBackend` holding each
        coalescing bucket open this many seconds, so concurrent
        requests' same-``(component, epoch)`` tasks dispatch as one
        batched submission.  ``None`` (default) dispatches per task.
    batch_max:
        Bucket size that forces an immediate flush (only meaningful
        with ``batch_window``).
    """

    def __init__(self, service, deadline: float,
                 backend: ExecutionBackend | str | None = None,
                 clock_factory: ClockFactory | None = None,
                 max_concurrency: int = 64,
                 time_scale: float = 1.0,
                 batch_window: float | None = None,
                 batch_max: int = 32):
        if deadline < 0:
            raise ValueError("deadline must be non-negative")
        if max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        self.service = service
        self.deadline = float(deadline)
        self._owns_backend = not isinstance(backend, ExecutionBackend)
        self.backend = (resolve_backend(backend)
                        if backend is not None else None)
        if batch_window is not None:
            inner = (self.backend if self.backend is not None
                     else resolve_backend(None))
            self.backend = BatchingBackend(inner, window=batch_window,
                                           max_batch=batch_max,
                                           close_inner=self._owns_backend)
            self._owns_backend = True
        self.clock_factory = (clock_factory if clock_factory is not None
                              else wall_clock_factory())
        self.max_concurrency = int(max_concurrency)
        self.time_scale = float(time_scale)

    # ------------------------------------------------------------------

    def close(self) -> None:
        if self.backend is not None and self._owns_backend:
            self.backend.close()

    def __enter__(self) -> "ServingHarness":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------

    def _clocks(self) -> list:
        n = self.service.n_components
        return [self.clock_factory(c) for c in range(n)]

    def _serve(self, envelope: ServingRequest):
        # The harness is the outermost instrumented layer, so it wins
        # the trace root; the "request" span covers the whole
        # client-observed service call.
        tracer = get_tracer()
        envelope = tracer.trace(envelope)
        ctx = trace_context_of(envelope)
        with tracer.span("request", ctx,
                         request_class=envelope.request_class.value) as sp:
            env = (envelope if sp.ctx is ctx
                   else attach_context(envelope, sp.ctx))
            return serve_via(self.service, env, clocks=self._clocks(),
                             backend=self.backend)

    def _apply_hedge_delta(self, stats: ServingRunStats,
                           before: dict | None) -> ServingRunStats:
        return apply_hedge_delta(stats, self.service, before)

    def _payload_backend(self):
        return payload_backend_of(self.backend, self.service)

    @staticmethod
    def _stats_from(answers, reports, latencies, duration, n_components,
                    update_log) -> ServingRunStats:
        subs = np.array([rep.total_elapsed for reps in reports for rep in reps],
                        dtype=float)
        return ServingRunStats(
            sub_latencies=subs,
            request_latencies=np.asarray(latencies, dtype=float),
            n_requests=len(answers),
            n_components=n_components,
            duration=float(duration),
            answers=list(answers),
            reports=list(reports),
            update_log=list(update_log),
        )

    # ------------------------------------------------------------------

    def run_open_loop(self, load: OpenLoopLoad,
                      updates: Sequence[tuple[float, Callable]] | None = None,
                      ) -> ServingRunStats:
        """Serve an open-loop stream, pacing dispatch by arrival times.

        ``updates`` is an optional schedule of ``(at_seconds, fn)``; each
        ``fn(service)`` runs on a background thread once ``at_seconds`` of
        (scaled) stream time have elapsed — e.g. a closure calling
        :meth:`~repro.core.service.AccuracyTraderService.add_points` —
        concurrently with in-flight requests.  Whatever ``fn`` returns is
        recorded in the stats' ``update_log``; if ``fn`` raises, the
        exception object is recorded in its slot instead and the
        remaining schedule still runs.
        """
        n = load.n_requests
        envelopes = resolve_envelopes(load.requests, self.deadline)
        answers: list[Any] = [None] * n
        reports: list[Any] = [None] * n
        latencies = np.zeros(n, dtype=float)
        queue_delays = np.zeros(n, dtype=float)
        update_log: list[tuple[float, Any]] = []
        hedge_before = collect_hedge_counters(self.service)
        payload_before = collect_payload_counters(self._payload_backend())
        t0 = monotonic()

        stop_updates = threading.Event()

        def apply_updates() -> None:
            for at, fn in sorted(updates, key=lambda p: p[0]):
                delay = t0 + at * self.time_scale - monotonic()
                if delay > 0 and stop_updates.wait(delay):
                    return
                # A failing update must not silently kill the schedule:
                # log the exception in its slot and keep going.
                try:
                    update_log.append((at, fn(self.service)))
                except Exception as exc:  # noqa: BLE001 - recorded for caller
                    update_log.append((at, exc))

        updater_thread = None
        if updates:
            updater_thread = threading.Thread(target=apply_updates,
                                              daemon=True)
            updater_thread.start()

        inflight = 0
        inflight_max = 0
        inflight_lock = threading.Lock()

        def serve(i: int, scheduled: float) -> None:
            nonlocal inflight, inflight_max
            with inflight_lock:
                inflight += 1
                inflight_max = max(inflight_max, inflight)
            t_dispatch = monotonic()
            try:
                resp = self._serve(envelopes[i])
            finally:
                with inflight_lock:
                    inflight -= 1
            done = monotonic()
            resp.queue_delay = max(0.0, t_dispatch - scheduled)
            answers[i] = resp.answer
            reports[i] = resp.reports
            latencies[i] = done - scheduled
            queue_delays[i] = resp.queue_delay

        try:
            with ThreadPoolExecutor(
                    max_workers=self.max_concurrency,
                    thread_name_prefix="repro-openloop") as pool:
                futures = []
                for i in range(n):
                    scheduled = t0 + float(load.arrivals[i]) * self.time_scale
                    delay = scheduled - monotonic()
                    if delay > 0:
                        time.sleep(delay)
                    futures.append(pool.submit(serve, i, scheduled))
                for f in futures:
                    f.result()
        finally:
            stop_updates.set()
            if updater_thread is not None:
                updater_thread.join()

        duration = monotonic() - t0
        stats = self._stats_from(answers, reports, latencies, duration,
                                 self.service.n_components, update_log)
        stats.inflight_max = inflight_max
        stats.queue_delays = queue_delays
        apply_class_breakdown(stats, envelopes, latencies)
        apply_payload_delta(stats, self._payload_backend(), payload_before)
        return self._apply_hedge_delta(stats, hedge_before)

    # ------------------------------------------------------------------

    def run_closed_loop(self, load: ClosedLoopLoad) -> ServingRunStats:
        """Serve a closed-loop population of ``load.n_clients`` clients.

        Each client thread repeatedly claims the next request, serves it,
        records issue-to-completion latency, then thinks.
        """
        n = load.n_requests
        envelopes = resolve_envelopes(load.requests, self.deadline)
        answers: list[Any] = [None] * n
        reports: list[Any] = [None] * n
        latencies = np.zeros(n, dtype=float)
        queue_delays = np.zeros(n, dtype=float)
        next_index = 0
        claim_lock = threading.Lock()
        hedge_before = collect_hedge_counters(self.service)
        payload_before = collect_payload_counters(self._payload_backend())
        t0 = monotonic()

        inflight = 0
        inflight_max = 0

        def client() -> None:
            nonlocal next_index, inflight, inflight_max
            while True:
                with claim_lock:
                    i = next_index
                    if i >= n:
                        return
                    next_index += 1
                    inflight += 1
                    inflight_max = max(inflight_max, inflight)
                issued = monotonic()
                try:
                    resp = self._serve(envelopes[i])
                finally:
                    with claim_lock:
                        inflight -= 1
                done = monotonic()
                # A closed-loop client dispatches immediately, so the
                # queue part of its latency is whatever the stack spent
                # outside the service call proper (backend queueing).
                resp.queue_delay = max(0.0,
                                       (done - issued) - resp.service_time)
                answers[i] = resp.answer
                reports[i] = resp.reports
                latencies[i] = done - issued
                queue_delays[i] = resp.queue_delay
                think = float(load.think_times[i]) * self.time_scale
                if think > 0:
                    time.sleep(think)

        threads = [threading.Thread(target=client, daemon=True)
                   for _ in range(min(load.n_clients, n) or 1)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        duration = monotonic() - t0
        stats = self._stats_from(answers, reports, latencies, duration,
                                 self.service.n_components, [])
        stats.inflight_max = inflight_max
        stats.queue_delays = queue_delays
        apply_class_breakdown(stats, envelopes, latencies)
        apply_payload_delta(stats, self._payload_backend(), payload_before)
        return self._apply_hedge_delta(stats, hedge_before)

    # ------------------------------------------------------------------

    def accuracy_vs_deadline(self, requests: Sequence,
                             deadlines: Sequence[float],
                             accuracy_fn: Callable[[Any, Any, Any], float],
                             ) -> list[AccuracyPoint]:
        """Measure the accuracy-latency trade-off across ``deadlines``.

        For each deadline, every request is served (through this
        harness's backend and clock factory) and scored by
        ``accuracy_fn(answer, exact_answer, request)`` against the
        service's exact ground truth, computed once per request.  Request
        latency is the slowest component's processing time — the paper's
        service-latency definition.
        """
        requests = list(requests)
        exacts = [self.service.exact(r) for r in requests]
        curve: list[AccuracyPoint] = []
        for deadline in deadlines:
            accs, lats, depths = [], [], []
            for request, exact in zip(requests, exacts):
                # The sweep deadline wins, but an envelope request keeps
                # its class/priority/hedge metadata and identity.
                resp = self._serve(as_envelope(request, float(deadline)))
                answer, reps = resp.answer, resp.reports
                accs.append(float(accuracy_fn(answer, exact, request)))
                lats.append(max(rep.total_elapsed for rep in reps))
                depths.append(np.mean([rep.groups_processed for rep in reps]))
            lats_arr = np.asarray(lats, dtype=float)
            curve.append(AccuracyPoint(
                deadline=float(deadline),
                accuracy_mean=float(np.mean(accs)),
                latency_p50=percentile(lats_arr, 50.0),
                latency_p95=percentile(lats_arr, 95.0),
                latency_p99=percentile(lats_arr, 99.0),
                groups_processed_mean=float(np.mean(depths)),
            ))
        return curve
