"""Serving-side adapter wrappers.

:class:`IOStallAdapter` decorates any :class:`~repro.core.adapters.
ServiceAdapter` with a real wall-clock stall per online operation,
modelling what the simulator abstracts away: in the paper's deployment a
component is a *remote* node, and every synopsis probe or group
refinement pays a storage/network round trip.  Stalls sleep (releasing
the GIL), so a thread-pool backend overlaps them across components even
on a single core — the effect the serving benchmark quantifies.

Offline operations (creation, aggregation) and work accounting are
delegated untouched, so a wrapped adapter builds identical synopses and
identical simulated-clock traces to its inner adapter; only *wall* time
changes.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.adapters import ServiceAdapter

__all__ = ["IOStallAdapter"]


class IOStallAdapter(ServiceAdapter):
    """Delegating adapter that sleeps per online operation.

    Parameters
    ----------
    inner:
        The real service adapter.
    synopsis_stall:
        Seconds slept inside :meth:`initial_result` (one synopsis fetch).
    group_stall:
        Seconds slept inside each :meth:`refine` call (one group fetch).
    """

    def __init__(self, inner: ServiceAdapter, synopsis_stall: float = 0.0,
                 group_stall: float = 0.0):
        if synopsis_stall < 0 or group_stall < 0:
            raise ValueError("stalls must be non-negative")
        self.inner = inner
        self.synopsis_stall = float(synopsis_stall)
        self.group_stall = float(group_stall)

    # -- offline: pure delegation --------------------------------------

    def record_ids(self, partition) -> np.ndarray:
        return self.inner.record_ids(partition)

    def svd_triples(self, partition, record_ids=None):
        return self.inner.svd_triples(partition, record_ids)

    def postprocess_reduced(self, factors: np.ndarray) -> np.ndarray:
        return self.inner.postprocess_reduced(factors)

    def aggregate_group(self, partition, member_ids):
        return self.inner.aggregate_group(partition, member_ids)

    def assemble_payload(self, partition, group_vectors: list):
        return self.inner.assemble_payload(partition, group_vectors)

    # -- online: delegation plus stalls --------------------------------

    def initial_result(self, synopsis, request):
        if self.synopsis_stall:
            time.sleep(self.synopsis_stall)
        return self.inner.initial_result(synopsis, request)

    def refine(self, partition, synopsis, group_id: int, request, state):
        if self.group_stall:
            time.sleep(self.group_stall)
        return self.inner.refine(partition, synopsis, group_id, request, state)

    def finalize(self, state, request):
        return self.inner.finalize(state, request)

    def exact(self, partition, request):
        return self.inner.exact(partition, request)

    # -- work accounting: delegation -----------------------------------

    def synopsis_work(self, synopsis) -> float:
        return self.inner.synopsis_work(synopsis)

    def group_work(self, synopsis, group_id: int) -> float:
        return self.inner.group_work(synopsis, group_id)

    def full_work(self, partition) -> float:
        return self.inner.full_work(partition)
