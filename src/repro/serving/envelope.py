"""The typed request envelope: what one request *is* on the serving path.

Before this module the whole stack threaded a bare payload plus loose
keyword arguments through service → router → admission → harness
(``process(request, deadline, clocks=None, backend=None)``), so a
request carried no class, priority, budget override, or identity — which
is exactly what blocked priority-aware shedding and per-class SLOs.  The
paper's central trade-off distinguishes accuracy-critical from
latency-critical requests; the envelope makes that distinction a
first-class, typed property of every request:

- :class:`RequestClass` — the paper's request taxonomy:
  ``ACCURACY_CRITICAL`` (the answer must be as exact as possible; shed
  last), ``LATENCY_CRITICAL`` (the deadline matters more than the last
  refinement step; the serving default), ``BEST_EFFORT`` (background /
  speculative traffic; shed first under overload).
- :class:`ServingRequest` — one immutable request envelope: the payload,
  its deadline, class, priority, per-request hedging override, a
  monotonically assigned ``request_id``, and its arrival timestamp.
- :class:`ServingResponse` — the typed reply: the merged answer, the
  per-component :class:`~repro.core.processor.ProcessingReport` list,
  the state epochs that answered, and the queue/service timing
  breakdown.

Every :class:`~repro.core.servable.Servable` implementation serves
envelopes natively via ``serve`` / ``aserve``; bare payloads are
wrapped with :func:`as_envelope` before dispatch.  (The positional
``process`` / ``aprocess`` shims that once bridged the pre-envelope
API were removed after their deprecation cycle.)

This module deliberately imports nothing from the rest of
:mod:`repro.serving`, so the core service classes can reach it lazily
without import cycles.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field, replace
from typing import Any

from repro.core.clock import monotonic
from repro.core.processor import ProcessingReport

__all__ = [
    "RequestClass",
    "ServingRequest",
    "ServingResponse",
    "as_envelope",
    "payload_of",
    "serve_via",
    "aserve_via",
]


class RequestClass(enum.Enum):
    """The paper's request taxonomy, as a typed class on every envelope.

    Ordering is expressed by two derived properties rather than enum
    order, so neither can silently drift:

    - :attr:`default_priority` — urgency (lower is more urgent), used as
      the envelope's priority when none is given;
    - :attr:`shed_rank` — the order overload shedding consumes classes
      (lower sheds first): ``BEST_EFFORT`` before ``LATENCY_CRITICAL``
      before ``ACCURACY_CRITICAL``.
    """

    ACCURACY_CRITICAL = "accuracy_critical"
    LATENCY_CRITICAL = "latency_critical"
    BEST_EFFORT = "best_effort"

    @property
    def default_priority(self) -> int:
        """Default within-queue urgency for this class (lower = sooner)."""
        return _DEFAULT_PRIORITY[self]

    @property
    def shed_rank(self) -> int:
        """Overload shedding order (lower = shed first)."""
        return _SHED_RANK[self]

    @classmethod
    def coerce(cls, value) -> "RequestClass":
        """Accept a :class:`RequestClass`, a value string, or a name."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            try:
                return cls(value.lower())
            except ValueError:
                try:
                    return cls[value.upper()]
                except KeyError:
                    pass
        raise ValueError(
            f"cannot interpret {value!r} as a RequestClass; expected one "
            f"of {[c.value for c in cls]}")


_DEFAULT_PRIORITY = {
    RequestClass.ACCURACY_CRITICAL: 0,
    RequestClass.LATENCY_CRITICAL: 1,
    RequestClass.BEST_EFFORT: 2,
}

_SHED_RANK = {
    RequestClass.BEST_EFFORT: 0,
    RequestClass.LATENCY_CRITICAL: 1,
    RequestClass.ACCURACY_CRITICAL: 2,
}

# Monotonic, process-wide request identity.  ``itertools.count().__next__``
# is atomic under CPython, so ids are unique and ordered without a lock.
_REQUEST_IDS = itertools.count()


def _next_request_id() -> int:
    return next(_REQUEST_IDS)


@dataclass(frozen=True)
class ServingRequest:
    """One immutable request envelope.

    Attributes
    ----------
    payload:
        The workload request proper (e.g. a :class:`~repro.core.adapters.
        CFRequest` or :class:`~repro.core.adapters.SearchQuery`) — what
        adapters and merge functions see.
    deadline:
        Per-component deadline in seconds, or ``None`` to inherit the
        callee's default (harnesses resolve it before dispatch; the
        ``serve`` entry points require it resolved).
    request_class:
        :class:`RequestClass` (a value string like ``"best_effort"`` is
        coerced).  Defaults to ``LATENCY_CRITICAL`` — the class the
        legacy positional API implicitly always was.
    priority:
        Within-class urgency (lower = more urgent); defaults to the
        class's :attr:`~RequestClass.default_priority`.
    hedge:
        Per-request hedging override: ``False`` disables hedged
        re-issue for this request even on a hedging router; ``True``
        marks it eligible (still subject to the router's strategy,
        trigger, and budget); ``None`` (default) follows the service
        configuration.
    request_id:
        Monotonically assigned process-wide id (dispatch order of
        envelope *creation*); stamped into every per-component
        :class:`~repro.core.processor.ProcessingReport`.
    arrival_time:
        The monotonic wall reading at envelope creation; admission
        control counts waiting from here unless told otherwise.
    trace:
        Propagated span context (a :class:`~repro.serving.telemetry.
        TraceContext`, treated as opaque data here), or ``None`` when
        the request has not (yet) been rooted in a trace.  Rides the
        detached envelope across every process boundary, which is what
        stitches worker-side spans into the parent trace.  Excluded
        from equality — tracing never changes request identity.
    """

    payload: Any
    deadline: float | None = None
    request_class: RequestClass = RequestClass.LATENCY_CRITICAL
    priority: int | None = None
    hedge: bool | None = None
    request_id: int = field(default_factory=_next_request_id)
    arrival_time: float = field(default_factory=monotonic)
    trace: Any = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "request_class",
                           RequestClass.coerce(self.request_class))
        if self.deadline is not None and self.deadline < 0:
            raise ValueError("deadline must be non-negative")
        if self.priority is None:
            object.__setattr__(self, "priority",
                               self.request_class.default_priority)

    # ------------------------------------------------------------------

    def resolved(self, default_deadline: float) -> "ServingRequest":
        """This envelope with its deadline defaulted if unset."""
        if self.deadline is not None:
            return self
        return replace(self, deadline=float(default_deadline))

    def with_deadline(self, deadline: float) -> "ServingRequest":
        """A copy of this envelope carrying ``deadline`` (same identity)."""
        return replace(self, deadline=float(deadline))

    def detached(self) -> "ServingRequest":
        """A payload-free copy carrying only envelope identity/metadata.

        This is what rides along each per-component
        :class:`~repro.serving.backends.ComponentTask` (whose ``request``
        field already carries the payload), so crossing a process
        boundary never serialises the payload twice.
        """
        return replace(self, payload=None)


@dataclass
class ServingResponse:
    """The typed reply to one :class:`ServingRequest`.

    Attributes
    ----------
    answer:
        The merged service answer.
    reports:
        One :class:`~repro.core.processor.ProcessingReport` per
        component (per shard call on a routed service), in global
        component order.
    request:
        The envelope this response answers.
    queue_delay:
        Seconds the request spent waiting before dispatch (admission /
        arrival queueing; filled by the harness — a bare ``serve`` call
        has no queue, so it stays 0).
    service_time:
        Wall seconds from dispatch to the merged answer.
    """

    answer: Any
    reports: list[ProcessingReport]
    request: ServingRequest
    queue_delay: float = 0.0
    service_time: float = 0.0

    @property
    def state_epochs(self) -> list[int | None]:
        """Which published state epoch answered, per component."""
        return [r.state_epoch for r in self.reports]

    @property
    def latency(self) -> float:
        """Queue delay plus service time — the client-observed latency."""
        return self.queue_delay + self.service_time

    def as_tuple(self) -> tuple[Any, list[ProcessingReport]]:
        """The legacy ``(answer, reports)`` shape (migration shims)."""
        return self.answer, self.reports


# ---------------------------------------------------------------------------
# Migration helpers
# ---------------------------------------------------------------------------


def as_envelope(request, deadline: float | None = None, **kwargs,
                ) -> ServingRequest:
    """Coerce a legacy ``(request, deadline)`` pair into an envelope.

    An existing :class:`ServingRequest` passes through with its identity
    and metadata intact; an explicit ``deadline`` **wins** over the
    envelope's own (the call site's positional deadline is the more
    specific instruction — the same precedence ``build_tasks`` applies),
    and only fills in when omitted.  Anything else becomes the payload
    of a fresh default-class envelope.  This is the entire back-compat
    shim: callers holding a bare ``(payload, deadline)`` pair funnel
    through here and then down the one envelope-native path.
    """
    if isinstance(request, ServingRequest):
        if deadline is None or request.deadline == deadline:
            return request
        return request.with_deadline(deadline)
    return ServingRequest(payload=request, deadline=deadline, **kwargs)


def payload_of(request) -> Any:
    """The workload payload of an envelope — or the bare request itself."""
    if isinstance(request, ServingRequest):
        return request.payload
    return request


def serve_via(service, request: ServingRequest, clocks=None, backend=None,
              ) -> ServingResponse:
    """Serve one envelope on ``service``, tolerating legacy servables.

    An envelope-native service answers through ``serve``; a legacy
    implementation (only ``process``) is driven through the positional
    API and its tuple reply is wrapped — so harnesses can be fully
    envelope-typed without breaking third-party servables mid-migration.
    """
    serve = getattr(service, "serve", None)
    if callable(serve):
        return serve(request, clocks=clocks, backend=backend)
    answer, reports = service.process(request.payload, request.deadline,
                                      clocks=clocks, backend=backend)
    return ServingResponse(answer=answer, reports=reports, request=request)


async def aserve_via(service, request: ServingRequest, clocks=None,
                     backend=None) -> ServingResponse:
    """Async :func:`serve_via`: ``aserve`` if present, else ``aprocess``."""
    aserve = getattr(service, "aserve", None)
    if callable(aserve):
        return await aserve(request, clocks=clocks, backend=backend)
    answer, reports = await service.aprocess(
        request.payload, request.deadline, clocks=clocks, backend=backend)
    return ServingResponse(answer=answer, reports=reports, request=request)
