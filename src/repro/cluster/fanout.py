"""Fast fan-out simulator for uncoupled strategies.

Each request fans out one sub-operation to every component; each component
is a FIFO single-server queue.  Because Basic, Partial execution and
AccuracyTrader never move work *between* components, each component's
timeline is an independent recurrence::

    start_i = max(arrival_i, done_{i-1})
    done_i  = start_i + work(arrival_i, start_i, speed(start_i)) / speed(start_i)

which this simulator evaluates exactly, component by component, without an
event queue.  The component's speed is sampled at service start (a
sub-operation is short relative to interference epochs; DESIGN.md §5).

Latency definitions follow the paper: a sub-operation's latency counts
from request *submission* (queueing delay included); the request's service
latency is its slowest component's sub-operation latency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.interference import ConstantSpeed, NodeSpeedModel
from repro.cluster.topology import ClusterSpec
from repro.strategies.base import ComponentWorkModel
from repro.util.stats import percentile

__all__ = ["FanoutRunStats", "FanoutSimulator"]


@dataclass
class FanoutRunStats:
    """Latency outcome of one simulated run.

    Attributes
    ----------
    sub_latencies:
        All sub-operation latencies (seconds), in (component-major) order.
    request_latencies:
        Per-request max sub-operation latency (= service latency).
    n_requests, n_components:
        Run dimensions.
    """

    sub_latencies: np.ndarray
    request_latencies: np.ndarray
    n_requests: int
    n_components: int

    def component_tail(self, q: float = 99.9) -> float:
        """The paper's headline metric: q-th percentile sub-op latency."""
        return percentile(self.sub_latencies, q)

    def tail_ms(self, q: float = 99.9) -> float:
        return 1000.0 * self.component_tail(q)

    def mean_latency(self) -> float:
        return float(self.sub_latencies.mean())


class FanoutSimulator:
    """Exact FIFO fan-out simulation for uncoupled work models."""

    def __init__(self, cluster: ClusterSpec,
                 speed_model: NodeSpeedModel | None = None):
        self.cluster = cluster
        self.speed_model = speed_model if speed_model is not None else ConstantSpeed()

    def run(self, arrivals, strategy: ComponentWorkModel) -> FanoutRunStats:
        """Simulate ``arrivals`` (sorted submission times) under ``strategy``.

        Returns the latency statistics; any strategy-specific accounting
        (skip counts, refinement depths) is left inside ``strategy``.
        """
        arrivals = np.asarray(arrivals, dtype=float)
        if arrivals.ndim != 1:
            raise ValueError("arrivals must be a 1-D array of times")
        if arrivals.size > 1 and np.any(np.diff(arrivals) < 0):
            raise ValueError("arrivals must be sorted")
        n_req = arrivals.size
        n_comp = self.cluster.n_components
        strategy.begin_run(n_req, n_comp)

        sub_latencies = np.empty(n_req * n_comp, dtype=float)
        request_latencies = np.zeros(n_req, dtype=float)

        speeds = self.cluster.component_speeds
        nodes = self.cluster.component_nodes
        mult = self.speed_model.multiplier
        work_of = strategy.service_work
        done_cb = strategy.on_complete

        pos = 0
        for c in range(n_comp):
            comp_speed = float(speeds[c])
            node = int(nodes[c])
            busy = -np.inf
            for r in range(n_req):
                a = float(arrivals[r])
                start = a if a > busy else busy
                speed = comp_speed * mult(node, start)
                work = work_of(r, c, a, start, speed)
                done = start + work / speed
                busy = done
                lat = done - a
                sub_latencies[pos] = lat
                pos += 1
                if lat > request_latencies[r]:
                    request_latencies[r] = lat
                done_cb(r, c, a, done)

        return FanoutRunStats(
            sub_latencies=sub_latencies,
            request_latencies=request_latencies,
            n_requests=n_req,
            n_components=n_comp,
        )
