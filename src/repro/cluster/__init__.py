"""Discrete-event cluster substrate for tail-latency experiments.

The paper measured a 110-VM Xen/JStorm deployment; we reproduce the same
queueing mechanics in simulation (see DESIGN.md for the substitution
argument): an online service fans each request out to ``n`` parallel
components, each a FIFO single-server queue whose speed varies over time
with co-located MapReduce interference.  Latency is therefore queueing
delay + work / current-speed — exactly the two ingredients the paper
identifies as the source of component tail latency.

Two simulators are provided:

- :class:`~repro.cluster.fanout.FanoutSimulator` — O(1)-per-sub-operation
  FIFO recurrence, exact for strategies without cross-component coupling
  (Basic, Partial execution, AccuracyTrader).
- :class:`~repro.cluster.hedged.HedgedFanoutSimulator` — event-driven
  simulator for the request-reissue baseline, whose replica sub-operations
  couple mirror components.
"""

from repro.cluster.topology import ClusterSpec
from repro.cluster.interference import (
    ConstantSpeed,
    InterferenceTimeline,
    NodeSpeedModel,
)
from repro.cluster.fanout import FanoutSimulator, FanoutRunStats
from repro.cluster.hedged import HedgedFanoutSimulator, HedgedRunStats

__all__ = [
    "ClusterSpec",
    "ConstantSpeed",
    "InterferenceTimeline",
    "NodeSpeedModel",
    "FanoutSimulator",
    "FanoutRunStats",
    "HedgedFanoutSimulator",
    "HedgedRunStats",
]
