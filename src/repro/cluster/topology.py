"""Cluster topology: components, their host nodes, and base speeds.

Mirrors the paper's deployment shape: one partition-processing component
per VM, VMs spread over physical nodes, components co-located with batch
workloads that steal capacity.  Heterogeneity enters through per-component
base speeds (hardware/software variance, §1) and through the time-varying
interference model (:mod:`repro.cluster.interference`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.rng import make_rng

__all__ = ["ClusterSpec"]


@dataclass
class ClusterSpec:
    """Static description of the simulated cluster.

    Attributes
    ----------
    n_components:
        Number of parallel partition-processing components (paper: 108).
    n_nodes:
        Physical nodes hosting the components round-robin (paper: 30).
    base_speed:
        Nominal work units/second of a component on an idle node.  One
        work unit = one original data point scanned, so ``base_speed =
        partition_size / t_scan`` where ``t_scan`` is the idle full-scan
        time.
    speed_jitter:
        Lognormal sigma of static per-component speed variation
        (hardware/software heterogeneity).  0 disables.
    seed:
        Seed for drawing the static speeds.
    """

    n_components: int = 108
    n_nodes: int = 27
    base_speed: float = 40_000.0
    speed_jitter: float = 0.15
    seed: int = 0
    component_speeds: np.ndarray = field(init=False, repr=False)
    component_nodes: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.n_components < 1 or self.n_nodes < 1:
            raise ValueError("cluster needs at least one component and node")
        if self.base_speed <= 0:
            raise ValueError("base_speed must be positive")
        if self.speed_jitter < 0:
            raise ValueError("speed_jitter must be non-negative")
        rng = make_rng(self.seed, "cluster-speeds")
        jitter = (
            rng.lognormal(mean=0.0, sigma=self.speed_jitter, size=self.n_components)
            if self.speed_jitter > 0
            else np.ones(self.n_components)
        )
        self.component_speeds = self.base_speed * jitter
        self.component_nodes = np.arange(self.n_components) % self.n_nodes

    def mirror_of(self, component: int) -> int:
        """Partner component hosting the replica partition for reissue.

        Components are paired half-way around the ring; if that partner
        happens to share the component's node (ring stride divisible by
        the node count), the offset is bumped until the mirror sits on a
        different node — replicas must not share the straggler's fate.
        """
        if not (0 <= component < self.n_components):
            raise IndexError(f"component {component} out of range")
        if self.n_components == 1:
            return 0
        offset = self.n_components // 2
        for bump in range(self.n_nodes):
            mirror = (component + offset + bump) % self.n_components
            if mirror != component and (
                self.component_nodes[mirror] != self.component_nodes[component]
                or self.n_nodes == 1
            ):
                return int(mirror)
        return (component + offset) % self.n_components  # single-node cluster
