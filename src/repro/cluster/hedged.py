"""Event-driven simulator for the request-reissue baseline.

Reissue couples components: when a primary sub-operation has been
outstanding longer than the class's 95th-percentile expected latency, a
replica is enqueued on the mirror component, and the quicker copy's answer
is used.  Replica load perturbs the mirror's queue, so the independent
per-component recurrence of :mod:`repro.cluster.fanout` no longer applies
and we fall back to a classic event-driven simulation (heapq).

Semantics modelled (and their paper basis):

- hedge trigger: outstanding time > adaptive p95 of observed effective
  sub-operation latencies (§4.1, "the percentile is set to 95th");
- cancel-on-completion: when one copy answers, the sibling copy is
  dropped if still *queued* (Dean & Barroso's tied-request cancellation);
  a copy already in service runs to completion (no preemption).  Without
  queued-copy cancellation, replica load compounds under overload and
  reissue degrades below the basic approach — the opposite of the paper's
  Table 1;
- at most one replica per sub-operation.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.cluster.interference import ConstantSpeed, NodeSpeedModel
from repro.cluster.topology import ClusterSpec
from repro.strategies.reissue import ReissueStrategy
from repro.util.stats import percentile

__all__ = ["HedgedRunStats", "HedgedFanoutSimulator"]

_ARRIVAL, _DONE, _HEDGE = 0, 1, 2


@dataclass
class HedgedRunStats:
    """Latency outcome of one hedged run.

    ``sub_latencies`` are *effective* latencies (first copy to finish);
    ``replicas_issued`` counts hedged sub-operations.
    """

    sub_latencies: np.ndarray
    request_latencies: np.ndarray
    n_requests: int
    n_components: int
    replicas_issued: int

    def component_tail(self, q: float = 99.9) -> float:
        return percentile(self.sub_latencies, q)

    def tail_ms(self, q: float = 99.9) -> float:
        return 1000.0 * self.component_tail(q)

    def hedge_rate(self) -> float:
        """Fraction of sub-operations that were reissued."""
        total = self.n_requests * self.n_components
        return self.replicas_issued / total if total else 0.0


class HedgedFanoutSimulator:
    """FIFO fan-out with p95-triggered replica sub-operations."""

    def __init__(self, cluster: ClusterSpec,
                 speed_model: NodeSpeedModel | None = None):
        self.cluster = cluster
        self.speed_model = speed_model if speed_model is not None else ConstantSpeed()

    def run(self, arrivals, strategy: ReissueStrategy) -> HedgedRunStats:
        arrivals = np.asarray(arrivals, dtype=float)
        if arrivals.ndim != 1:
            raise ValueError("arrivals must be a 1-D array of times")
        if arrivals.size > 1 and np.any(np.diff(arrivals) < 0):
            raise ValueError("arrivals must be sorted")
        n_req = arrivals.size
        n_comp = self.cluster.n_components

        speeds = self.cluster.component_speeds
        nodes = self.cluster.component_nodes
        mult = self.speed_model.multiplier
        work = strategy.full_work
        # Threshold prior: ~p95 of an idle cluster (scan time + headroom).
        # Starting at the bare scan time causes a warm-up hedge storm that
        # builds queues the run never recovers from.
        strategy.reset(initial_expected_latency=3.0 * strategy.expected_scan_time(
            float(speeds.mean())))

        # Per-sub-operation state; flat index s = r * n_comp + c.
        effective_done = np.full(n_req * n_comp, np.inf)
        hedged = np.zeros(n_req * n_comp, dtype=bool)

        queues: list[deque] = [deque() for _ in range(n_comp)]
        busy = np.zeros(n_comp, dtype=bool)

        events: list[tuple[float, int, int, int, int]] = []
        seq = 0

        def push(t: float, kind: int, comp: int, sub: int) -> None:
            nonlocal seq
            heapq.heappush(events, (t, seq, kind, comp, sub))
            seq += 1

        def start_service(comp: int, t: float) -> None:
            """Dequeue the next live job on ``comp`` (if any) and run it.

            Queued copies whose sibling already answered are cancelled
            lazily here (tied-request cancellation).
            """
            if busy[comp]:
                return
            q = queues[comp]
            while q:
                sub = q.popleft()
                if effective_done[sub] == np.inf:
                    busy[comp] = True
                    speed = float(speeds[comp]) * mult(int(nodes[comp]), t)
                    push(t + work / speed, _DONE, comp, sub)
                    return

        # Seed arrivals: every request enqueues one primary per component,
        # plus one hedge-check per sub-operation at arrival + threshold.
        # Hedge checks are scheduled lazily at arrival processing time so
        # they use the *current* adaptive threshold.
        for r in range(n_req):
            push(float(arrivals[r]), _ARRIVAL, -1, r)

        replicas = 0
        while events:
            t, _, kind, comp, payload = heapq.heappop(events)
            if kind == _ARRIVAL:
                r = payload
                base = r * n_comp
                threshold = strategy.threshold
                for c in range(n_comp):
                    queues[c].append(base + c)
                    push(t + threshold, _HEDGE, c, base + c)
                for c in range(n_comp):
                    start_service(c, t)
            elif kind == _HEDGE:
                sub = payload
                if effective_done[sub] < np.inf or hedged[sub]:
                    continue  # already answered or already replicated
                hedged[sub] = True
                replicas += 1
                mirror = self.cluster.mirror_of(comp)
                queues[mirror].append(sub)
                start_service(mirror, t)
            else:  # _DONE
                sub = payload
                if t < effective_done[sub]:
                    if effective_done[sub] == np.inf:
                        # First copy to answer: record effective latency.
                        r = sub // n_comp
                        strategy.observe(t - float(arrivals[r]))
                    effective_done[sub] = t
                busy[comp] = False
                start_service(comp, t)

        sub_latencies = effective_done - np.repeat(arrivals, n_comp)
        request_latencies = sub_latencies.reshape(n_req, n_comp).max(axis=1) \
            if n_req else np.empty(0)
        return HedgedRunStats(
            sub_latencies=sub_latencies,
            request_latencies=request_latencies,
            n_requests=n_req,
            n_components=n_comp,
            replicas_issued=replicas,
        )
