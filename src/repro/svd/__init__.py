"""Incremental (Funk/Gorrell-style) SVD dimensionality reduction.

Synopsis creation step 1 (paper §2.2) reduces each input-data partition to
a low-dimensional dense dataset before R-tree construction.  The paper uses
Simon Funk's incremental SVD [5]/[17]: gradient descent on the observed
entries, trained one latent dimension at a time, with O(j x i) cost per
row (j dimensions, i iterations each) — independent of total matrix size,
which is what makes periodic incremental updates cheap.
"""

from repro.svd.incremental import FunkSVD, reduce_dense
from repro.svd.textmatrix import TermDocumentMatrix

__all__ = ["FunkSVD", "reduce_dense", "TermDocumentMatrix"]
