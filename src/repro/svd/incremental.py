"""Funk-style incremental SVD via per-dimension gradient descent.

Factorises a partially observed matrix ``R ~= U @ V.T`` by minimising
squared error over the *observed* entries only, training latent dimensions
one at a time (dimension d is fit while dimensions < d are frozen) — the
Gorrell generalised-Hebbian / Simon Funk scheme cited by the paper.

Two operations matter to the synopsis pipeline:

- :meth:`FunkSVD.fit` — the one-off reduction during synopsis creation;
- :meth:`FunkSVD.fold_in_rows` — add new rows (users/pages) without
  retraining existing factors, used by incremental synopsis updates.
  Its cost depends only on the *new* data, mirroring the paper's claim
  that update time is independent of dataset size.

Gradients are vectorised with ``numpy.bincount`` accumulation (one pass
over the observed triples per iteration), following the HPC guide's
"vectorise the inner loop" idiom.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["FunkSVD", "reduce_dense"]


@dataclass
class FunkSVD:
    """Incremental SVD model.

    Parameters
    ----------
    n_dims:
        Number of latent dimensions *j* (the paper uses 3).
    n_iters:
        Gradient iterations per dimension *i* (the paper uses 100).
    learning_rate:
        Step size for the (mean-)gradient updates.
    reg:
        L2 regularisation on the factors.
    init_scale:
        Scale of the random factor initialisation.
    seed:
        Seed for factor initialisation.
    """

    n_dims: int = 3
    n_iters: int = 100
    learning_rate: float = 0.2
    reg: float = 0.02
    init_scale: float = 0.1
    seed: int = 0

    row_factors: np.ndarray | None = field(default=None, init=False, repr=False)
    col_factors: np.ndarray | None = field(default=None, init=False, repr=False)
    n_rows: int = field(default=0, init=False)
    n_cols: int = field(default=0, init=False)
    train_errors_: list = field(default_factory=list, init=False, repr=False)
    # Internal value normalisation (mean/scale of the training values):
    # makes the gradient step size dimensionless, so one learning rate is
    # stable across rating matrices (values ~1..5) and term-count matrices
    # (values with heavy tails) alike.
    _val_mean: float = field(default=0.0, init=False, repr=False)
    _val_scale: float = field(default=1.0, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.n_dims < 1:
            raise ValueError("n_dims must be >= 1")
        if self.n_iters < 1:
            raise ValueError("n_iters must be >= 1")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.reg < 0:
            raise ValueError("reg must be non-negative")

    # ------------------------------------------------------------------

    def fit(self, rows, cols, vals, n_rows: int | None = None,
            n_cols: int | None = None) -> "FunkSVD":
        """Fit factors to observed triples ``(rows[k], cols[k]) -> vals[k]``.

        Returns ``self``.  After fitting, ``row_factors`` has shape
        ``(n_rows, n_dims)`` — this is the low-dimensional dataset handed
        to R-tree construction.
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        vals = np.asarray(vals, dtype=float)
        if not (rows.shape == cols.shape == vals.shape) or rows.ndim != 1:
            raise ValueError("rows/cols/vals must be equal-length 1-D arrays")
        if rows.size == 0:
            raise ValueError("cannot fit on zero observations")
        if np.any(rows < 0) or np.any(cols < 0):
            raise ValueError("indices must be non-negative")
        self.n_rows = int(n_rows if n_rows is not None else rows.max() + 1)
        self.n_cols = int(n_cols if n_cols is not None else cols.max() + 1)
        if rows.max() >= self.n_rows or cols.max() >= self.n_cols:
            raise ValueError("index exceeds declared matrix shape")

        self._val_mean = float(vals.mean())
        scale = float(vals.std())
        self._val_scale = scale if scale > 0 else 1.0
        vals = (vals - self._val_mean) / self._val_scale

        rng = np.random.default_rng(self.seed)
        self.row_factors = rng.normal(0.0, self.init_scale, (self.n_rows, self.n_dims))
        self.col_factors = rng.normal(0.0, self.init_scale, (self.n_cols, self.n_dims))
        self.train_errors_ = []

        # Per-row/col observation counts: mean-gradient normalisation keeps
        # the step size meaningful for both dense and very sparse matrices.
        row_cnt = np.maximum(np.bincount(rows, minlength=self.n_rows), 1).astype(float)
        col_cnt = np.maximum(np.bincount(cols, minlength=self.n_cols), 1).astype(float)

        base = np.zeros_like(vals)  # contribution of already-trained dims
        for d in range(self.n_dims):
            u = self.row_factors[:, d].copy()
            v = self.col_factors[:, d].copy()
            for _ in range(self.n_iters):
                pred = base + u[rows] * v[cols]
                err = vals - pred
                grad_u = np.bincount(rows, weights=err * v[cols], minlength=self.n_rows)
                grad_v = np.bincount(cols, weights=err * u[rows], minlength=self.n_cols)
                u += self.learning_rate * (grad_u / row_cnt - self.reg * u)
                v += self.learning_rate * (grad_v / col_cnt - self.reg * v)
            self.row_factors[:, d] = u
            self.col_factors[:, d] = v
            base = base + u[rows] * v[cols]
            rmse = float(np.sqrt(np.mean((vals - base) ** 2))) * self._val_scale
            self.train_errors_.append(rmse)
        return self

    # ------------------------------------------------------------------

    def fold_in_rows(self, rows, cols, vals, n_new_rows: int | None = None,
                     ignore_unknown_cols: bool = False) -> np.ndarray:
        """Fold in new rows holding column factors fixed.

        ``rows`` are indices *within the new block* (0-based).  Appends the
        trained factors to ``row_factors`` and returns just the new block
        of shape ``(n_new_rows, n_dims)``.

        Cost is O(n_dims x n_iters x nnz_new): independent of how much data
        the model was originally fit on.

        ``ignore_unknown_cols`` drops observations in columns the model was
        never fitted on (e.g. vocabulary words first seen in a new web
        page) instead of raising — those columns have no trained factor to
        project against yet.
        """
        if self.col_factors is None:
            raise RuntimeError("fold_in_rows requires a fitted model")
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        vals = np.asarray(vals, dtype=float)
        if not (rows.shape == cols.shape == vals.shape) or rows.ndim != 1:
            raise ValueError("rows/cols/vals must be equal-length 1-D arrays")
        k = int(n_new_rows if n_new_rows is not None else (rows.max() + 1 if rows.size else 0))
        if k <= 0:
            raise ValueError("fold_in_rows needs at least one new row")
        if rows.size and rows.max() >= k:
            raise ValueError("row index exceeds declared new-row count")
        if rows.size and cols.max() >= self.n_cols:
            if not ignore_unknown_cols:
                raise ValueError("column index outside fitted matrix")
            keep = cols < self.n_cols
            rows, cols, vals = rows[keep], cols[keep], vals[keep]

        vals = (vals - self._val_mean) / self._val_scale
        rng = np.random.default_rng(self.seed + 1)
        new_u = rng.normal(0.0, self.init_scale, (k, self.n_dims))
        if rows.size:
            row_cnt = np.maximum(np.bincount(rows, minlength=k), 1).astype(float)
            base = np.zeros_like(vals)
            for d in range(self.n_dims):
                u = new_u[:, d].copy()
                v = self.col_factors[:, d]
                for _ in range(self.n_iters):
                    err = vals - (base + u[rows] * v[cols])
                    grad_u = np.bincount(rows, weights=err * v[cols], minlength=k)
                    u += self.learning_rate * (grad_u / row_cnt - self.reg * u)
                new_u[:, d] = u
                base = base + u[rows] * v[cols]
        self.row_factors = np.vstack([self.row_factors, new_u])
        self.n_rows += k
        return new_u

    def refit_rows(self, row_ids, rows, cols, vals,
                   ignore_unknown_cols: bool = False) -> np.ndarray:
        """Re-train factors of *existing* rows (changed data points).

        ``row_ids`` maps the block-local indices in ``rows`` to global row
        ids.  Used by synopsis updating when data points change in place.
        Returns the new factor block in ``row_ids`` order.

        ``ignore_unknown_cols`` behaves as in :meth:`fold_in_rows`.
        """
        row_ids = np.asarray(row_ids, dtype=np.int64)
        if row_ids.size == 0:
            raise ValueError("refit_rows needs at least one row id")
        if np.any(row_ids < 0) or np.any(row_ids >= self.n_rows):
            raise ValueError("row id outside fitted matrix")
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        vals = np.asarray(vals, dtype=float)
        if cols.size and cols.max() >= self.n_cols:
            if not ignore_unknown_cols:
                raise ValueError("column index outside fitted matrix")
            keep = cols < self.n_cols
            rows, cols, vals = rows[keep], cols[keep], vals[keep]
        k = row_ids.size
        vals = (vals - self._val_mean) / self._val_scale
        rng = np.random.default_rng(self.seed + 2)
        new_u = rng.normal(0.0, self.init_scale, (k, self.n_dims))
        if rows.size:
            if rows.max() >= k:
                raise ValueError("block-local row index out of range")
            row_cnt = np.maximum(np.bincount(rows, minlength=k), 1).astype(float)
            base = np.zeros_like(vals)
            for d in range(self.n_dims):
                u = new_u[:, d].copy()
                v = self.col_factors[:, d]
                for _ in range(self.n_iters):
                    err = vals - (base + u[rows] * v[cols])
                    grad_u = np.bincount(rows, weights=err * v[cols], minlength=k)
                    u += self.learning_rate * (grad_u / row_cnt - self.reg * u)
                new_u[:, d] = u
                base = base + u[rows] * v[cols]
        self.row_factors[row_ids] = new_u
        return new_u

    # ------------------------------------------------------------------

    def predict(self, rows, cols) -> np.ndarray:
        """Reconstructed values at the given positions (original units)."""
        if self.row_factors is None:
            raise RuntimeError("model is not fitted")
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        inner = np.einsum("ij,ij->i", self.row_factors[rows],
                          self.col_factors[cols])
        return self._val_mean + self._val_scale * inner

    def reconstruction_rmse(self, rows, cols, vals) -> float:
        """RMSE of the factorisation on the given observed triples."""
        vals = np.asarray(vals, dtype=float)
        err = vals - self.predict(rows, cols)
        return float(np.sqrt(np.mean(err**2)))


def reduce_dense(matrix, n_dims: int = 3, **kwargs) -> np.ndarray:
    """Reduce a fully observed matrix to ``n_dims`` columns with FunkSVD.

    Convenience wrapper: treats every cell as observed and returns the row
    factors ``(n_rows, n_dims)``.
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise ValueError("matrix must be 2-D")
    rows, cols = np.nonzero(np.ones_like(matrix, dtype=bool))
    model = FunkSVD(n_dims=n_dims, **kwargs)
    model.fit(rows, cols, matrix[rows, cols],
              n_rows=matrix.shape[0], n_cols=matrix.shape[1])
    return model.row_factors
