"""Term-document count matrix for text partitions.

Paper §2.2 step 1: a text dataset (web pages) is first turned into a
numeric dataset whose attributes are the vocabulary words and whose values
are per-page word occurrence counts; that matrix is then SVD-reduced like
any numeric partition.

The matrix is kept in COO triple form (doc, term, count) because that is
exactly what :class:`repro.svd.incremental.FunkSVD` consumes.
"""

from __future__ import annotations

import numpy as np

__all__ = ["TermDocumentMatrix"]


class TermDocumentMatrix:
    """Sparse doc x term occurrence-count matrix with an append API.

    Documents are sequences of already-tokenised terms (see
    :mod:`repro.search.tokenizer`).  The vocabulary grows as documents are
    added; term ids are assigned in first-seen order so that ids are stable
    under appends (required by SVD fold-in).
    """

    def __init__(self) -> None:
        self.vocabulary: dict[str, int] = {}
        self._doc_rows: list[np.ndarray] = []   # per-doc term-id arrays
        self._doc_counts: list[np.ndarray] = []  # matching counts

    # ------------------------------------------------------------------

    @property
    def n_docs(self) -> int:
        return len(self._doc_rows)

    @property
    def n_terms(self) -> int:
        return len(self.vocabulary)

    def add_document(self, terms) -> int:
        """Add one tokenised document; returns its row id."""
        counts: dict[int, int] = {}
        for t in terms:
            tid = self.vocabulary.get(t)
            if tid is None:
                tid = len(self.vocabulary)
                self.vocabulary[t] = tid
            counts[tid] = counts.get(tid, 0) + 1
        ids = np.fromiter(counts.keys(), dtype=np.int64, count=len(counts))
        vals = np.fromiter(counts.values(), dtype=np.int64, count=len(counts))
        order = np.argsort(ids)
        self._doc_rows.append(ids[order])
        self._doc_counts.append(vals[order])
        return self.n_docs - 1

    def add_documents(self, docs) -> list[int]:
        return [self.add_document(d) for d in docs]

    def replace_document(self, doc_id: int, terms) -> None:
        """Overwrite an existing document's term counts (changed page)."""
        if not (0 <= doc_id < self.n_docs):
            raise IndexError(f"doc_id {doc_id} out of range")
        counts: dict[int, int] = {}
        for t in terms:
            tid = self.vocabulary.get(t)
            if tid is None:
                tid = len(self.vocabulary)
                self.vocabulary[t] = tid
            counts[tid] = counts.get(tid, 0) + 1
        ids = np.fromiter(counts.keys(), dtype=np.int64, count=len(counts))
        vals = np.fromiter(counts.values(), dtype=np.int64, count=len(counts))
        order = np.argsort(ids)
        self._doc_rows[doc_id] = ids[order]
        self._doc_counts[doc_id] = vals[order]

    # ------------------------------------------------------------------

    def triples(self, doc_ids=None) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """COO triples (docs, terms, counts), optionally restricted.

        When ``doc_ids`` is given, the returned row indices are *local*
        (0..len(doc_ids)-1, in ``doc_ids`` order) — the layout FunkSVD's
        fold-in and refit operations expect.
        """
        if doc_ids is None:
            doc_ids = range(self.n_docs)
        rows, cols, vals = [], [], []
        for local, d in enumerate(doc_ids):
            if not (0 <= d < self.n_docs):
                raise IndexError(f"doc_id {d} out of range")
            ids = self._doc_rows[d]
            rows.append(np.full(ids.size, local, dtype=np.int64))
            cols.append(ids)
            vals.append(self._doc_counts[d].astype(float))
        if not rows:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, np.empty(0, dtype=float)
        return np.concatenate(rows), np.concatenate(cols), np.concatenate(vals)

    def doc_vector(self, doc_id: int) -> dict[int, int]:
        """Term-id -> count mapping for one document."""
        if not (0 <= doc_id < self.n_docs):
            raise IndexError(f"doc_id {doc_id} out of range")
        return dict(zip(self._doc_rows[doc_id].tolist(),
                        self._doc_counts[doc_id].tolist()))
