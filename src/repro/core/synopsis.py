"""Synopsis and index-file data model (paper §2.1-2.2).

A *synopsis* is a set of aggregated data points, each summarising a group
of similar original data points; the *index file* records which original
points each aggregated point stands for.  The aggregated representation
itself ("payload") is service-specific — a small
:class:`~repro.recommender.matrix.RatingMatrix` of aggregated users for
the recommender, an :class:`~repro.search.index.InvertedIndex` of
aggregated pages for the search engine — and is produced by the service
adapter during step 3.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["IndexFile", "Synopsis"]


class IndexFile:
    """Mapping between aggregated data points and their original points.

    Invariant (checked by :meth:`validate`): the groups *partition* the
    set of original record ids — every original point belongs to exactly
    one aggregated point.
    """

    def __init__(self, groups):
        self._groups: list[np.ndarray] = [
            np.asarray(sorted(int(r) for r in g), dtype=np.int64) for g in groups
        ]
        self._record_to_group: dict[int, int] = {}
        for g, members in enumerate(self._groups):
            for r in members.tolist():
                if r in self._record_to_group:
                    raise ValueError(f"record {r} assigned to two groups")
                self._record_to_group[r] = g

    # ------------------------------------------------------------------

    @property
    def n_groups(self) -> int:
        return len(self._groups)

    @property
    def n_records(self) -> int:
        return len(self._record_to_group)

    def members(self, group_id: int) -> np.ndarray:
        """Original record ids aggregated by ``group_id`` (sorted copy)."""
        if not (0 <= group_id < self.n_groups):
            raise IndexError(f"group {group_id} out of range")
        return self._groups[group_id].copy()

    def group_of(self, record_id: int) -> int:
        """Aggregated point that stands for ``record_id``."""
        g = self._record_to_group.get(int(record_id))
        if g is None:
            raise KeyError(f"record {record_id} not in index file")
        return g

    def group_sizes(self) -> np.ndarray:
        return np.array([g.size for g in self._groups], dtype=np.int64)

    def all_records(self) -> np.ndarray:
        return np.array(sorted(self._record_to_group), dtype=np.int64)

    def groups(self) -> list[np.ndarray]:
        """All groups (copies), indexable by group id."""
        return [g.copy() for g in self._groups]

    def validate(self, expected_records=None) -> None:
        """Raise ``ValueError`` if the partition invariant is broken."""
        total = sum(g.size for g in self._groups)
        if total != self.n_records:
            raise ValueError("groups overlap")  # pragma: no cover - ctor guards
        if expected_records is not None:
            expected = set(int(r) for r in expected_records)
            if expected != set(self._record_to_group):
                missing = expected - set(self._record_to_group)
                extra = set(self._record_to_group) - expected
                raise ValueError(
                    f"index file does not cover partition: missing={sorted(missing)[:5]} "
                    f"extra={sorted(extra)[:5]}"
                )

    # -- persistence ----------------------------------------------------

    def to_json(self) -> str:
        return json.dumps([g.tolist() for g in self._groups])

    @classmethod
    def from_json(cls, text: str) -> "IndexFile":
        return cls(json.loads(text))

    def __eq__(self, other) -> bool:
        if not isinstance(other, IndexFile):
            return NotImplemented
        return len(self._groups) == len(other._groups) and all(
            np.array_equal(a, b) for a, b in zip(self._groups, other._groups)
        )


@dataclass
class Synopsis:
    """A partition's synopsis: aggregated payload + index file + metadata.

    Attributes
    ----------
    index:
        The :class:`IndexFile` mapping aggregated -> original points.
    payload:
        Service-specific aggregated representation (step-3 output).
    level:
        R-tree level the groups were extracted from.
    n_original:
        Number of original data points summarised.
    meta:
        Free-form build metadata (timings, config echo) for reporting.
    """

    index: IndexFile
    payload: Any
    level: int
    n_original: int
    meta: dict = field(default_factory=dict)

    @property
    def n_aggregated(self) -> int:
        return self.index.n_groups

    @property
    def aggregation_ratio(self) -> float:
        """Average original points per aggregated point (paper reports
        133.01 for the recommender, 42.55 for the search engine)."""
        if self.n_aggregated == 0:
            return 0.0
        return self.n_original / self.n_aggregated
