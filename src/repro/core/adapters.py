"""Service adapters: bind the generic synopsis pipeline to real services.

The builder, updater and online processor are all generic over a
:class:`ServiceAdapter`, which answers the service-specific questions:

- how to turn a partition into SVD triples (creation step 1);
- how to aggregate a group of original points (creation step 3);
- how to produce an initial result + correlations from a synopsis, and how
  to refine it with one group of original points (Algorithm 1);
- how much *work* (abstract units, 1 unit = one original data point
  scanned) each of those operations costs — the quantity the simulated
  clock converts into latency.

Two adapters are provided, matching the paper's two modified services:
:class:`CFAdapter` (user-based collaborative filtering over a
:class:`~repro.recommender.matrix.RatingMatrix`) and
:class:`SearchAdapter` (TF-IDF top-k retrieval over a
:class:`~repro.search.partition.SearchPartition`).
"""

from __future__ import annotations

import abc
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.recommender.aggregation import aggregate_group
from repro.recommender.cf import CFComponent, CFPrediction
from repro.recommender.matrix import RatingMatrix
from repro.search.engine import SearchComponent, SearchHit, merge_topk
from repro.search.partition import SearchPartition

__all__ = ["ServiceAdapter", "CFAdapter", "CFRequest", "SearchAdapter", "SearchQuery"]

_NO_MEMBERS = np.empty(0, dtype=np.int64)  # shared empty-group sentinel


class _ComponentMemo:
    """Small LRU of built service components, keyed by partition identity.

    Bounded because copy-on-swap updates retire partition objects
    wholesale: an unbounded ``id -> component`` map would pin every
    superseded partition (the component holds it) for the adapter's
    lifetime.  The cap only costs a rebuild on overflow.  Thread-safe:
    adapters are shared across serving backends' worker threads.
    """

    def __init__(self, maxsize: int = 32):
        self._maxsize = maxsize
        self._entries: OrderedDict[int, Any] = OrderedDict()
        self._lock = threading.Lock()

    def get(self, partition, is_current: Callable[[Any], bool],
            build: Callable[[], Any]):
        key = id(partition)
        with self._lock:
            comp = self._entries.get(key)
            if comp is not None and is_current(comp):
                self._entries.move_to_end(key)
                return comp
        comp = build()
        with self._lock:
            self._entries[key] = comp
            self._entries.move_to_end(key)
            while len(self._entries) > self._maxsize:
                self._entries.popitem(last=False)
        return comp

    def __len__(self) -> int:
        return len(self._entries)


class ServiceAdapter(abc.ABC):
    """Interface between the generic AccuracyTrader pipeline and a service."""

    # -- offline: creation --------------------------------------------

    @abc.abstractmethod
    def record_ids(self, partition) -> np.ndarray:
        """Ids of the original data points in the partition (dense 0..n-1)."""

    @abc.abstractmethod
    def svd_triples(self, partition, record_ids=None):
        """(local_rows, cols, vals, n_rows, n_cols) for SVD fitting.

        With ``record_ids`` given, rows are local to that subset in order
        (the layout FunkSVD fold-in/refit expects).
        """

    def postprocess_reduced(self, factors: np.ndarray) -> np.ndarray:
        """Hook applied to SVD row factors before R-tree grouping.

        Default: identity.  Services whose similarity measure is
        scale-invariant (e.g. Pearson-based CF) override this to project
        points onto a common scale so the R-tree groups by direction.
        """
        return factors

    @abc.abstractmethod
    def aggregate_group(self, partition, member_ids) -> Any:
        """Step-3 aggregation of one group; returns an opaque group vector."""

    @abc.abstractmethod
    def assemble_payload(self, partition, group_vectors: list) -> Any:
        """Combine per-group vectors into the query-able synopsis payload."""

    def payload_group_vector(self, payload, group_id: int) -> Any:
        """Recover group ``group_id``'s step-3 vector from a payload.

        The exact inverse of :meth:`assemble_payload` for one slot:
        feeding the recovered vectors back through ``assemble_payload``
        must reproduce the payload bit-identically (under pickling).
        Semantic state deltas use this to rebuild unchanged groups from
        the receiver's base snapshot instead of shipping them.  Adapters
        that cannot invert their payload simply leave this unimplemented
        — callers fall back to byte-level deltas.
        """
        raise NotImplementedError(
            f"{type(self).__name__} cannot recover group vectors "
            "from its payload")

    # -- online: Algorithm 1 -------------------------------------------

    @abc.abstractmethod
    def initial_result(self, synopsis, request) -> tuple[Any, np.ndarray]:
        """Process the synopsis: (result state, per-group correlations)."""

    def initial_result_batch(self, synopsis, requests) -> list[tuple[Any, np.ndarray]]:
        """Stage 1 for a whole batch of requests against one synopsis.

        Adapters override this when they can answer a coalesced dispatch
        batch in one vectorized pass; results must be bit-identical to
        per-request :meth:`initial_result` calls, with fully independent
        state objects per request.  Default: the per-request loop.
        """
        return [self.initial_result(synopsis, request)
                for request in requests]

    @abc.abstractmethod
    def refine(self, partition, synopsis, group_id: int, request, state) -> Any:
        """Improve the result state with group ``group_id``'s originals."""

    @abc.abstractmethod
    def finalize(self, state, request) -> Any:
        """Turn internal result state into the component's answer."""

    @abc.abstractmethod
    def exact(self, partition, request) -> Any:
        """Full computation over the entire partition (baselines/ground truth)."""

    # -- work accounting -------------------------------------------------

    @abc.abstractmethod
    def synopsis_work(self, synopsis) -> float:
        """Work units to process the synopsis (stage-1 cost)."""

    @abc.abstractmethod
    def group_work(self, synopsis, group_id: int) -> float:
        """Work units to process one group's original points."""

    @abc.abstractmethod
    def full_work(self, partition) -> float:
        """Work units for exact processing of the whole partition."""


# ---------------------------------------------------------------------------
# Collaborative filtering
# ---------------------------------------------------------------------------


@dataclass
class CFRequest:
    """An active user asking for rating predictions on target items.

    ``active_items``/``active_vals`` are the user's known ratings (sorted
    by item id); ``target_items`` are the items to predict.
    """

    active_items: np.ndarray
    active_vals: np.ndarray
    target_items: list[int]
    active_mean: float = field(init=False)

    def __post_init__(self) -> None:
        self.active_items = np.asarray(self.active_items, dtype=np.int64)
        self.active_vals = np.asarray(self.active_vals, dtype=float)
        if self.active_items.shape != self.active_vals.shape:
            raise ValueError("active items/vals length mismatch")
        order = np.argsort(self.active_items)
        self.active_items = self.active_items[order]
        self.active_vals = self.active_vals[order]
        self.target_items = [int(i) for i in self.target_items]
        self.active_mean = float(self.active_vals.mean()) if self.active_vals.size else 0.0


@dataclass
class CFStage1State:
    """Vectorized Algorithm 1 state for one CF request on one component.

    The per-group synopsis contributions live in dense ``(m, T)`` arrays
    (groups x unique target items) instead of one ``CFPrediction`` dict
    per group; refined groups are recorded as sparse ``overrides`` whose
    exact partial sums replace their synopsis row at :meth:`merge` time.
    Bit-identical to the dict-of-predictions representation (which the
    scalar oracle still produces): scatter fills the same single-product
    cells, and the merge accumulates each item's column with ``bincount``
    in the same ascending group order ``finalize``'s absorb loop used.

    Supports enough of the mapping protocol (iteration over group ids,
    ``state[g]`` materialising that group's ``CFPrediction``) to stay
    introspectable.
    """

    active_mean: float
    targets: np.ndarray   # sorted unique target items, shape (T,)
    numer: np.ndarray     # (m, T) synopsis partial numerators
    denom: np.ndarray     # (m, T) synopsis partial denominators
    present: np.ndarray   # (m, T) bool: group contributed to the item
    overrides: dict[int, CFPrediction] = field(default_factory=dict)

    @staticmethod
    def zeros(active_mean: float, targets: np.ndarray,
              m: int) -> "CFStage1State":
        t = targets.size
        return CFStage1State(
            active_mean=active_mean, targets=targets,
            numer=np.zeros((m, t)), denom=np.zeros((m, t)),
            present=np.zeros((m, t), dtype=bool))

    def __len__(self) -> int:
        return self.numer.shape[0]

    def __iter__(self):
        return iter(range(self.numer.shape[0]))

    def __getitem__(self, group_id: int) -> CFPrediction:
        pred = self.overrides.get(group_id)
        if pred is not None:
            return pred
        pred = CFPrediction(active_mean=self.active_mean)
        for t in np.flatnonzero(self.present[group_id]).tolist():
            item = int(self.targets[t])
            pred.numer[item] = float(self.numer[group_id, t])
            pred.denom[item] = float(self.denom[group_id, t])
        return pred

    def merge(self) -> CFPrediction:
        """All groups' contributions merged, refined rows overriding.

        Each item's column is accumulated with ``bincount`` over
        group-major keys — strictly ascending group order, exactly the
        order the sequential absorb loop adds contributions in, so the
        sums are bit-identical.
        """
        merged = CFPrediction(active_mean=self.active_mean)
        m, t = self.numer.shape
        if m == 0 or t == 0:
            return merged
        numer, denom, present = self.numer, self.denom, self.present
        if self.overrides:
            numer, denom = numer.copy(), denom.copy()
            present = present.copy()
            slot = {int(item): k for k, item in
                    enumerate(self.targets.tolist())}
            for g, pred in self.overrides.items():
                numer[g] = 0.0
                denom[g] = 0.0
                present[g] = False
                for item, nv in pred.numer.items():
                    k = slot[item]
                    numer[g, k] = nv
                    denom[g, k] = pred.denom[item]
                    present[g, k] = True
        keys = np.tile(np.arange(t), m)
        tot_n = np.bincount(keys, weights=numer.ravel(), minlength=t)
        tot_d = np.bincount(keys, weights=denom.ravel(), minlength=t)
        for k in np.flatnonzero(present.any(axis=0)).tolist():
            item = int(self.targets[k])
            merged.numer[item] = float(tot_n[k])
            merged.denom[item] = float(tot_d[k])
        return merged


class CFAdapter(ServiceAdapter):
    """Adapter for the user-based CF recommender.

    Original data points are users; an aggregated user's rating on item i
    is the mean rating of its members who rated i; the correlation of an
    aggregated user to a request is |Pearson weight| against the active
    user (§2.3: high |w| marks highly related users).
    """

    def __init__(self) -> None:
        self._components = _ComponentMemo()

    def __getstate__(self):
        # The component cache is a per-process memo keyed by object id;
        # shipping it across process boundaries would be both useless
        # (ids don't survive) and heavy (it holds whole matrices).
        return {}

    def __setstate__(self, state):
        del state
        self._components = _ComponentMemo()

    def _component(self, matrix: RatingMatrix) -> CFComponent:
        return self._components.get(
            matrix, lambda comp: comp.matrix is matrix,
            lambda: CFComponent(matrix))

    # -- offline -------------------------------------------------------

    def record_ids(self, partition: RatingMatrix) -> np.ndarray:
        return np.arange(partition.n_users, dtype=np.int64)

    def svd_triples(self, partition: RatingMatrix, record_ids=None):
        # Ratings are mean-centred per user before reduction: Pearson-style
        # CF similarity is invariant to a user's rating bias, so grouping
        # users by *taste* requires removing the bias first — otherwise the
        # first latent dimension merely encodes how generously a user rates
        # and the R-tree groups generous users with generous users.
        if record_ids is None:
            users, items, vals = partition.to_triples()
            means = np.array([partition.user_mean(u) for u in range(partition.n_users)])
            return users, items, vals - means[users], partition.n_users, partition.n_items
        record_ids = np.asarray(record_ids, dtype=np.int64)
        rows_l, cols_l, vals_l = [], [], []
        for local, u in enumerate(record_ids):
            ids, vals = partition.user_ratings(int(u))
            rows_l.append(np.full(ids.size, local, dtype=np.int64))
            cols_l.append(ids)
            vals_l.append(vals - (vals.mean() if vals.size else 0.0))
        rows = np.concatenate(rows_l) if rows_l else np.empty(0, dtype=np.int64)
        cols = np.concatenate(cols_l) if cols_l else np.empty(0, dtype=np.int64)
        vals = np.concatenate(vals_l) if vals_l else np.empty(0, dtype=float)
        return rows, cols, vals, record_ids.size, partition.n_items

    def postprocess_reduced(self, factors: np.ndarray) -> np.ndarray:
        # Pearson similarity is invariant to rating scale, so users should
        # be grouped by taste *direction*: L2-normalise each reduced row
        # (zero rows — users with no signal — stay at the origin).
        norms = np.linalg.norm(factors, axis=1, keepdims=True)
        return np.divide(factors, norms, out=np.zeros_like(factors),
                         where=norms > 0)

    def aggregate_group(self, partition: RatingMatrix, member_ids):
        return aggregate_group(partition, member_ids)  # (item_ids, means)

    def assemble_payload(self, partition: RatingMatrix, group_vectors: list):
        users_l, items_l, vals_l = [], [], []
        for g, (ids, means) in enumerate(group_vectors):
            users_l.append(np.full(len(ids), g, dtype=np.int64))
            items_l.append(np.asarray(ids, dtype=np.int64))
            vals_l.append(np.asarray(means, dtype=float))
        if users_l:
            users = np.concatenate(users_l)
            items = np.concatenate(items_l)
            vals = np.concatenate(vals_l)
        else:
            users = items = np.empty(0, dtype=np.int64)
            vals = np.empty(0, dtype=float)
        agg = RatingMatrix(users, items, vals,
                           n_users=len(group_vectors), n_items=partition.n_items)
        return CFComponent(agg)

    def payload_group_vector(self, payload: "CFComponent", group_id: int):
        # aggregate_group returns (sorted item ids, means); the CSR rows
        # of the aggregated matrix store exactly those pairs per group.
        ids, means = payload.matrix.user_ratings(int(group_id))
        return np.asarray(ids, dtype=np.int64), np.asarray(means, dtype=float)

    # -- online ----------------------------------------------------------

    def initial_result(self, synopsis, request: CFRequest):
        payload: CFComponent = synopsis.payload
        weights = payload.weights_for(request.active_items, request.active_vals,
                                      np.arange(payload.n_users))
        return self._stage1_state(payload, weights, request), np.abs(weights)

    def initial_result_batch(self, synopsis, requests):
        """Vectorized stage 1 for a whole batch: one Pearson sweep of the
        aggregated matrix answers every request (bit-identical to
        per-request :meth:`initial_result`)."""
        from repro.recommender import similarity

        payload: CFComponent = synopsis.payload
        weights = similarity.pearson_weights_batch(
            payload.matrix,
            [(r.active_items, r.active_vals) for r in requests])
        return [(self._stage1_state(payload, weights[k], request),
                 np.abs(weights[k]))
                for k, request in enumerate(requests)]

    @staticmethod
    def _stage1_state(payload: CFComponent, weights: np.ndarray,
                      request: CFRequest) -> CFStage1State:
        """Per-group synopsis contributions on the target items.

        Each aggregated user rates an item at most once, so every
        (group, target) cell is a single product — one gather over the
        aggregated matrix scatters all groups' partial sums straight
        into the dense :class:`CFStage1State` arrays.
        """
        matrix = payload.matrix
        m = payload.n_users
        targets = (np.unique(np.asarray(request.target_items, dtype=np.int64))
                   if request.target_items else np.empty(0, dtype=np.int64))
        state = CFStage1State.zeros(request.active_mean, targets, m)
        if targets.size == 0 or matrix.nnz == 0:
            return state
        items = matrix.item_ids
        pos = np.searchsorted(targets, items)
        hit = targets[np.minimum(pos, targets.size - 1)] == items
        if not np.any(hit):
            return state
        gh = np.repeat(np.arange(m), np.diff(matrix.indptr))[hit]
        keep = weights[gh] != 0.0
        gh = gh[keep]
        wh = weights[gh]
        th = pos[hit][keep]
        state.numer[gh, th] = wh * (matrix.values[hit][keep]
                                    - payload.user_means[gh])
        state.denom[gh, th] = np.abs(wh)
        state.present[gh, th] = True
        return state

    def initial_result_scalar(self, synopsis, request: CFRequest):
        """Per-group reference loop for :meth:`initial_result` (oracle)."""
        payload: CFComponent = synopsis.payload
        m = payload.n_users
        weights = payload.weights_for(request.active_items, request.active_vals,
                                      np.arange(m))
        correlations = np.abs(weights)
        state: dict[int, CFPrediction] = {}
        target_set = set(request.target_items)
        for g in range(m):
            w = weights[g]
            contrib = CFPrediction(active_mean=request.active_mean)
            if w != 0.0:
                ids, vals = payload.matrix.user_ratings(g)
                mean_g = payload.user_means[g]
                for item, r in zip(ids.tolist(), vals.tolist()):
                    if item in target_set:
                        contrib.numer[item] = contrib.numer.get(item, 0.0) + w * (r - mean_g)
                        contrib.denom[item] = contrib.denom.get(item, 0.0) + abs(w)
            state[g] = contrib
        return state, correlations

    def refine(self, partition: RatingMatrix, synopsis, group_id: int,
               request: CFRequest, state):
        comp = self._component(partition)
        members = synopsis.index.members(group_id)
        pred = comp.partial_prediction(
            request.active_items, request.active_vals, request.target_items,
            request.active_mean, user_ids=members,
        )
        if isinstance(state, CFStage1State):
            state.overrides[group_id] = pred
        else:  # the scalar oracle's dict-of-predictions representation
            state[group_id] = pred
        return state

    def finalize(self, state, request: CFRequest) -> CFPrediction:
        if isinstance(state, CFStage1State):
            return state.merge()
        merged = CFPrediction(active_mean=request.active_mean)
        for contrib in state.values():
            merged.absorb(contrib)
        return merged

    def exact(self, partition: RatingMatrix, request: CFRequest) -> CFPrediction:
        comp = self._component(partition)
        return comp.partial_prediction(
            request.active_items, request.active_vals, request.target_items,
            request.active_mean,
        )

    # -- work --------------------------------------------------------------

    def synopsis_work(self, synopsis) -> float:
        return float(synopsis.n_aggregated)

    def group_work(self, synopsis, group_id: int) -> float:
        return float(synopsis.index.members(group_id).size)

    def full_work(self, partition: RatingMatrix) -> float:
        return float(partition.n_users)


# ---------------------------------------------------------------------------
# Web search
# ---------------------------------------------------------------------------


@dataclass
class SearchQuery:
    """A tokenised query asking for the top-k pages."""

    terms: list[str]
    k: int = 10

    def __post_init__(self) -> None:
        self.terms = [str(t) for t in self.terms]
        if self.k < 1:
            raise ValueError("k must be >= 1")


class SearchAdapter(ServiceAdapter):
    """Adapter for the TF-IDF web search engine.

    Original data points are pages; an aggregated page is the bag-union of
    its members' contents; the correlation of an aggregated page to a
    query is its similarity score (§2.3).
    """

    def __init__(self) -> None:
        self._components = _ComponentMemo()

    def __getstate__(self):
        # See CFAdapter.__getstate__: the memo is per-process only.
        return {}

    def __setstate__(self, state):
        del state
        self._components = _ComponentMemo()

    def _component(self, partition: SearchPartition) -> SearchComponent:
        return self._components.get(
            partition, lambda comp: comp.index is partition.index,
            lambda: SearchComponent(partition.index))

    # -- offline -------------------------------------------------------

    def record_ids(self, partition: SearchPartition) -> np.ndarray:
        return np.arange(partition.n_docs, dtype=np.int64)

    def svd_triples(self, partition: SearchPartition, record_ids=None):
        if record_ids is None:
            rows, cols, vals = partition.matrix.triples()
            return rows, cols, vals, partition.matrix.n_docs, partition.matrix.n_terms
        record_ids = [int(r) for r in record_ids]
        rows, cols, vals = partition.matrix.triples(record_ids)
        return rows, cols, vals, len(record_ids), partition.matrix.n_terms

    def aggregate_group(self, partition: SearchPartition, member_ids):
        counts: dict[str, int] = {}
        for d in member_ids:
            for t in partition.tokens_of(int(d)):
                counts[t] = counts.get(t, 0) + 1
        return counts

    def assemble_payload(self, partition: SearchPartition, group_vectors: list):
        from repro.search.index import InvertedIndex

        synopsis_index = InvertedIndex()
        for g, counts in enumerate(group_vectors):
            synopsis_index.add_document_counts(g, counts)
        return SearchComponent(synopsis_index)

    def payload_group_vector(self, payload: "SearchComponent", group_id: int):
        # aggregate_group returns a term-count bag; the synopsis index
        # stores each group's bag verbatim (add_document_counts keeps
        # insertion order and drops nothing for positive counts).
        return payload.index.document_counts(int(group_id))

    # -- online ----------------------------------------------------------

    def initial_result(self, synopsis, request: SearchQuery):
        payload: SearchComponent = synopsis.payload
        hits = payload.search(request.terms)
        return self._stage1_from_hits(synopsis, hits)

    def initial_result_batch(self, synopsis, requests):
        """Vectorized stage 1 for a batch: one scoring pass over the
        synopsis index answers every query (bit-identical to per-request
        :meth:`initial_result`)."""
        from repro.search.scoring import score_queries

        payload: SearchComponent = synopsis.payload
        score_maps = score_queries(payload.index,
                                   [r.terms for r in requests])
        out = []
        for scores in score_maps:
            hits = [SearchHit.make(d, s) for d, s in scores.items()]
            hits.sort()
            out.append(self._stage1_from_hits(synopsis, hits))
        return out

    @staticmethod
    def _stage1_from_hits(synopsis, hits: list[SearchHit]):
        m = synopsis.n_aggregated
        correlations = np.zeros(m)
        # Initial approximate result: members of matching groups inherit
        # their group's score (the synopsis cannot distinguish members
        # yet).  Stored as one ``(members, score)`` pair per group — all
        # members share the group score, so per-member hit objects are
        # deferred to the few pad slots :meth:`finalize` actually fills.
        estimates: dict[int, tuple[np.ndarray, float]] = {
            g: (_NO_MEMBERS, 0.0) for g in range(m)}
        for h in hits:
            correlations[h.doc_id] = h.score
            estimates[h.doc_id] = (synopsis.index.members(h.doc_id),
                                   h.score)
        state = {"refined": {}, "estimated": estimates}
        return state, correlations

    def refine(self, partition: SearchPartition, synopsis, group_id: int,
               request: SearchQuery, state):
        comp = self._component(partition)
        members = synopsis.index.members(group_id)
        # Exact per-page scores supersede the group's estimate entirely.
        state["refined"][group_id] = comp.search(request.terms,
                                                 doc_ids=members)
        state["estimated"].pop(group_id, None)
        return state

    def finalize(self, state, request: SearchQuery) -> list[SearchHit]:
        """Top-k preferring exact (refined) scores over synopsis estimates.

        Estimated hits carry their whole group's aggregated score, which
        can exceed any individual page's exact score; letting them compete
        directly would allow one coarse unrefined group to crowd out
        exactly-scored answers.  They are therefore only used to pad the
        tail when fewer than k refined hits exist — exactly the "initial
        result, then improve" semantics of Algorithm 1.
        """
        refined = merge_topk(state["refined"].values(), request.k)
        if len(refined) >= request.k:
            return refined
        need = request.k - len(refined)
        # Expand the lazy (members, score) estimates only for the top
        # `need` pad slots: every member of a group shares the group's
        # score and a doc belongs to exactly one group, so one lexsort
        # over (neg score, doc id) is the same total order merge_topk
        # would produce over fully materialised member hits.
        groups = [(members, score) for members, score
                  in state["estimated"].values() if members.size]
        pad: list[SearchHit] = []
        if need > 0 and groups:
            ids = np.concatenate([members for members, _ in groups])
            neg = np.concatenate([np.full(members.size, -float(score))
                                  for members, score in groups])
            top = np.lexsort((ids, neg))[:need]
            pad = [SearchHit(neg_score=float(neg[i]), doc_id=int(ids[i]))
                   for i in top.tolist()]
        seen = {h.doc_id for h in refined}
        return refined + [h for h in pad if h.doc_id not in seen]

    def exact(self, partition: SearchPartition, request: SearchQuery) -> list[SearchHit]:
        comp = self._component(partition)
        return comp.search(request.terms, k=request.k)

    # -- work --------------------------------------------------------------

    def synopsis_work(self, synopsis) -> float:
        return float(synopsis.n_aggregated)

    def group_work(self, synopsis, group_id: int) -> float:
        return float(synopsis.index.members(group_id).size)

    def full_work(self, partition: SearchPartition) -> float:
        return float(partition.n_docs)
