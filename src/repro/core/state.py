"""The epoch-versioned state plane: where component snapshots live.

Serving separates two planes.  The *request plane* moves small, cheap
objects — requests, deadlines, clocks — once per request.  The *state
plane* moves big, expensive objects — each component's ``(partition,
synopsis)`` pair — and should move them once per **update**, not once
per request.  This module is the state plane's home:

- :class:`ComponentState` — one component's immutable published
  snapshot, a ``(partition, synopsis)`` pair never mutated after
  publication (copy-on-swap).
- :class:`StateStore` — publishes snapshots tagged with monotonically
  increasing :data:`StateEpoch` ids.  ``publish`` is the only write;
  readers see either the previous epoch or the new one, never a torn
  mix.  A bounded per-component history keeps recently superseded
  epochs resolvable for requests still draining against them.
- :class:`StateRef` — a by-reference handle ``(store, component,
  epoch)`` that execution backends resolve at run time.  Refs *pin*
  their snapshot: a ref taken at dispatch always resolves to exactly
  the dispatch-time state, even if the store has since evicted that
  epoch from its history — so an in-flight request can never observe a
  newer (or torn) state than the one it was dispatched against.

Execution backends consume refs differently:

- in-process backends (sequential / thread / async) resolve a ref to
  its pinned published snapshot — a pointer indirection, no copies, no
  locks on the per-task hot path;
- the vanilla process-pool backend materialises the snapshot into each
  pickled task (state cost scales with *request* rate);
- :class:`~repro.serving.backends.PersistentProcessBackend` ships a
  snapshot to its workers at most once per epoch and sends only the
  small detached ref per task (state cost scales with *update* rate).
"""

from __future__ import annotations

import threading
import uuid
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

from repro.core.synopsis import Synopsis

__all__ = ["StateEpoch", "ComponentState", "StateRef", "StateStore",
           "StaleEpochError"]

# Epoch ids are plain ints: one per-store counter, strictly increasing
# across *all* components, so epoch order is publication order.
StateEpoch = int


class StaleEpochError(KeyError):
    """The requested epoch has been evicted from the store's history."""


@dataclass(frozen=True)
class ComponentState:
    """Immutable published state of one component.

    Requests capture one reference to this pair; updates replace the
    whole object rather than mutating it (copy-on-swap).
    """

    partition: Any
    synopsis: Synopsis


@dataclass(frozen=True)
class StateRef:
    """A by-reference handle to one published component snapshot.

    ``store`` is the in-process handle used for resolution; ``pinned``
    is the snapshot current when the ref was taken, kept so resolution
    never fails for a ref outliving the store's bounded history.  A
    *detached* ref (``store is None``, ``pinned is None``) carries only
    the identity triple and pickles to a few dozen bytes — the form the
    persistent process backend ships per task, resolved worker-side
    from a per-epoch cache.
    """

    store_id: str
    component: int
    epoch: StateEpoch
    store: "StateStore | None" = field(default=None, repr=False,
                                       compare=False)
    pinned: ComponentState | None = field(default=None, repr=False,
                                          compare=False)

    @property
    def key(self) -> tuple[str, int, StateEpoch]:
        """Globally unique identity of the referenced snapshot."""
        return (self.store_id, self.component, self.epoch)

    def detached(self) -> "StateRef":
        """The identity-only form of this ref (picklable, tiny)."""
        return StateRef(store_id=self.store_id, component=self.component,
                        epoch=self.epoch)

    def resolve(self) -> ComponentState:
        """The referenced snapshot — always the dispatch-time state.

        The pinned snapshot *is* the published one (``StateStore.ref``
        captures ``(epoch, state)`` atomically and snapshots are
        immutable), so resolution is lock-free on the per-task hot
        path; pinless refs go through the store's history.  Detached
        refs cannot self-resolve — the owning backend resolves them
        against its worker-side cache.
        """
        if self.pinned is not None:
            return self.pinned
        if self.store is not None:
            return self.store.get(self.component, self.epoch)
        raise StaleEpochError(
            f"detached ref {self.key} cannot resolve in-process; "
            "persistent workers resolve it from their epoch cache")


class StateStore:
    """Publishes immutable per-component snapshots under epoch ids.

    One store backs one service deployment: ``publish`` swaps in a new
    :class:`ComponentState` for a component and returns its fresh
    :data:`StateEpoch`; ``ref`` hands out pinned references for
    dispatch.  All operations are thread-safe, and a publish is a
    single swap under the store lock — concurrent readers observe the
    old epoch or the new one, never a mix.

    Parameters
    ----------
    retain:
        Superseded epochs kept resolvable per component (beyond the
        current one).  Bounds store memory under sustained updates;
        refs pinned to older epochs still resolve via their own pin,
        so eviction can never break an in-flight request.
    """

    def __init__(self, retain: int = 8):
        if retain < 0:
            raise ValueError("retain must be non-negative")
        self.store_id = uuid.uuid4().hex
        self.retain = int(retain)
        self._lock = threading.Lock()
        self._epoch_counter = 0
        # component -> epoch -> state, oldest epoch first.
        self._history: dict[int, OrderedDict[StateEpoch, ComponentState]] = {}

    # ------------------------------------------------------------------

    @property
    def n_components(self) -> int:
        return len(self._history)

    def components(self) -> list[int]:
        with self._lock:
            return sorted(self._history)

    def publish(self, component: int, state: ComponentState) -> StateEpoch:
        """Swap in ``state`` as ``component``'s current snapshot.

        Returns the new snapshot's epoch id.  Epochs increase strictly
        across all components of this store, so they double as a total
        order on updates.
        """
        if not isinstance(state, ComponentState):
            raise TypeError(f"expected a ComponentState, got {state!r}")
        with self._lock:
            self._epoch_counter += 1
            epoch = self._epoch_counter
            history = self._history.setdefault(int(component), OrderedDict())
            history[epoch] = state
            while len(history) > self.retain + 1:
                history.popitem(last=False)
            return epoch

    def current(self, component: int) -> tuple[StateEpoch, ComponentState]:
        """``component``'s current ``(epoch, state)`` pair."""
        with self._lock:
            history = self._require(component)
            epoch = next(reversed(history))
            return epoch, history[epoch]

    def current_epoch(self, component: int) -> StateEpoch:
        return self.current(component)[0]

    def current_state(self, component: int) -> ComponentState:
        return self.current(component)[1]

    def get(self, component: int, epoch: StateEpoch) -> ComponentState:
        """The snapshot ``component`` published as ``epoch``.

        Raises :class:`StaleEpochError` if the epoch has been evicted
        from the bounded history (or never existed).
        """
        with self._lock:
            history = self._require(component)
            state = history.get(epoch)
        if state is None:
            raise StaleEpochError(
                f"component {component} epoch {epoch} is not in the "
                f"store's history (retain={self.retain})")
        return state

    def ref(self, component: int) -> StateRef:
        """A pinned reference to ``component``'s current snapshot."""
        epoch, state = self.current(component)
        return StateRef(store_id=self.store_id, component=int(component),
                        epoch=epoch, store=self, pinned=state)

    def epochs(self, component: int) -> list[StateEpoch]:
        """Epochs currently resolvable for ``component``, oldest first."""
        with self._lock:
            return list(self._require(component))

    # ------------------------------------------------------------------

    def _require(self, component: int) -> OrderedDict:
        history = self._history.get(int(component))
        if not history:
            raise KeyError(f"component {component} has no published state")
        return history
