"""The epoch-versioned state plane: where component snapshots live.

Serving separates two planes.  The *request plane* moves small, cheap
objects — requests, deadlines, clocks — once per request.  The *state
plane* moves big, expensive objects — each component's ``(partition,
synopsis)`` pair — and should move them once per **update**, not once
per request.  This module is the state plane's home:

- :class:`ComponentState` — one component's immutable published
  snapshot, a ``(partition, synopsis)`` pair never mutated after
  publication (copy-on-swap).
- :class:`StateStore` — publishes snapshots tagged with monotonically
  increasing :data:`StateEpoch` ids.  ``publish`` is the only write;
  readers see either the previous epoch or the new one, never a torn
  mix.  A bounded per-component history keeps recently superseded
  epochs resolvable for requests still draining against them.
- :class:`StateRef` — a by-reference handle ``(store, component,
  epoch)`` that execution backends resolve at run time.  Refs *pin*
  their snapshot: a ref taken at dispatch always resolves to exactly
  the dispatch-time state, even if the store has since evicted that
  epoch from its history — so an in-flight request can never observe a
  newer (or torn) state than the one it was dispatched against.

Execution backends consume refs differently:

- in-process backends (sequential / thread / async) resolve a ref to
  its pinned published snapshot — a pointer indirection, no copies, no
  locks on the per-task hot path;
- the vanilla process-pool backend materialises the snapshot into each
  pickled task (state cost scales with *request* rate);
- :class:`~repro.serving.backends.PersistentProcessBackend` ships a
  snapshot to its workers at most once per epoch and sends only the
  small detached ref per task (state cost scales with *update* rate);
- :class:`~repro.serving.transport.RemoteBackend` goes one step
  further for sockets: consecutive epochs travel as **deltas** (see
  :func:`compute_delta` / :func:`apply_delta` below), so state traffic
  scales with *update size*, not synopsis size.

Delta epochs
------------

:func:`compute_delta` diffs two serialized snapshots at the byte level
with content-defined chunking (CDC): each blob is cut at positions
where a rolling fingerprint of the trailing window matches a mask, so
chunk boundaries depend only on local content and re-synchronise after
insertions/deletions.  The delta replays the target as copy-ops (a
16-byte digest naming a chunk the receiver already holds in the base)
plus literal runs (bytes only the target has).  A byte-level diff was
chosen over a structured synopsis diff deliberately: the update API
replaces *partitions* wholesale (``add_points`` / ``change_points`` /
``replace_partition`` all pass the full new partition), so only a
representation-agnostic diff covers both halves of a
:class:`ComponentState` — and the synopsis updater's re-aggregation
touches only changed group vectors, which is exactly the locality CDC
recovers from the pickled bytes.  :func:`apply_delta` verifies chunk
digests and a whole-blob checksum, so a reconstructed snapshot is
**bit-identical** to the published one or the transfer fails loudly.

Semantic deltas
---------------

CDC is content-agnostic: it rediscovers an update's locality from the
pickled bytes.  But the synopsis updater already *knows* which group
slots it re-aggregated — :class:`~repro.core.updater.UpdateReport`
carries them — so when a publish attaches an :class:`UpdateHint`, the
wire tier can build a :func:`compute_semantic_delta` instead: ship only
the changed group vectors (plus a partition diff) and let the receiver
re-assemble the synopsis from its base copy.  Semantic deltas are
verified end-to-end twice — the sender replays
:func:`apply_semantic_delta` against the base blob and falls back to
CDC unless the reconstruction is byte-equal to the target, and the
receiver checks the whole-blob digest — so they are an optimisation,
never a correctness risk.
"""

from __future__ import annotations

import hashlib
import pickle
import threading
import uuid
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.synopsis import IndexFile, Synopsis

__all__ = ["StateEpoch", "ComponentState", "StateRef", "StateStore",
           "StaleEpochError", "StateDelta", "DeltaMismatchError",
           "blob_digest", "chunk_blob", "compute_delta", "apply_delta",
           "PICKLE_PROTOCOL", "UpdateHint", "SemanticDelta",
           "compute_semantic_delta", "apply_semantic_delta"]

# Every serialized snapshot (and every wire frame) is pickled with this
# pinned protocol so sender- and receiver-side re-serialisations of the
# same object graph produce the same bytes — the property semantic-delta
# digest verification relies on.  Pinned rather than "whatever the
# interpreter defaults to" so mixed-version deployments agree.
PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL

# Epoch ids are plain ints: one per-store counter, strictly increasing
# across *all* components, so epoch order is publication order.
StateEpoch = int


class StaleEpochError(KeyError):
    """The requested epoch has been evicted from the store's history."""


@dataclass(frozen=True)
class ComponentState:
    """Immutable published state of one component.

    Requests capture one reference to this pair; updates replace the
    whole object rather than mutating it (copy-on-swap).
    """

    partition: Any
    synopsis: Synopsis


@dataclass(frozen=True)
class StateRef:
    """A by-reference handle to one published component snapshot.

    ``store`` is the in-process handle used for resolution; ``pinned``
    is the snapshot current when the ref was taken, kept so resolution
    never fails for a ref outliving the store's bounded history.  A
    *detached* ref (``store is None``, ``pinned is None``) carries only
    the identity triple and pickles to a few dozen bytes — the form the
    persistent process backend ships per task, resolved worker-side
    from a per-epoch cache.
    """

    store_id: str
    component: int
    epoch: StateEpoch
    store: "StateStore | None" = field(default=None, repr=False,
                                       compare=False)
    pinned: ComponentState | None = field(default=None, repr=False,
                                          compare=False)

    @property
    def key(self) -> tuple[str, int, StateEpoch]:
        """Globally unique identity of the referenced snapshot."""
        return (self.store_id, self.component, self.epoch)

    def detached(self) -> "StateRef":
        """The identity-only form of this ref (picklable, tiny)."""
        return StateRef(store_id=self.store_id, component=self.component,
                        epoch=self.epoch)

    def resolve(self) -> ComponentState:
        """The referenced snapshot — always the dispatch-time state.

        The pinned snapshot *is* the published one (``StateStore.ref``
        captures ``(epoch, state)`` atomically and snapshots are
        immutable), so resolution is lock-free on the per-task hot
        path; pinless refs go through the store's history.  Detached
        refs cannot self-resolve — the owning backend resolves them
        against its worker-side cache.
        """
        if self.pinned is not None:
            return self.pinned
        if self.store is not None:
            return self.store.get(self.component, self.epoch)
        raise StaleEpochError(
            f"detached ref {self.key} cannot resolve in-process; "
            "persistent workers resolve it from their epoch cache")


@dataclass(frozen=True)
class UpdateHint:
    """What an epoch transition changed, in synopsis terms.

    Attached to :meth:`StateStore.publish` by the service layer when the
    new snapshot came out of the incremental updater.  ``reaggregated``
    lists the group slots (indices into the *new* synopsis's group
    order) whose aggregates were recomputed; ``index_changed`` says the
    group membership layout differs from the previous epoch.  The wire
    state plane uses the hint to build semantic deltas; publishes
    without a hint (e.g. ``replace_partition``) simply fall back to
    content-defined byte deltas.
    """

    reaggregated: tuple = ()
    index_changed: bool = False


class StateStore:
    """Publishes immutable per-component snapshots under epoch ids.

    One store backs one service deployment: ``publish`` swaps in a new
    :class:`ComponentState` for a component and returns its fresh
    :data:`StateEpoch`; ``ref`` hands out pinned references for
    dispatch.  All operations are thread-safe, and a publish is a
    single swap under the store lock — concurrent readers observe the
    old epoch or the new one, never a mix.

    Parameters
    ----------
    retain:
        Superseded epochs kept resolvable per component (beyond the
        current one).  Bounds store memory under sustained updates;
        refs pinned to older epochs still resolve via their own pin,
        so eviction can never break an in-flight request.
    """

    def __init__(self, retain: int = 8):
        if retain < 0:
            raise ValueError("retain must be non-negative")
        self.store_id = uuid.uuid4().hex
        self.retain = int(retain)
        self._lock = threading.Lock()
        self._epoch_counter = 0
        # component -> epoch -> state, oldest epoch first.
        self._history: dict[int, OrderedDict[StateEpoch, ComponentState]] = {}
        # component -> epoch -> (previous epoch | None, UpdateHint | None),
        # bounded alongside the history; lets transition_hint() recover
        # the semantic chain between two resolvable epochs.
        self._transitions: dict[
            int, OrderedDict[StateEpoch,
                             tuple[StateEpoch | None, UpdateHint | None]]] = {}

    # ------------------------------------------------------------------

    @property
    def n_components(self) -> int:
        return len(self._history)

    def components(self) -> list[int]:
        with self._lock:
            return sorted(self._history)

    def publish(self, component: int, state: ComponentState,
                hint: "UpdateHint | None" = None) -> StateEpoch:
        """Swap in ``state`` as ``component``'s current snapshot.

        Returns the new snapshot's epoch id.  Epochs increase strictly
        across all components of this store, so they double as a total
        order on updates.  ``hint``, when given, describes what this
        transition changed semantically (see :class:`UpdateHint`);
        backends query it back via :meth:`transition_hint`.
        """
        if not isinstance(state, ComponentState):
            raise TypeError(f"expected a ComponentState, got {state!r}")
        with self._lock:
            self._epoch_counter += 1
            epoch = self._epoch_counter
            history = self._history.setdefault(int(component), OrderedDict())
            prev = next(reversed(history)) if history else None
            history[epoch] = state
            while len(history) > self.retain + 1:
                history.popitem(last=False)
            transitions = self._transitions.setdefault(int(component),
                                                       OrderedDict())
            transitions[epoch] = (prev, hint)
            while len(transitions) > self.retain + 1:
                transitions.popitem(last=False)
            return epoch

    def current(self, component: int) -> tuple[StateEpoch, ComponentState]:
        """``component``'s current ``(epoch, state)`` pair."""
        with self._lock:
            history = self._require(component)
            epoch = next(reversed(history))
            return epoch, history[epoch]

    def current_epoch(self, component: int) -> StateEpoch:
        return self.current(component)[0]

    def current_state(self, component: int) -> ComponentState:
        return self.current(component)[1]

    def get(self, component: int, epoch: StateEpoch) -> ComponentState:
        """The snapshot ``component`` published as ``epoch``.

        Raises :class:`StaleEpochError` if the epoch has been evicted
        from the bounded history (or never existed).
        """
        with self._lock:
            history = self._require(component)
            state = history.get(epoch)
        if state is None:
            raise StaleEpochError(
                f"component {component} epoch {epoch} is not in the "
                f"store's history (retain={self.retain})")
        return state

    def ref(self, component: int) -> StateRef:
        """A pinned reference to ``component``'s current snapshot."""
        epoch, state = self.current(component)
        return StateRef(store_id=self.store_id, component=int(component),
                        epoch=epoch, store=self, pinned=state)

    def epochs(self, component: int) -> list[StateEpoch]:
        """Epochs currently resolvable for ``component``, oldest first."""
        with self._lock:
            return list(self._require(component))

    def transition_hint(self, component: int, base_epoch: StateEpoch,
                        target_epoch: StateEpoch) -> "UpdateHint | None":
        """The composed semantic hint for ``base_epoch → target_epoch``.

        Walks the recorded transition chain backwards from the target.
        A single hinted step returns its hint verbatim (slot indices
        refer to the target's group order, so ``index_changed`` steps
        are still usable).  Multiple steps compose only when *no* step
        changed the membership layout — otherwise intermediate slot
        numbering is meaningless for the target order — by unioning the
        re-aggregated slots.  Returns ``None`` whenever the chain is
        broken, un-hinted, or not safely composable; callers then fall
        back to content-defined byte deltas.
        """
        with self._lock:
            transitions = self._transitions.get(int(component))
            if not transitions:
                return None
            hints: list[UpdateHint] = []
            epoch = target_epoch
            for _ in range(len(transitions) + 1):
                if epoch == base_epoch:
                    break
                entry = transitions.get(epoch)
                if entry is None:
                    return None
                prev, hint = entry
                if prev is None or hint is None:
                    return None
                hints.append(hint)
                epoch = prev
            else:
                return None
        if not hints:
            return None  # base == target: nothing to ship
        if len(hints) == 1:
            return hints[0]
        if any(h.index_changed for h in hints):
            return None
        slots: set[int] = set()
        for h in hints:
            slots.update(int(s) for s in h.reaggregated)
        return UpdateHint(reaggregated=tuple(sorted(slots)),
                          index_changed=False)

    # ------------------------------------------------------------------

    def _require(self, component: int) -> OrderedDict:
        history = self._history.get(int(component))
        if not history:
            raise KeyError(f"component {component} has no published state")
        return history


# ---------------------------------------------------------------------------
# Delta epochs: content-defined binary diffs between serialized snapshots
# ---------------------------------------------------------------------------

# Rolling-fingerprint parameters.  A boundary is declared after any
# _CDC_WINDOW-byte window whose fingerprint matches _CDC_MASK (one
# candidate every ~1 KiB of content on average); _CDC_MIN / _CDC_MAX
# bound realized chunk sizes.  The fingerprint is a windowed sum of
# per-byte random 64-bit values (mod 2^64) — shift-invariant, so
# boundaries depend only on the window's content and re-synchronise
# after inserted or deleted bytes.
_CDC_WINDOW = 48
_CDC_MASK = np.uint64((1 << 10) - 1)
_CDC_MIN = 256
_CDC_MAX = 8192
_CDC_TABLE = np.random.default_rng(0x5EED).integers(
    0, 1 << 64, size=256, dtype=np.uint64)
_DIGEST_SIZE = 16


class DeltaMismatchError(ValueError):
    """A delta was applied against the wrong base, or arrived corrupted."""


def blob_digest(blob: bytes) -> bytes:
    """The whole-blob checksum deltas verify against (blake2b-128)."""
    return hashlib.blake2b(blob, digest_size=_DIGEST_SIZE).digest()


def _chunk_spans(blob: bytes) -> list[tuple[int, int]]:
    """Content-defined ``(start, end)`` spans covering ``blob``."""
    n = len(blob)
    if n == 0:
        return []
    if n <= _CDC_MIN:
        return [(0, n)]
    data = np.frombuffer(blob, dtype=np.uint8)
    values = _CDC_TABLE[data]
    totals = np.cumsum(values, dtype=np.uint64)  # wraps mod 2^64 by design
    windows = totals[_CDC_WINDOW - 1:].copy()
    windows[1:] -= totals[:-_CDC_WINDOW]
    # Candidate cut positions (exclusive ends), sparse by construction.
    cuts = np.nonzero((windows & _CDC_MASK) == _CDC_MASK)[0] + _CDC_WINDOW
    spans: list[tuple[int, int]] = []
    pos = 0
    j = 0
    while pos < n:
        lo, hi = pos + _CDC_MIN, pos + _CDC_MAX
        while j < cuts.size and cuts[j] < lo:
            j += 1
        if j < cuts.size and cuts[j] <= hi:
            cut = int(cuts[j])
            j += 1
        else:
            cut = min(hi, n)
        spans.append((pos, cut))
        pos = cut
    return spans


def chunk_blob(blob: bytes) -> list[tuple[bytes, bytes]]:
    """``(digest, bytes)`` content-defined chunks of ``blob``, in order."""
    return [(hashlib.blake2b(blob[s:e], digest_size=_DIGEST_SIZE).digest(),
             blob[s:e])
            for s, e in _chunk_spans(blob)]


@dataclass(frozen=True)
class StateDelta:
    """A verified byte-level diff from one serialized snapshot to another.

    ``ops`` replays the target left to right: ``("c", digest)`` copies
    the base chunk with that digest; ``("d", bytes)`` inserts literal
    bytes (consecutive literals are coalesced).  ``base_digest`` /
    ``target_digest`` pin both endpoints, so :func:`apply_delta` either
    reconstructs the target bit-identically or raises.
    """

    base_digest: bytes
    target_digest: bytes
    target_size: int
    ops: tuple

    @property
    def literal_bytes(self) -> int:
        """Bytes that travel verbatim (the actual change size)."""
        return sum(len(op[1]) for op in self.ops if op[0] == "d")

    def wire_cost(self) -> int:
        """Approximate serialized size: literals plus per-op overhead."""
        return self.literal_bytes + 24 * len(self.ops) + 2 * _DIGEST_SIZE


def compute_delta(base: bytes, target: bytes) -> StateDelta:
    """Diff ``base`` → ``target`` over content-defined chunks.

    Any target chunk whose digest appears in the base becomes a copy
    op; everything else travels as literal bytes.  An unchanged prefix
    and suffix therefore cost one digest per ~1 KiB chunk, and the
    literal payload scales with the size of the actual edit — the
    property the socket state plane needs (state traffic ~ update
    size, not synopsis size).
    """
    base_digests = {digest for digest, _ in chunk_blob(base)}
    ops: list[tuple] = []
    literal = bytearray()
    for digest, chunk in chunk_blob(target):
        if digest in base_digests:
            if literal:
                ops.append(("d", bytes(literal)))
                literal = bytearray()
            ops.append(("c", digest))
        else:
            literal.extend(chunk)
    if literal:
        ops.append(("d", bytes(literal)))
    return StateDelta(base_digest=blob_digest(base),
                      target_digest=blob_digest(target),
                      target_size=len(target), ops=tuple(ops))


def apply_delta(base: bytes, delta: StateDelta) -> bytes:
    """Reconstruct the target blob from ``base`` + ``delta``.

    Raises :class:`DeltaMismatchError` unless ``base`` matches the
    delta's recorded base digest, every copy op resolves, and the
    reconstruction matches the recorded target digest and size —
    the bit-identity guarantee of the wire state plane.
    """
    if blob_digest(base) != delta.base_digest:
        raise DeltaMismatchError(
            "delta applied against the wrong base blob (digest mismatch)")
    chunks = {digest: chunk for digest, chunk in chunk_blob(base)}
    out = bytearray()
    for op in delta.ops:
        if op[0] == "c":
            chunk = chunks.get(op[1])
            if chunk is None:
                raise DeltaMismatchError(
                    "delta copies a chunk the base does not contain")
            out.extend(chunk)
        elif op[0] == "d":
            out.extend(op[1])
        else:
            raise DeltaMismatchError(f"unknown delta op {op[0]!r}")
    result = bytes(out)
    if len(result) != delta.target_size or \
            blob_digest(result) != delta.target_digest:
        raise DeltaMismatchError(
            "delta reconstruction does not match the target checksum")
    return result


# ---------------------------------------------------------------------------
# Semantic deltas: ship only the group vectors an update actually changed
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SemanticDelta:
    """A structured diff between two serialized :class:`ComponentState`\\ s.

    Instead of replaying target *bytes* (CDC), the receiver re-assembles
    the target *object*: reconstruct the partition (``partition`` op),
    recover unchanged group vectors from its base copy of the payload
    via :meth:`~repro.core.adapters.ServiceAdapter.payload_group_vector`,
    take the ``changed`` vectors off the wire, and run the adapter's
    ``assemble_payload``.  For a small edit this costs a few group
    vectors plus a small partition diff, well below a CDC delta (which
    must carry every pickled byte the edit perturbed, pickle framing
    included).

    Verification is two-layered.  The *sender* replays the
    reconstruction itself (:func:`compute_semantic_delta`) and checks
    the result **value-equal** to the published target — index file,
    every recovered group vector (order included), and a byte-pinned
    partition — falling back to CDC on any disagreement.  The
    ``target_digest`` then pins the sender's replay output, so the
    *receiver*'s reconstruction either matches the sender's replay
    byte-for-byte or :func:`apply_semantic_delta` raises.  The applied
    blob (identical on both sides) becomes the base for subsequent
    deltas.  It is not byte-identical to the sender's own pickled
    snapshot — pickle memoisation makes that unattainable — but it
    deserialises to a value-equal state, which is what bit-identical
    *serving results* require.
    """

    adapter: Any                 # stateless ServiceAdapter; pickles tiny
    n_groups: int                # target synopsis group count
    changed: dict                # slot -> target group vector
    groups: tuple | None         # target memberships; None = same as base
    partition: tuple             # ("same", None) | ("delta", StateDelta)
    #                            | ("full", bytes)
    level: int                   # target synopsis level
    n_original: int              # target synopsis n_original
    meta: dict                   # target synopsis meta
    base_digest: bytes
    target_digest: bytes         # digest of the sender's replay output
    target_size: int


def _group_vectors_equal(a, b) -> bool:
    """Value equality for opaque group vectors, iteration order included.

    Order matters: ``assemble_payload`` consumes vectors by iteration,
    so two bags with equal contents but different order can build
    payloads whose float accumulation order differs downstream.
    """
    if isinstance(a, tuple) and isinstance(b, tuple):
        return (len(a) == len(b)
                and all(np.array_equal(np.asarray(x), np.asarray(y))
                        for x, y in zip(a, b)))
    if isinstance(a, dict) and isinstance(b, dict):
        return list(a.items()) == list(b.items())
    return bool(a == b)


def _assemble_semantic(base_blob: bytes, delta: SemanticDelta) -> bytes:
    """The reconstruction both sides run; no final digest check."""
    base_state: ComponentState = pickle.loads(base_blob)
    adapter = delta.adapter
    kind, arg = delta.partition
    if kind == "same":
        partition = base_state.partition
    elif kind == "delta":
        p_base = pickle.dumps(base_state.partition, PICKLE_PROTOCOL)
        partition = pickle.loads(apply_delta(p_base, arg))
    elif kind == "full":
        partition = pickle.loads(arg)
    else:
        raise DeltaMismatchError(f"unknown partition op {kind!r}")
    if delta.groups is not None:
        groups = list(delta.groups)
    else:
        groups = base_state.synopsis.index.groups()
        if len(groups) != delta.n_groups:
            raise DeltaMismatchError(
                "semantic delta group count disagrees with the base index")
    base_payload = base_state.synopsis.payload
    vectors = [delta.changed[i] if i in delta.changed
               else adapter.payload_group_vector(base_payload, i)
               for i in range(delta.n_groups)]
    synopsis = Synopsis(index=IndexFile(groups),
                        payload=adapter.assemble_payload(partition, vectors),
                        level=delta.level, n_original=delta.n_original,
                        meta=dict(delta.meta))
    return pickle.dumps(ComponentState(partition=partition, synopsis=synopsis),
                        PICKLE_PROTOCOL)


def compute_semantic_delta(adapter, base_blob: bytes,
                           target_state: ComponentState,
                           hint: UpdateHint) -> tuple[SemanticDelta, bytes] | None:
    """Build a verified ``(delta, applied_blob)`` pair, or ``None``.

    ``base_blob`` is the serialized snapshot the receiver holds.
    ``hint.reaggregated`` marks slots whose vectors were recomputed with
    unchanged membership; membership-changed slots are found here by
    comparing the two index files directly.  The candidate delta is
    replayed against ``base_blob`` and kept only if the reconstruction
    is value-equal to ``target_state`` (see :class:`SemanticDelta`);
    ``applied_blob`` is that replay output — exactly the bytes the
    receiver will end up holding.  Any surprise (un-invertible payload,
    recovered-vector mismatch, broken adapter) returns ``None`` so
    callers fall back to CDC byte deltas.
    """
    try:
        base_state: ComponentState = pickle.loads(base_blob)
        base_syn, target_syn = base_state.synopsis, target_state.synopsis
        base_groups = base_syn.index.groups()
        target_groups = target_syn.index.groups()
        n_groups = len(target_groups)
        changed_slots = {int(s) for s in hint.reaggregated
                         if 0 <= int(s) < n_groups}
        membership_changed = len(base_groups) != n_groups
        for i, tg in enumerate(target_groups):
            if i >= len(base_groups) or not np.array_equal(base_groups[i], tg):
                changed_slots.add(i)
                membership_changed = True
        changed = {i: adapter.payload_group_vector(target_syn.payload, i)
                   for i in sorted(changed_slots)}
        p_base = pickle.dumps(base_state.partition, PICKLE_PROTOCOL)
        p_target = pickle.dumps(target_state.partition, PICKLE_PROTOCOL)
        if p_base == p_target:
            partition_op: tuple = ("same", None)
        else:
            pd = compute_delta(p_base, p_target)
            partition_op = (("delta", pd) if pd.wire_cost() < len(p_target)
                            else ("full", p_target))
        draft = SemanticDelta(
            adapter=adapter, n_groups=n_groups, changed=changed,
            groups=tuple(target_groups) if membership_changed else None,
            partition=partition_op, level=target_syn.level,
            n_original=target_syn.n_original, meta=dict(target_syn.meta),
            base_digest=blob_digest(base_blob), target_digest=b"",
            target_size=0)
        applied = _assemble_semantic(base_blob, draft)
        out_state: ComponentState = pickle.loads(applied)
        out_syn = out_state.synopsis
        if out_syn.index != target_syn.index:
            return None
        if (out_syn.level != target_syn.level
                or out_syn.n_original != target_syn.n_original
                or out_syn.meta != target_syn.meta):
            return None
        for i in range(n_groups):
            if not _group_vectors_equal(
                    adapter.payload_group_vector(out_syn.payload, i),
                    adapter.payload_group_vector(target_syn.payload, i)):
                return None
        delta = SemanticDelta(
            adapter=draft.adapter, n_groups=draft.n_groups,
            changed=draft.changed, groups=draft.groups,
            partition=draft.partition, level=draft.level,
            n_original=draft.n_original, meta=draft.meta,
            base_digest=draft.base_digest,
            target_digest=blob_digest(applied), target_size=len(applied))
        return delta, applied
    except Exception:
        return None


def apply_semantic_delta(base_blob: bytes, delta: SemanticDelta) -> bytes:
    """Re-assemble the target snapshot blob from ``base_blob`` + ``delta``.

    Raises :class:`DeltaMismatchError` unless the base digest matches
    and the reconstruction matches the digest and size of the sender's
    verified replay — so sender and receiver provably hold the same
    bytes afterwards.
    """
    if blob_digest(base_blob) != delta.base_digest:
        raise DeltaMismatchError(
            "semantic delta applied against the wrong base blob")
    try:
        blob = _assemble_semantic(base_blob, delta)
    except DeltaMismatchError:
        raise
    except Exception as exc:
        raise DeltaMismatchError(
            f"semantic reconstruction failed: {exc!r}") from exc
    if len(blob) != delta.target_size or \
            blob_digest(blob) != delta.target_digest:
        raise DeltaMismatchError(
            "semantic reconstruction does not match the sender's replay")
    return blob
