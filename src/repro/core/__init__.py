"""AccuracyTrader core: synopsis management + accuracy-aware processing.

This package is the paper's contribution proper:

- :mod:`repro.core.synopsis` — the synopsis / index-file data model;
- :mod:`repro.core.builder` — offline synopsis creation (SVD reduction ->
  R-tree grouping -> information aggregation, §2.2 steps 1-3);
- :mod:`repro.core.updater` — incremental synopsis updating (add new
  points / change existing points, §2.2);
- :mod:`repro.core.processor` — the online two-stage accuracy-aware
  approximate processing of Algorithm 1 (§2.3);
- :mod:`repro.core.adapters` — service adapters binding the generic
  pipeline to the CF recommender and the web search engine;
- :mod:`repro.core.clock` — real and simulated deadline clocks, so the
  same Algorithm 1 code runs under wall-clock deadlines (examples) and
  simulated time (tail-latency experiments);
- :mod:`repro.core.state` — the epoch-versioned state plane: the
  :class:`StateStore` publishes immutable per-component snapshots under
  monotonically increasing epochs, and :class:`StateRef` handles pin
  in-flight requests to their dispatch-time state.

Executing per-component work in parallel (thread/process backends, load
generation, live serving) lives in :mod:`repro.serving`;
:class:`AccuracyTraderService` delegates execution placement there.
"""

from repro.core.synopsis import IndexFile, Synopsis
from repro.core.builder import SynopsisBuilder, SynopsisConfig
from repro.core.updater import SynopsisUpdater, UpdateReport
from repro.core.processor import AccuracyAwareProcessor, ProcessingReport
from repro.core.clock import DeadlineClock, SimulatedClock, WallClock
from repro.core.adapters import CFAdapter, CFRequest, SearchAdapter, SearchQuery
from repro.core.multires import MultiResolutionSynopsis, build_multires
from repro.core.servable import Servable, default_merge, unwrap_adapter
from repro.core.state import (
    ComponentState,
    StaleEpochError,
    StateEpoch,
    StateRef,
    StateStore,
)
from repro.core.service import AccuracyTraderService

__all__ = [
    "IndexFile",
    "Synopsis",
    "SynopsisBuilder",
    "SynopsisConfig",
    "SynopsisUpdater",
    "UpdateReport",
    "AccuracyAwareProcessor",
    "ProcessingReport",
    "DeadlineClock",
    "SimulatedClock",
    "WallClock",
    "CFAdapter",
    "CFRequest",
    "SearchAdapter",
    "SearchQuery",
    "MultiResolutionSynopsis",
    "build_multires",
    "AccuracyTraderService",
    "ComponentState",
    "StateEpoch",
    "StateRef",
    "StateStore",
    "StaleEpochError",
    "Servable",
    "default_merge",
    "unwrap_adapter",
]
