"""High-level facade: a partitioned AccuracyTrader service in one object.

Wires together what the examples assemble by hand — partitioning, synopsis
creation, per-component processors, result merging — behind the smallest
API a downstream user needs:

    service = AccuracyTraderService(adapter, partitions)
    answer, reports = service.process(request, deadline=0.1)

Per-component execution is delegated to a pluggable
:class:`~repro.serving.backends.ExecutionBackend` (sequential by default;
thread- or process-pool for real fan-out parallelism).  The fan-out
*queueing* behaviour still belongs to :mod:`repro.cluster`, which is about
predicting latency, not producing answers; driving live request streams
belongs to :mod:`repro.serving`.

Concurrency model (copy-on-swap)
--------------------------------

Each component's mutable state is published as one immutable
:class:`ComponentState` snapshot — a ``(partition, synopsis)`` pair that
is never mutated after publication.  ``process`` reads each component's
current snapshot exactly once and hands it to the backend as part of a
self-contained task, so an in-flight request keeps computing against a
consistent pair even while ``add_points`` / ``change_points`` rebuild the
synopsis.  Updates run under a per-component lock (serialising writers)
and finish by swapping in a *new* snapshot — a single atomic reference
assignment — so concurrent readers observe either the old state or the
new one, never a torn mix.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable

from repro.core.adapters import ServiceAdapter
from repro.core.builder import SynopsisBuilder, SynopsisConfig
from repro.core.clock import DeadlineClock, SimulatedClock
from repro.core.processor import ProcessingReport
from repro.core.servable import default_merge
from repro.core.synopsis import Synopsis
from repro.core.updater import SynopsisUpdater

__all__ = ["ComponentState", "AccuracyTraderService"]


@dataclass(frozen=True)
class ComponentState:
    """Immutable published state of one component.

    Requests capture one reference to this pair; updates replace the
    whole object rather than mutating it (copy-on-swap).
    """

    partition: Any
    synopsis: Synopsis


class AccuracyTraderService:
    """A complete n-component AccuracyTrader deployment over one dataset.

    Parameters
    ----------
    adapter:
        Service adapter (:class:`CFAdapter` or :class:`SearchAdapter`,
        or any custom :class:`ServiceAdapter` — possibly wrapped, e.g.
        :class:`~repro.serving.adapters.IOStallAdapter`).
    partitions:
        The input data, already divided into per-component subsets.
    config:
        Synopsis-creation configuration (shared by all components).
    i_max / i_max_fraction:
        Algorithm 1's refinement cap (see
        :class:`~repro.core.processor.AccuracyAwareProcessor`).
    merge:
        Combines the per-component results into the service answer.
        Defaults: CF -> merged :class:`~repro.recommender.cf.CFPrediction`;
        search -> global top-k via :func:`~repro.search.engine.merge_topk`.
    backend:
        Default :class:`~repro.serving.backends.ExecutionBackend` (or its
        name: ``"sequential"``, ``"thread"``, ``"process"``) used by
        :meth:`process` when no per-call backend is given.
    """

    def __init__(self, adapter: ServiceAdapter, partitions,
                 config: SynopsisConfig | None = None,
                 i_max: int | None = None,
                 i_max_fraction: float | None = None,
                 merge: Callable | None = None,
                 backend=None):
        from repro.serving.backends import ExecutionBackend, resolve_backend

        self.adapter = adapter
        partitions = list(partitions)
        if not partitions:
            raise ValueError("need at least one partition")
        for i, part in enumerate(partitions):
            if len(adapter.record_ids(part)) == 0:
                raise ValueError(
                    f"partition {i} of {len(partitions)} has no records; "
                    "splitting a dataset into more parts than records "
                    "produces empty components — use fewer parts")
        self.config = config if config is not None else SynopsisConfig()
        self._i_max = i_max
        self._i_max_fraction = i_max_fraction
        builder = SynopsisBuilder(adapter, self.config)
        self.updaters: list[SynopsisUpdater] = []
        self._states: list[ComponentState] = []
        for part in partitions:
            synopsis, artifacts = builder.build(part)
            self.updaters.append(SynopsisUpdater(adapter, self.config, part,
                                                 synopsis, artifacts))
            self._states.append(ComponentState(partition=part,
                                               synopsis=synopsis))
        self._update_locks = [threading.Lock() for _ in self._states]
        self._merge = merge if merge is not None else default_merge(adapter)
        self._owns_backend = not isinstance(backend, ExecutionBackend)
        self.backend = resolve_backend(backend)

    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release the default backend if this service created it.

        A backend passed in as an instance is shared caller-owned state
        and is left alone; one resolved here from a name (or ``None``)
        is owned by the service and shut down (idempotent).
        """
        if self._owns_backend:
            self.backend.close()

    def __enter__(self) -> "AccuracyTraderService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def n_components(self) -> int:
        return len(self._states)

    @property
    def merge(self) -> Callable:
        """The merge function combining per-component results."""
        return self._merge

    @property
    def partitions(self) -> list:
        """Current per-component partitions (snapshot view)."""
        return [s.partition for s in self._states]

    @property
    def synopses(self) -> list[Synopsis]:
        """Current per-component synopses (snapshot view)."""
        return [s.synopsis for s in self._states]

    def component_state(self, component: int) -> ComponentState:
        """The component's current published snapshot."""
        return self._states[component]

    # ------------------------------------------------------------------

    def build_tasks(self, request, deadline: float,
                    clocks: list[DeadlineClock] | None = None) -> list:
        """Self-contained per-component tasks for one request.

        Each task captures the component's current published snapshot, so
        the list is safe to execute on any backend, at any later time,
        concurrently with updates.  The router tier uses this to dispatch
        (and hedge) a service's components without going through
        :meth:`process`.
        """
        from repro.serving.backends import ComponentTask

        if clocks is None:
            clocks = [SimulatedClock(speed=1e12) for _ in self._states]
        if len(clocks) != self.n_components:
            raise ValueError("need one clock per component")
        states = list(self._states)  # one snapshot ref per component
        return [
            ComponentTask(
                component=c,
                adapter=self.adapter,
                partition=state.partition,
                synopsis=state.synopsis,
                request=request,
                deadline=deadline,
                clock=clock,
                i_max=self._i_max,
                i_max_fraction=self._i_max_fraction,
            )
            for c, (state, clock) in enumerate(zip(states, clocks))
        ]

    def process(self, request, deadline: float,
                clocks: list[DeadlineClock] | None = None,
                backend=None,
                ) -> tuple[Any, list[ProcessingReport]]:
        """Answer ``request`` with per-component deadline ``deadline``.

        ``clocks`` supplies one deadline clock per component (e.g.
        :class:`SimulatedClock` with per-component speeds); by default each
        component gets a fresh simulated clock at unit speed — pass real
        speeds to study latency/accuracy trade-offs.  ``backend``
        overrides the service's default execution backend for this call.

        Safe to call from many threads concurrently, including while
        updates are being applied: each component's work runs against the
        consistent snapshot current at dispatch.
        """
        tasks = self.build_tasks(request, deadline, clocks)
        exec_backend = self.backend if backend is None else backend
        outcomes = exec_backend.run_tasks(tasks)
        results = [o.result for o in outcomes]
        reports = [o.report for o in outcomes]
        return self._merge(results, request), reports

    async def aprocess(self, request, deadline: float,
                       clocks: list[DeadlineClock] | None = None,
                       backend=None,
                       ) -> tuple[Any, list[ProcessingReport]]:
        """Async :meth:`process` — same contract, awaitable execution.

        On an :class:`~repro.serving.aio.AsyncExecutionBackend` the
        component tasks run natively on the calling event loop; any
        other backend is bridged through an executor so the loop never
        blocks.  Bit-identical to :meth:`process` over the same
        snapshots and clocks.
        """
        from repro.serving.aio import arun_tasks

        tasks = self.build_tasks(request, deadline, clocks)
        exec_backend = self.backend if backend is None else backend
        outcomes = await arun_tasks(exec_backend, tasks)
        results = [o.result for o in outcomes]
        reports = [o.report for o in outcomes]
        return self._merge(results, request), reports

    def exact_components(self, request) -> list:
        """Unmerged exact per-component results (for cross-shard merging)."""
        return [self.adapter.exact(s.partition, request)
                for s in self._states]

    def exact(self, request) -> Any:
        """Full exact computation across all partitions (ground truth)."""
        return self._merge(self.exact_components(request), request)

    # ------------------------------------------------------------------

    def add_points(self, component: int, partition, new_record_ids):
        """Apply an add-points update to one component's synopsis.

        Thread-safe with respect to concurrent :meth:`process` calls and
        updates to other components; updates to the *same* component are
        serialised by a per-component lock.
        """
        with self._update_locks[component]:
            report = self.updaters[component].add_points(partition,
                                                         new_record_ids)
            self._states[component] = ComponentState(
                partition=partition,
                synopsis=self.updaters[component].synopsis)
        return report

    def change_points(self, component: int, partition, changed_record_ids):
        """Apply a change-points update to one component's synopsis.

        Same concurrency contract as :meth:`add_points`.
        """
        with self._update_locks[component]:
            report = self.updaters[component].change_points(
                partition, changed_record_ids)
            self._states[component] = ComponentState(
                partition=partition,
                synopsis=self.updaters[component].synopsis)
        return report
