"""High-level facade: a partitioned AccuracyTrader service in one object.

Wires together what the examples assemble by hand — partitioning, synopsis
creation, per-component processors, result merging — behind the smallest
API a downstream user needs:

    service = AccuracyTraderService(adapter, partitions)
    answer, reports = service.process(request, deadline=0.1)

Components run sequentially under per-component clocks (simulated or wall);
the fan-out *queueing* behaviour belongs to :mod:`repro.cluster`, which is
about measuring latency, not producing answers.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.adapters import CFAdapter, SearchAdapter, ServiceAdapter
from repro.core.builder import BuildArtifacts, SynopsisBuilder, SynopsisConfig
from repro.core.clock import DeadlineClock, SimulatedClock
from repro.core.processor import AccuracyAwareProcessor, ProcessingReport
from repro.core.synopsis import Synopsis
from repro.core.updater import SynopsisUpdater

__all__ = ["AccuracyTraderService"]


class AccuracyTraderService:
    """A complete n-component AccuracyTrader deployment over one dataset.

    Parameters
    ----------
    adapter:
        Service adapter (:class:`CFAdapter` or :class:`SearchAdapter`,
        or any custom :class:`ServiceAdapter`).
    partitions:
        The input data, already divided into per-component subsets.
    config:
        Synopsis-creation configuration (shared by all components).
    i_max / i_max_fraction:
        Algorithm 1's refinement cap (see
        :class:`~repro.core.processor.AccuracyAwareProcessor`).
    merge:
        Combines the per-component results into the service answer.
        Defaults: CF -> merged :class:`~repro.recommender.cf.CFPrediction`;
        search -> global top-k via :func:`~repro.search.engine.merge_topk`.
    """

    def __init__(self, adapter: ServiceAdapter, partitions,
                 config: SynopsisConfig | None = None,
                 i_max: int | None = None,
                 i_max_fraction: float | None = None,
                 merge: Callable | None = None):
        self.adapter = adapter
        self.partitions = list(partitions)
        if not self.partitions:
            raise ValueError("need at least one partition")
        self.config = config if config is not None else SynopsisConfig()
        builder = SynopsisBuilder(adapter, self.config)
        self.synopses: list[Synopsis] = []
        self.updaters: list[SynopsisUpdater] = []
        for part in self.partitions:
            synopsis, artifacts = builder.build(part)
            self.synopses.append(synopsis)
            self.updaters.append(SynopsisUpdater(adapter, self.config, part,
                                                 synopsis, artifacts))
        self._processors = [
            AccuracyAwareProcessor(adapter, part, upd.synopsis,
                                   i_max=i_max, i_max_fraction=i_max_fraction)
            for part, upd in zip(self.partitions, self.updaters)
        ]
        self._merge = merge if merge is not None else self._default_merge()

    # ------------------------------------------------------------------

    def _default_merge(self) -> Callable:
        if isinstance(self.adapter, CFAdapter):
            from repro.recommender.cf import merge_predictions

            def merge_cf(results, request):
                return merge_predictions(results,
                                         active_mean=request.active_mean)

            return merge_cf
        if isinstance(self.adapter, SearchAdapter):
            from repro.search.engine import merge_topk

            def merge_search(results, request):
                return merge_topk(results, request.k)

            return merge_search
        raise ValueError("custom adapters must supply a merge function")

    @property
    def n_components(self) -> int:
        return len(self.partitions)

    # ------------------------------------------------------------------

    def process(self, request, deadline: float,
                clocks: list[DeadlineClock] | None = None,
                ) -> tuple[Any, list[ProcessingReport]]:
        """Answer ``request`` with per-component deadline ``deadline``.

        ``clocks`` supplies one deadline clock per component (e.g.
        :class:`SimulatedClock` with per-component speeds); by default each
        component gets a fresh simulated clock at unit speed — pass real
        speeds to study latency/accuracy trade-offs.
        """
        if clocks is None:
            clocks = [SimulatedClock(speed=1e12) for _ in self.partitions]
        if len(clocks) != self.n_components:
            raise ValueError("need one clock per component")
        results, reports = [], []
        for proc, upd, clock in zip(self._processors, self.updaters, clocks):
            # Processors follow the updater's current synopsis.
            proc.synopsis = upd.synopsis
            result, report = proc.process(request, deadline, clock=clock)
            results.append(result)
            reports.append(report)
        return self._merge(results, request), reports

    def exact(self, request) -> Any:
        """Full exact computation across all partitions (ground truth)."""
        results = [self.adapter.exact(p, request) for p in self.partitions]
        return self._merge(results, request)

    # ------------------------------------------------------------------

    def add_points(self, component: int, partition, new_record_ids):
        """Apply an add-points update to one component's synopsis."""
        report = self.updaters[component].add_points(partition, new_record_ids)
        self.partitions[component] = partition
        self._processors[component].partition = partition
        self._processors[component].synopsis = self.updaters[component].synopsis
        self.synopses[component] = self.updaters[component].synopsis
        return report

    def change_points(self, component: int, partition, changed_record_ids):
        """Apply a change-points update to one component's synopsis."""
        report = self.updaters[component].change_points(partition,
                                                        changed_record_ids)
        self.partitions[component] = partition
        self._processors[component].partition = partition
        self._processors[component].synopsis = self.updaters[component].synopsis
        self.synopses[component] = self.updaters[component].synopsis
        return report
