"""High-level facade: a partitioned AccuracyTrader service in one object.

Wires together what the examples assemble by hand — partitioning, synopsis
creation, per-component processors, result merging — behind the smallest
API a downstream user needs:

    service = AccuracyTraderService(adapter, partitions)
    response = service.serve(as_envelope(request, deadline=0.1))

Per-component execution is delegated to a pluggable
:class:`~repro.serving.backends.ExecutionBackend` (sequential by default;
thread- or process-pool for real fan-out parallelism).  The fan-out
*queueing* behaviour still belongs to :mod:`repro.cluster`, which is about
predicting latency, not producing answers; driving live request streams
belongs to :mod:`repro.serving`.

Concurrency model (epoch-versioned copy-on-swap)
------------------------------------------------

Each component's mutable state is published through a
:class:`~repro.core.state.StateStore` as one immutable
:class:`~repro.core.state.ComponentState` snapshot — a ``(partition,
synopsis)`` pair, never mutated after publication, tagged with a
monotonically increasing :data:`~repro.core.state.StateEpoch` id.
``serve`` captures one pinned :class:`~repro.core.state.StateRef` per
component at dispatch and hands the backend tasks that reference state
by ``(component, epoch)``, so an in-flight request keeps computing
against its dispatch-time snapshot even while ``add_points`` /
``change_points`` / ``replace_partition`` publish new epochs.  Updates
run under a per-component lock (serialising writers) and finish by
publishing a *new* snapshot — a single swap under the store lock — so
concurrent readers observe either the old epoch or the new one, never a
torn mix.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.core.adapters import ServiceAdapter
from repro.core.builder import SynopsisBuilder, SynopsisConfig
from repro.core.clock import DeadlineClock, SimulatedClock, monotonic
from repro.core.servable import default_merge
from repro.core.state import (ComponentState, StateEpoch, StateStore,
                              UpdateHint)
from repro.core.synopsis import Synopsis
from repro.core.updater import SynopsisUpdater

__all__ = ["ComponentState", "AccuracyTraderService"]


class AccuracyTraderService:
    """A complete n-component AccuracyTrader deployment over one dataset.

    Parameters
    ----------
    adapter:
        Service adapter (:class:`CFAdapter` or :class:`SearchAdapter`,
        or any custom :class:`ServiceAdapter` — possibly wrapped, e.g.
        :class:`~repro.serving.adapters.IOStallAdapter`).
    partitions:
        The input data, already divided into per-component subsets.
    config:
        Synopsis-creation configuration (shared by all components).
    i_max / i_max_fraction:
        Algorithm 1's refinement cap (see
        :class:`~repro.core.processor.AccuracyAwareProcessor`).
    merge:
        Combines the per-component results into the service answer.
        Defaults: CF -> merged :class:`~repro.recommender.cf.CFPrediction`;
        search -> global top-k via :func:`~repro.search.engine.merge_topk`.
    backend:
        Default :class:`~repro.serving.backends.ExecutionBackend` (or its
        name: ``"sequential"``, ``"thread"``, ``"process"``) used by
        :meth:`process` when no per-call backend is given.
    """

    def __init__(self, adapter: ServiceAdapter, partitions,
                 config: SynopsisConfig | None = None,
                 i_max: int | None = None,
                 i_max_fraction: float | None = None,
                 merge: Callable | None = None,
                 backend=None):
        from repro.serving.backends import ExecutionBackend, resolve_backend

        self.adapter = adapter
        partitions = list(partitions)
        if not partitions:
            raise ValueError("need at least one partition")
        for i, part in enumerate(partitions):
            if len(adapter.record_ids(part)) == 0:
                raise ValueError(
                    f"partition {i} of {len(partitions)} has no records; "
                    "splitting a dataset into more parts than records "
                    "produces empty components — use fewer parts")
        self.config = config if config is not None else SynopsisConfig()
        self._i_max = i_max
        self._i_max_fraction = i_max_fraction
        self._builder = SynopsisBuilder(adapter, self.config)
        self.store = StateStore()
        self.updaters: list[SynopsisUpdater] = []
        for c, part in enumerate(partitions):
            synopsis, artifacts = self._builder.build(part)
            self.updaters.append(SynopsisUpdater(adapter, self.config, part,
                                                 synopsis, artifacts))
            self.store.publish(c, ComponentState(partition=part,
                                                 synopsis=synopsis))
        self._update_locks = [threading.Lock() for _ in partitions]
        self._merge = merge if merge is not None else default_merge(adapter)
        self._owns_backend = not isinstance(backend, ExecutionBackend)
        self.backend = resolve_backend(backend)

    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release the default backend if this service created it.

        A backend passed in as an instance is shared caller-owned state
        and is left alone; one resolved here from a name (or ``None``)
        is owned by the service and shut down (idempotent).
        """
        if self._owns_backend:
            self.backend.close()

    def __enter__(self) -> "AccuracyTraderService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def n_components(self) -> int:
        return len(self.updaters)

    @property
    def merge(self) -> Callable:
        """The merge function combining per-component results."""
        return self._merge

    @property
    def partitions(self) -> list:
        """Current per-component partitions (snapshot view)."""
        return [self.store.current_state(c).partition
                for c in range(self.n_components)]

    @property
    def synopses(self) -> list[Synopsis]:
        """Current per-component synopses (snapshot view)."""
        return [self.store.current_state(c).synopsis
                for c in range(self.n_components)]

    def component_state(self, component: int) -> ComponentState:
        """The component's current published snapshot."""
        return self.store.current_state(component)

    def component_epoch(self, component: int) -> StateEpoch:
        """The component's current state epoch."""
        return self.store.current_epoch(component)

    # ------------------------------------------------------------------

    def build_tasks(self, request, deadline: float | None = None,
                    clocks: list[DeadlineClock] | None = None) -> list:
        """Self-contained per-component tasks for one request.

        ``request`` is either a :class:`~repro.serving.envelope.
        ServingRequest` envelope (its payload is dispatched; its
        detached, payload-free copy rides each task so reports carry the
        request's id and class) or a bare payload.  ``deadline``, when
        given, wins over the envelope's own (the router passes per-shard
        budget-scaled deadlines this way); with an envelope it may be
        omitted.

        Each task references the component's current published snapshot
        by a pinned ``(component, epoch)`` :class:`~repro.core.state.
        StateRef`, so the list is safe to execute on any backend, at any
        later time, concurrently with updates — execution always
        resolves the dispatch-time epoch.  The router tier uses this to
        dispatch (and hedge) a service's components without going
        through :meth:`serve`.
        """
        from repro.serving.backends import ComponentTask
        from repro.serving.envelope import ServingRequest

        envelope = None
        payload = request
        if isinstance(request, ServingRequest):
            envelope = request.detached()
            payload = request.payload
            if deadline is None:
                deadline = request.deadline
        if deadline is None:
            raise ValueError(
                "a deadline is required: set it on the envelope or pass "
                "deadline= explicitly")
        if clocks is None:
            clocks = [SimulatedClock(speed=1e12)
                      for _ in range(self.n_components)]
        if len(clocks) != self.n_components:
            raise ValueError("need one clock per component")
        refs = [self.store.ref(c) for c in range(self.n_components)]
        return [
            ComponentTask(
                component=c,
                adapter=self.adapter,
                request=payload,
                deadline=deadline,
                state_ref=ref,
                clock=clock,
                i_max=self._i_max,
                i_max_fraction=self._i_max_fraction,
                envelope=envelope,
            )
            for c, (ref, clock) in enumerate(zip(refs, clocks))
        ]

    # -- the native envelope path --------------------------------------

    def serve(self, request, clocks: list[DeadlineClock] | None = None,
              backend=None):
        """Answer one :class:`~repro.serving.envelope.ServingRequest`.

        The native typed entry point: the envelope's deadline applies
        per component, ``clocks`` supplies one deadline clock per
        component (default: fresh effectively-infinite simulated
        clocks), and ``backend`` overrides the service's default
        execution backend for this call.  Returns a
        :class:`~repro.serving.envelope.ServingResponse` whose reports
        carry the envelope's id/class and the answering state epochs.

        Safe to call from many threads concurrently, including while
        updates are being applied: each component's work runs against
        the consistent snapshot current at dispatch.

        Tracing: the request is rooted in a trace here if nothing
        upstream (harness, router) already did, a ``serve`` span covers
        dispatch-to-merge, and worker-side spans piggybacked on the
        outcomes are stitched into the live tracer.
        """
        from repro.serving.envelope import ServingResponse
        from repro.serving.telemetry import (attach_context, get_tracer,
                                             trace_context_of)

        tracer = get_tracer()
        request = tracer.trace(request)
        ctx = trace_context_of(request)
        t_dispatch = monotonic()
        with tracer.span("serve", ctx, components=self.n_components) as sp:
            task_request = request if sp.ctx is ctx \
                else attach_context(request, sp.ctx)
            tasks = self.build_tasks(task_request, clocks=clocks)
            exec_backend = self.backend if backend is None else backend
            outcomes = exec_backend.run_tasks(tasks)
            tracer.ingest_outcomes(outcomes)
            results = [o.result for o in outcomes]
            reports = [o.report for o in outcomes]
            answer = self._merge(results, request.payload)
        return ServingResponse(
            answer=answer, reports=reports,
            request=request, service_time=monotonic() - t_dispatch)

    async def aserve(self, request,
                     clocks: list[DeadlineClock] | None = None,
                     backend=None):
        """Async :meth:`serve` — same contract, awaitable execution.

        On an :class:`~repro.serving.aio.AsyncExecutionBackend` the
        component tasks run natively on the calling event loop; any
        other backend is bridged through an executor so the loop never
        blocks.  Bit-identical to :meth:`serve` over the same snapshots
        and clocks.
        """
        from repro.serving.aio import arun_tasks
        from repro.serving.envelope import ServingResponse
        from repro.serving.telemetry import (attach_context, get_tracer,
                                             trace_context_of)

        tracer = get_tracer()
        request = tracer.trace(request)
        ctx = trace_context_of(request)
        t_dispatch = monotonic()
        with tracer.span("serve", ctx, components=self.n_components) as sp:
            task_request = request if sp.ctx is ctx \
                else attach_context(request, sp.ctx)
            tasks = self.build_tasks(task_request, clocks=clocks)
            exec_backend = self.backend if backend is None else backend
            outcomes = await arun_tasks(exec_backend, tasks)
            tracer.ingest_outcomes(outcomes)
            results = [o.result for o in outcomes]
            reports = [o.report for o in outcomes]
            answer = self._merge(results, request.payload)
        return ServingResponse(
            answer=answer, reports=reports,
            request=request, service_time=monotonic() - t_dispatch)

    def exact_components(self, request) -> list:
        """Unmerged exact per-component results (for cross-shard merging)."""
        from repro.serving.envelope import payload_of

        payload = payload_of(request)
        return [self.adapter.exact(p, payload) for p in self.partitions]

    def exact(self, request) -> Any:
        """Full exact computation across all partitions (ground truth)."""
        from repro.serving.envelope import payload_of

        payload = payload_of(request)
        return self._merge(self.exact_components(payload), payload)

    # ------------------------------------------------------------------

    def add_points(self, component: int, partition, new_record_ids):
        """Apply an add-points update to one component's synopsis.

        Thread-safe with respect to concurrent :meth:`process` calls and
        updates to other components; updates to the *same* component are
        serialised by a per-component lock.  Publishes a new state epoch;
        in-flight requests keep their dispatch-time epoch.
        """
        with self._update_locks[component]:
            report = self.updaters[component].add_points(partition,
                                                         new_record_ids)
            self.store.publish(
                component,
                ComponentState(partition=partition,
                               synopsis=self.updaters[component].synopsis),
                hint=UpdateHint(reaggregated=report.reaggregated_slots,
                                index_changed=report.index_changed))
        return report

    def change_points(self, component: int, partition, changed_record_ids):
        """Apply a change-points update to one component's synopsis.

        Same concurrency contract as :meth:`add_points`.
        """
        with self._update_locks[component]:
            report = self.updaters[component].change_points(
                partition, changed_record_ids)
            self.store.publish(
                component,
                ComponentState(partition=partition,
                               synopsis=self.updaters[component].synopsis),
                hint=UpdateHint(reaggregated=report.reaggregated_slots,
                                index_changed=report.index_changed))
        return report

    def replace_partition(self, component: int, partition) -> StateEpoch:
        """Replace one component's partition wholesale (shard rebalancing).

        Rebuilds the component's synopsis from scratch with the service's
        own deterministic builder — so a replaced component is
        bit-identical to one built cold over the same partition — and
        publishes the result as a new state epoch.  Requests in flight
        keep draining against their dispatch-time snapshots.  Returns
        the new epoch id.
        """
        if len(self.adapter.record_ids(partition)) == 0:
            raise ValueError(
                f"replacement partition for component {component} has no "
                "records; a rebalance must not empty a component")
        with self._update_locks[component]:
            synopsis, artifacts = self._builder.build(partition)
            self.updaters[component] = SynopsisUpdater(
                self.adapter, self.config, partition, synopsis, artifacts)
            return self.store.publish(component, ComponentState(
                partition=partition, synopsis=synopsis))
