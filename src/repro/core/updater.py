"""Incremental synopsis updating (paper §2.2, updating sub-module).

Two situations of input-data change are supported, matching the paper's
Figure 3 scenarios:

- **add_points** — new data points arrive: fold their reduced vectors into
  the SVD (cost independent of existing data size), insert new R-tree
  leaves, and re-aggregate only the groups whose membership changed.
- **change_points** — existing points change: re-train just their reduced
  vectors, delete + re-insert their leaves, re-aggregate affected groups.

The updater caches each group's step-3 aggregation keyed by its membership
signature; after the tree mutation it recomputes the node set at the
chosen level and re-aggregates *only* groups with a new signature.  Update
cost therefore scales with the amount of change, not the partition size —
the property Figure 3 demonstrates (and why change_points, which touches
two leaves per point instead of one, is the slower category).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.adapters import ServiceAdapter
from repro.core.builder import BuildArtifacts, SynopsisConfig
from repro.core.synopsis import IndexFile, Synopsis

__all__ = ["UpdateReport", "SynopsisUpdater"]


@dataclass
class UpdateReport:
    """What one update did and what it cost.

    ``reaggregated_slots`` lists the group slots (indices into the new
    synopsis's group order) whose step-3 aggregates were recomputed, and
    ``index_changed`` says whether the group *membership* layout (the
    :class:`~repro.core.synopsis.IndexFile`) differs from the previous
    synopsis.  Together they form the semantic hint the wire state plane
    uses to ship only changed groups on an epoch transition.
    """

    kind: str                 # "add" or "change"
    n_points: int             # points added/changed
    n_groups_before: int
    n_groups_after: int
    n_groups_reaggregated: int
    seconds: float
    reaggregated_slots: tuple = ()
    index_changed: bool = False


class SynopsisUpdater:
    """Holds a partition's synopsis plus build artifacts and applies updates."""

    def __init__(self, adapter: ServiceAdapter, config: SynopsisConfig,
                 partition, synopsis: Synopsis, artifacts: BuildArtifacts):
        self.adapter = adapter
        self.config = config
        self.partition = partition
        self.synopsis = synopsis
        self.artifacts = artifacts
        # signature -> aggregated group vector.
        self._cache: dict[tuple, object] = {}
        for members, vec in zip(synopsis.index.groups(), artifacts.group_vectors):
            self._cache[tuple(members.tolist())] = vec

    # ------------------------------------------------------------------

    def add_points(self, partition, new_record_ids) -> UpdateReport:
        """Situation 1: ``new_record_ids`` were appended to the partition.

        ``partition`` is the partition *after* the addition; new ids must
        extend the previous dense id range contiguously (they are row ids).
        """
        t0 = time.perf_counter()
        new_ids = np.asarray(sorted(int(r) for r in new_record_ids), dtype=np.int64)
        if new_ids.size == 0:
            return self._finish("add", 0, self.synopsis.n_aggregated, t0,
                                (), False)
        expected_start = self.artifacts.svd.n_rows
        if new_ids[0] != expected_start or not np.array_equal(
                new_ids, np.arange(new_ids[0], new_ids[0] + new_ids.size)):
            raise ValueError("new record ids must contiguously extend the partition")

        self.partition = partition
        rows, cols, vals, _, _ = self.adapter.svd_triples(partition, new_ids)
        new_vecs = self.adapter.postprocess_reduced(
            self.artifacts.svd.fold_in_rows(rows, cols, vals,
                                            n_new_rows=new_ids.size,
                                            ignore_unknown_cols=True))
        for rid, vec in zip(new_ids.tolist(), new_vecs):
            self.artifacts.tree.insert_point(rid, vec)

        n_before = self.synopsis.n_aggregated
        slots, index_changed = self._rebuild_groups()
        return self._finish("add", new_ids.size, n_before, t0, slots,
                            index_changed)

    def change_points(self, partition, changed_record_ids) -> UpdateReport:
        """Situation 2: existing points' attributes/contents changed.

        ``partition`` is the partition after the change; ids must already
        exist in the synopsis.
        """
        t0 = time.perf_counter()
        changed = np.asarray(sorted(int(r) for r in changed_record_ids), dtype=np.int64)
        if changed.size == 0:
            return self._finish("change", 0, self.synopsis.n_aggregated, t0,
                                (), False)
        if changed.min() < 0 or changed.max() >= self.artifacts.svd.n_rows:
            raise ValueError("changed record id outside partition")

        self.partition = partition
        rows, cols, vals, _, _ = self.adapter.svd_triples(partition, changed)
        new_vecs = self.adapter.postprocess_reduced(
            self.artifacts.svd.refit_rows(changed, rows, cols, vals,
                                          ignore_unknown_cols=True))
        for rid, vec in zip(changed.tolist(), new_vecs):
            self.artifacts.tree.delete(rid)
            self.artifacts.tree.insert_point(rid, vec)

        # Changed originals invalidate their groups' aggregates even when
        # membership happens to stay identical.
        changed_set = set(changed.tolist())
        stale = [sig for sig in self._cache if changed_set.intersection(sig)]
        for sig in stale:
            del self._cache[sig]

        n_before = self.synopsis.n_aggregated
        slots, index_changed = self._rebuild_groups()
        return self._finish("change", changed.size, n_before, t0, slots,
                            index_changed)

    # ------------------------------------------------------------------

    def _rebuild_groups(self) -> tuple[tuple, bool]:
        """Recompute groups at the stored level; re-aggregate changed ones.

        Returns ``(reaggregated_slots, index_changed)``: the slot indices
        (positions in the new group order) that were re-aggregated, and
        whether the group membership layout differs from the previous
        synopsis.
        """
        old_sigs = [tuple(g.tolist()) for g in self.synopsis.index.groups()]
        tree = self.artifacts.tree
        level = min(self.artifacts.level, tree.root.level)
        nodes = tree.nodes_at_level(level)
        groups = [np.asarray(sorted(tree.records_under(nd)), dtype=np.int64)
                  for nd in nodes]
        new_cache: dict[tuple, object] = {}
        vectors = []
        slots: list[int] = []
        sigs: list[tuple] = []
        for i, g in enumerate(groups):
            sig = tuple(g.tolist())
            vec = self._cache.get(sig)
            if vec is None:
                vec = self.adapter.aggregate_group(self.partition, g)
                slots.append(i)
            new_cache[sig] = vec
            vectors.append(vec)
            sigs.append(sig)
        self._cache = new_cache
        index_changed = sigs != old_sigs
        index = IndexFile(groups)
        index.validate(expected_records=self.adapter.record_ids(self.partition))
        payload = self.adapter.assemble_payload(self.partition, vectors)
        self.synopsis = Synopsis(
            index=index, payload=payload, level=level,
            n_original=index.n_records, meta=dict(self.synopsis.meta),
        )
        self.artifacts.level = level
        self.artifacts.group_vectors = vectors
        return tuple(slots), index_changed

    def _finish(self, kind: str, n_points: int, n_before: int, t0: float,
                slots: tuple = (), index_changed: bool = False) -> UpdateReport:
        return UpdateReport(
            kind=kind,
            n_points=n_points,
            n_groups_before=n_before,
            n_groups_after=self.synopsis.n_aggregated,
            n_groups_reaggregated=len(slots),
            seconds=time.perf_counter() - t0,
            reaggregated_slots=tuple(slots),
            index_changed=index_changed,
        )
