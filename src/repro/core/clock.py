"""Deadline clocks for Algorithm 1.

The online processor (``repro.core.processor``) is written against the
small :class:`DeadlineClock` protocol so the *same* control flow runs in
two worlds:

- :class:`WallClock` — real time, used by the runnable examples; work
  advances the clock by actually taking time.
- :class:`SimulatedClock` — virtual time, used by the discrete-event
  experiments; each unit of algorithmic work advances time by
  ``1 / speed`` where ``speed`` models the component's current capacity
  (interference included).  This sidesteps the GIL: simulated tail
  latencies depend only on modelled work, never on Python scheduling.
"""

from __future__ import annotations

import time
from typing import Callable, Protocol, runtime_checkable

__all__ = [
    "DeadlineClock",
    "WallClock",
    "SimulatedClock",
    "ClockFactory",
    "fresh_like",
    "monotonic",
    "wall_clock_factory",
    "simulated_clock_factory",
]


def monotonic() -> float:
    """The process-wide wall reference used by the serving plane.

    Every wall timestamp the serving layer takes — dispatch times,
    harness pacing, span boundaries — flows through this one seam
    instead of calling ``time.monotonic()`` directly, so tests (and the
    telemetry layer) have a single point to reason about, and CI can
    lint ``repro.serving`` for stray direct clock reads.  On Linux,
    ``CLOCK_MONOTONIC`` is shared across processes of one boot, which
    is what lets worker-side trace spans align with parent-side ones.
    """
    return time.monotonic()


@runtime_checkable
class DeadlineClock(Protocol):
    """What Algorithm 1 needs from time: read it, and account for work."""

    def now(self) -> float:
        """Current time in seconds (origin arbitrary but fixed)."""
        ...

    def charge(self, work_units: float) -> None:
        """Account for ``work_units`` of processing."""
        ...


class WallClock:
    """Real wall-clock time; ``charge`` is a no-op (real work takes real time)."""

    def now(self) -> float:
        return monotonic()

    def charge(self, work_units: float) -> None:
        # Real computation already consumed wall time.
        del work_units


class SimulatedClock:
    """Virtual clock advancing ``work / speed`` seconds per charge.

    Parameters
    ----------
    start:
        Initial virtual time (e.g. the instant a component dequeues the
        request, so queueing delay is part of the elapsed service time —
        matching the paper's latency definition).
    speed:
        Work units per second this component currently sustains.  May be
        changed between requests (interference); a speed change mid-request
        applies to subsequent charges.
    """

    def __init__(self, start: float = 0.0, speed: float = 1.0):
        if speed <= 0:
            raise ValueError("speed must be positive")
        self.start = float(start)
        self._now = float(start)
        self.speed = float(speed)
        self.work_charged = 0.0

    def now(self) -> float:
        return self._now

    def charge(self, work_units: float) -> None:
        if work_units < 0:
            raise ValueError("work_units must be non-negative")
        self.work_charged += work_units
        self._now += work_units / self.speed

    def advance(self, seconds: float) -> None:
        """Advance time without work (idle/queueing)."""
        if seconds < 0:
            raise ValueError("cannot advance backwards")
        self._now += seconds


def fresh_like(clock: DeadlineClock) -> DeadlineClock:
    """A new, uncharged clock equivalent to ``clock``.

    Hedged re-issue needs a *fresh* clock per copy (clocks are stateful:
    a simulated clock accumulates charged work), but it must stay in the
    caller's time world — a request served under simulated clocks whose
    hedge copy silently ran on wall clocks would report incomparable
    elapsed times.  A ``fresh()`` hook, when the clock offers one, is
    authoritative (so subclasses are never downgraded to their base
    class); otherwise the two built-in clock types clone exactly —
    simulated with their original start and current speed, wall as wall.
    Anything else is a loud ``TypeError``: silently substituting a wall
    clock would reintroduce exactly the mismatch this function exists
    to prevent.
    """
    fresh = getattr(clock, "fresh", None)
    if callable(fresh):
        return fresh()
    if type(clock) is SimulatedClock:
        return SimulatedClock(start=clock.start, speed=clock.speed)
    if type(clock) is WallClock:
        return WallClock()
    raise TypeError(
        f"cannot clone {type(clock).__name__} for a hedged copy: clock "
        "types other than SimulatedClock/WallClock (subclasses included) "
        "must provide a fresh() method returning a new, uncharged clock "
        "in the same time world")


# ---------------------------------------------------------------------------
# Clock factories
#
# The serving layer issues many requests over the service's lifetime, each
# needing one *fresh* clock per component (clocks are stateful: simulated
# clocks accumulate charged work).  A ``ClockFactory`` maps a component
# index to a new clock, so clock policy — wall time, uniform simulated
# speed, heterogeneous per-component speeds — is injected once at harness
# construction rather than re-plumbed through every ``process`` call.
# ---------------------------------------------------------------------------

ClockFactory = Callable[[int], DeadlineClock]
"""Maps a component index to a fresh :class:`DeadlineClock` for one request."""


def wall_clock_factory() -> ClockFactory:
    """Factory producing a fresh :class:`WallClock` per component."""

    def factory(component: int) -> DeadlineClock:
        del component
        return WallClock()

    return factory


def simulated_clock_factory(speeds, start: float = 0.0) -> ClockFactory:
    """Factory producing :class:`SimulatedClock` instances per component.

    Parameters
    ----------
    speeds:
        Either one speed shared by all components, or a sequence of
        per-component speeds (work units per second).
    start:
        Initial virtual time for every created clock.
    """
    try:
        per_component = [float(s) for s in speeds]
    except TypeError:
        per_component = None
        shared = float(speeds)

    def factory(component: int) -> DeadlineClock:
        if per_component is None:
            return SimulatedClock(start=start, speed=shared)
        return SimulatedClock(start=start, speed=per_component[component])

    return factory
