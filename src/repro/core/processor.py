"""Online accuracy-aware approximate processing — Algorithm 1 (paper §2.3).

Two stages on each component, per request:

1. process the synopsis -> initial approximate result + per-group
   correlations to this request's result accuracy;
2. rank the groups by correlation (descending) and iteratively refine the
   result with each group's *original* data points while
   ``elapsed < deadline`` and fewer than ``i_max`` groups were processed.

The processor is generic over the service adapter and the deadline clock,
so the identical control flow serves the runnable examples (wall clock)
and the tail-latency experiments (simulated clock).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.adapters import ServiceAdapter
from repro.core.clock import DeadlineClock, WallClock
from repro.core.synopsis import Synopsis

__all__ = ["ProcessingReport", "AccuracyAwareProcessor", "refine_to_depth",
           "process_component", "process_component_batch", "effective_i_max"]


def effective_i_max(n_groups: int, i_max: int | None,
                    i_max_fraction: float | None) -> int:
    """The effective ranked-group refinement cap for one execution.

    Shared by the sync processor and the async mirror
    (:func:`repro.serving.aio.aprocess_component`) so both enforce the
    identical cap.  Validates the mutually-exclusive pair.
    """
    if i_max is not None and i_max_fraction is not None:
        raise ValueError("pass at most one of i_max / i_max_fraction")
    if i_max is not None:
        if i_max < 0:
            raise ValueError("i_max must be non-negative")
        return min(i_max, n_groups)
    if i_max_fraction is not None:
        if not (0.0 <= i_max_fraction <= 1.0):
            raise ValueError("i_max_fraction must be within [0, 1]")
        return min(n_groups, int(np.ceil(i_max_fraction * n_groups)))
    return n_groups


def process_component(adapter: ServiceAdapter, partition, synopsis: Synopsis,
                      request, deadline: float,
                      clock: DeadlineClock | None = None,
                      i_max: int | None = None,
                      i_max_fraction: float | None = None,
                      start_time: float | None = None):
    """Run Algorithm 1 once over an explicit ``(partition, synopsis)`` pair.

    This is the stateless, picklable unit of work the serving backends
    dispatch: everything the computation touches is an argument, so the
    same call runs inline, on a worker thread, or in a worker process, and
    a caller holding a consistent snapshot of a component's state never
    races with concurrent synopsis updates (see
    :meth:`repro.core.service.AccuracyTraderService.process`).

    Returns ``(result, report)`` exactly like
    :meth:`AccuracyAwareProcessor.process`.
    """
    proc = AccuracyAwareProcessor(adapter, partition, synopsis,
                                  i_max=i_max, i_max_fraction=i_max_fraction)
    return proc.process(request, deadline, clock=clock, start_time=start_time)


def process_component_batch(adapter: ServiceAdapter, partition,
                            synopsis: Synopsis, requests, deadlines,
                            clocks=None,
                            i_max: int | None = None,
                            i_max_fraction: float | None = None,
                            start_times=None) -> list:
    """Run Algorithm 1 for several requests against one state snapshot.

    The batched counterpart of :func:`process_component`: stage 1 runs
    once for the whole batch through the adapter's vectorized
    ``initial_result_batch`` (per-request loop for adapters without
    one), then stage-2 refinement proceeds per request with its own
    clock, deadline and report.  Results and reports are bit-identical
    to per-request :func:`process_component` calls under deterministic
    clocks — this is what lets a coalesced dispatch batch stand in for
    unbatched execution.

    Returns one ``(result, report)`` pair per request, in order.
    """
    requests = list(requests)
    n = len(requests)
    deadlines = list(deadlines)
    clocks = list(clocks) if clocks is not None else [None] * n
    start_times = (list(start_times) if start_times is not None
                   else [None] * n)
    if not (len(deadlines) == len(clocks) == len(start_times) == n):
        raise ValueError("requests/deadlines/clocks/start_times length mismatch")
    initials = (adapter.initial_result_batch(synopsis, requests)
                if n > 1 else None)
    out = []
    for k, request in enumerate(requests):
        proc = AccuracyAwareProcessor(adapter, partition, synopsis,
                                      i_max=i_max,
                                      i_max_fraction=i_max_fraction)
        out.append(proc.process(request, deadlines[k], clock=clocks[k],
                                start_time=start_times[k],
                                initial=initials[k] if initials else None))
    return out


def refine_to_depth(adapter: ServiceAdapter, partition, synopsis: Synopsis,
                    request, depth: int):
    """Run Algorithm 1 with a *fixed* refinement depth instead of a clock.

    The coupled experiments first simulate latency to learn how many
    ranked groups each component had time for, then replay exactly that
    depth through the real service code to measure accuracy (DESIGN.md
    §5.1).  ``depth`` is clamped to the number of groups.

    Returns the finalized component result.
    """
    if depth < 0:
        raise ValueError("depth must be non-negative")
    state, correlations = adapter.initial_result(synopsis, request)
    order = np.argsort(-np.asarray(correlations), kind="stable")
    for g in order[: min(depth, synopsis.n_aggregated)]:
        state = adapter.refine(partition, synopsis, int(g), request, state)
    return adapter.finalize(state, request)


@dataclass
class ProcessingReport:
    """Trace of one Algorithm-1 execution on one component."""

    groups_ranked: list = field(default_factory=list)   # group ids, best first
    groups_processed: int = 0
    work_units: float = 0.0
    synopsis_elapsed: float = 0.0   # seconds spent in stage 1
    total_elapsed: float = 0.0      # stage 1 + refinement
    deadline: float = 0.0
    hit_deadline: bool = False      # stopped because time ran out
    hit_imax: bool = False          # stopped because i_max was reached
    exhausted: bool = False         # processed every group
    cancelled: bool = False         # refinement interrupted by cancellation
    #   (async tier only: the execution was cancelled mid-refinement and
    #   finalized from the groups processed so far — see repro.serving.aio)
    state_epoch: int | None = None  # which published state snapshot the
    #   execution ran against (None for tasks with inline state); the
    #   epoch-pinning tests assert dispatch-time epochs through here
    request_id: int | None = None   # envelope identity: which
    #   ServingRequest this execution served (None for bare-payload
    #   tasks built outside the envelope path)
    request_class: str | None = None  # the envelope's RequestClass value
    #   string ("accuracy_critical" / "latency_critical" /
    #   "best_effort"); kept as a string so reports stay plainly
    #   picklable across process backends


class AccuracyAwareProcessor:
    """Runs Algorithm 1 for one component (one partition + its synopsis).

    Parameters
    ----------
    adapter:
        Service adapter supplying the computations and work costs.
    partition:
        The component's share of the input data.
    synopsis:
        The partition's synopsis (see :class:`repro.core.builder.SynopsisBuilder`).
    i_max:
        Maximum number of ranked groups to refine with.  ``None`` means
        no cap (process-all, the recommender setting); the search setting
        uses the top 40% of groups — pass ``i_max_fraction=0.4``.
    i_max_fraction:
        Convenience alternative to ``i_max``: cap at
        ``ceil(fraction * n_groups)``.  Mutually exclusive with ``i_max``.
    """

    def __init__(self, adapter: ServiceAdapter, partition, synopsis: Synopsis,
                 i_max: int | None = None, i_max_fraction: float | None = None):
        if i_max is not None and i_max_fraction is not None:
            raise ValueError("pass at most one of i_max / i_max_fraction")
        if i_max is not None and i_max < 0:
            raise ValueError("i_max must be non-negative")
        if i_max_fraction is not None and not (0.0 <= i_max_fraction <= 1.0):
            raise ValueError("i_max_fraction must be within [0, 1]")
        self.adapter = adapter
        self.partition = partition
        self.synopsis = synopsis
        self._i_max = i_max
        self._i_max_fraction = i_max_fraction

    @property
    def i_max(self) -> int:
        """Effective group cap for the current synopsis."""
        return effective_i_max(self.synopsis.n_aggregated,
                               self._i_max, self._i_max_fraction)

    # ------------------------------------------------------------------

    def process(self, request, deadline: float,
                clock: DeadlineClock | None = None,
                start_time: float | None = None,
                initial: tuple[Any, Any] | None = None) -> tuple[Any, ProcessingReport]:
        """Produce this component's (approximate) result for ``request``.

        Parameters
        ----------
        request:
            Service-specific request object (``CFRequest`` / ``SearchQuery``).
        deadline:
            Specified service latency ``l_spe`` in seconds, measured from
            ``start_time``.
        clock:
            Deadline clock; defaults to a fresh :class:`WallClock`.
        start_time:
            Request submission time on the clock.  Defaults to ``clock.now()``
            — but in the queueing experiments the caller passes the arrival
            time so queueing delay counts against the deadline, as in the
            paper's latency definition.
        initial:
            Optional precomputed ``(state, correlations)`` stage-1 pair,
            as produced by the adapter's ``initial_result`` /
            ``initial_result_batch`` for this request.  Stage-1 work is
            still charged to the clock; this is how
            :func:`process_component_batch` shares one vectorized
            synopsis pass across a batch without changing per-request
            semantics.

        Returns
        -------
        (result, report):
            The finalized component result and the execution trace.

        Notes
        -----
        Stage 1 always runs to completion even if the deadline already
        passed while queueing — the component must produce *some* result.
        This is why the paper observes actual latencies slightly above the
        100 ms requirement under extreme load.
        """
        if deadline < 0:
            raise ValueError("deadline must be non-negative")
        clock = clock if clock is not None else WallClock()
        t_submit = clock.now() if start_time is None else float(start_time)

        report = ProcessingReport(deadline=deadline)
        t_begin = clock.now()

        # Stage 1: initial result + correlations from the synopsis.
        syn_work = self.adapter.synopsis_work(self.synopsis)
        if initial is None:
            state, correlations = self.adapter.initial_result(self.synopsis,
                                                              request)
        else:
            state, correlations = initial
        clock.charge(syn_work)
        report.work_units += syn_work
        report.synopsis_elapsed = clock.now() - t_begin

        # Stage 2: rank groups by correlation, refine best-first.
        # Stable argsort on -corr: ties broken by group id for determinism.
        order = np.argsort(-np.asarray(correlations), kind="stable")
        report.groups_ranked = [int(g) for g in order]

        i_max = self.i_max
        i = 0
        while True:
            if i >= len(report.groups_ranked):
                report.exhausted = True
                break
            if i >= i_max:
                report.hit_imax = True
                break
            if clock.now() - t_submit >= deadline:
                report.hit_deadline = True
                break
            g = report.groups_ranked[i]
            work = self.adapter.group_work(self.synopsis, g)
            state = self.adapter.refine(self.partition, self.synopsis, g,
                                        request, state)
            clock.charge(work)
            report.work_units += work
            i += 1

        report.groups_processed = i
        report.total_elapsed = clock.now() - t_begin
        result = self.adapter.finalize(state, request)
        return result, report
