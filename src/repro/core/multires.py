"""Load-adaptive multi-resolution synopses (the paper's §2.3 extension).

The paper notes: "Applying a load-adaptive approach that dynamically
selects a synopsis of a different size according to the current load is
possible and it is studied in our previous work [SARP], but it is beyond
the scope of this paper."  This module implements that extension on top
of the existing pipeline: one R-tree build yields synopses at *several*
levels (coarse -> fine), and a selector picks the largest synopsis whose
stage-1 pass still fits the request's remaining deadline budget at the
component's current speed.

Because every level of a depth-balanced R-tree partitions the same record
set, all resolutions share the build artifacts; only step 3 (aggregation)
is repeated per level, bounded by the total synopsis sizes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.adapters import ServiceAdapter
from repro.core.builder import BuildArtifacts, SynopsisBuilder, SynopsisConfig
from repro.core.synopsis import IndexFile, Synopsis

__all__ = ["MultiResolutionSynopsis", "build_multires"]


@dataclass
class MultiResolutionSynopsis:
    """Synopses of one partition at several aggregation granularities.

    ``levels`` maps R-tree level -> :class:`Synopsis`, ordered coarse
    (few aggregated points) to fine (many).
    """

    levels: dict[int, Synopsis] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.levels:
            raise ValueError("need at least one resolution")

    @property
    def resolutions(self) -> list[int]:
        """Levels ordered coarse -> fine (by aggregated-point count)."""
        return sorted(self.levels, key=lambda lv: self.levels[lv].n_aggregated)

    @property
    def finest(self) -> Synopsis:
        return self.levels[self.resolutions[-1]]

    @property
    def coarsest(self) -> Synopsis:
        return self.levels[self.resolutions[0]]

    def select(self, budget_s: float, speed: float,
               stage1_share: float = 0.2) -> Synopsis:
        """Pick the finest synopsis whose stage-1 pass fits the budget.

        Parameters
        ----------
        budget_s:
            Remaining time before the request's deadline (seconds).
        speed:
            The component's current speed in work units / second.
        stage1_share:
            Fraction of the budget stage 1 may consume; the rest is kept
            for ranked refinement (a stage-1 pass that eats the whole
            deadline would leave AccuracyTrader no time to be
            accuracy-aware).

        Always returns at least the coarsest synopsis — a component must
        produce *some* initial result, exactly as Algorithm 1 always runs
        its stage 1.
        """
        if speed <= 0:
            raise ValueError("speed must be positive")
        if not (0.0 < stage1_share <= 1.0):
            raise ValueError("stage1_share must be in (0, 1]")
        allowance = max(0.0, budget_s) * stage1_share * speed
        chosen = self.coarsest
        for level in self.resolutions:
            synopsis = self.levels[level]
            if synopsis.n_aggregated <= allowance:
                chosen = synopsis
            else:
                break
        return chosen


def build_multires(adapter: ServiceAdapter, partition,
                   config: SynopsisConfig | None = None,
                   n_resolutions: int = 3,
                   ) -> tuple[MultiResolutionSynopsis, BuildArtifacts]:
    """Build synopses at up to ``n_resolutions`` adjacent R-tree levels.

    The finest resolution is the level the plain builder would choose;
    coarser resolutions are its ancestors.  Aggregation (step 3) reuses
    the shared tree, so the extra cost over a single build is one
    aggregation pass per added level — each 1/max_entries the size of the
    previous.
    """
    if n_resolutions < 1:
        raise ValueError("n_resolutions must be >= 1")
    config = config if config is not None else SynopsisConfig()
    builder = SynopsisBuilder(adapter, config)
    base, artifacts = builder.build(partition)
    levels = {base.level: base}

    tree = artifacts.tree
    for level in range(base.level + 1,
                       min(base.level + n_resolutions, tree.root.level + 1)):
        t0 = time.perf_counter()
        groups = [np.asarray(sorted(tree.records_under(nd)), dtype=np.int64)
                  for nd in tree.nodes_at_level(level)]
        index = IndexFile(groups)
        vectors = [adapter.aggregate_group(partition, g) for g in groups]
        payload = adapter.assemble_payload(partition, vectors)
        levels[level] = Synopsis(
            index=index, payload=payload, level=level,
            n_original=index.n_records,
            meta={"total_s": time.perf_counter() - t0, "derived_from": base.level},
        )
    return MultiResolutionSynopsis(levels=levels), artifacts
