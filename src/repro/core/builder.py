"""Offline synopsis creation (paper §2.2, steps 1-3).

Step 1 reduces the partition to ``n_dims`` dense dimensions with
incremental SVD; step 2 groups the reduced points with an R-tree and picks
the level whose node count gives the target aggregation ratio; step 3
aggregates each group's *original* (un-reduced) data into one aggregated
point via the service adapter.

The builder returns both the :class:`~repro.core.synopsis.Synopsis` and a
:class:`BuildArtifacts` bundle (fitted SVD model, R-tree, per-group
vectors) that the incremental updater needs as its starting point — the
paper stores exactly these ("the R-tree and the index file are stored and
... used as the starting point of synopsis updating").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.adapters import ServiceAdapter
from repro.core.synopsis import IndexFile, Synopsis
from repro.rtree.bulk import str_bulk_load
from repro.rtree.tree import RTree
from repro.svd.incremental import FunkSVD

__all__ = ["SynopsisConfig", "BuildArtifacts", "SynopsisBuilder"]


@dataclass(frozen=True)
class SynopsisConfig:
    """Knobs of synopsis creation.

    Attributes
    ----------
    n_dims, n_iters:
        SVD reduction dimensionality and per-dimension iterations (the
        paper uses j=3, i=100).
    target_ratio:
        Desired original-points-per-aggregated-point (the paper's "e.g.
        100 times smaller" rule).  The builder aims for ``n / target_ratio``
        aggregated points.
    level_rule:
        How the R-tree level is selected against that target: "closest"
        (default) picks the level whose node count is geometrically
        nearest the target — the paper's "sufficient number of nodes for
        fine-grained differentiation"; "at_most" enforces the strict
        size bound, which can overshoot coarseness by up to a factor of
        ``max_entries``.
    max_entries, min_entries:
        R-tree node capacity.
    learning_rate, reg:
        SVD gradient-descent hyper-parameters.
    seed:
        Seed for SVD initialisation.
    """

    n_dims: int = 3
    n_iters: int = 100
    target_ratio: float = 100.0
    max_entries: int = 8
    min_entries: int | None = None
    learning_rate: float = 0.2
    reg: float = 0.02
    seed: int = 0
    level_rule: str = "closest"

    def __post_init__(self) -> None:
        if self.target_ratio < 1.0:
            raise ValueError("target_ratio must be >= 1")
        if self.level_rule not in ("closest", "at_most"):
            raise ValueError("level_rule must be 'closest' or 'at_most'")


@dataclass
class BuildArtifacts:
    """Everything the updater needs to continue from a build."""

    svd: FunkSVD
    tree: RTree
    level: int
    group_vectors: list = field(default_factory=list)
    reduced: np.ndarray | None = None


class SynopsisBuilder:
    """Runs the three-step creation pipeline for one partition."""

    def __init__(self, adapter: ServiceAdapter, config: SynopsisConfig | None = None):
        self.adapter = adapter
        self.config = config if config is not None else SynopsisConfig()

    def build(self, partition) -> tuple[Synopsis, BuildArtifacts]:
        """Create the synopsis of ``partition``.

        Returns ``(synopsis, artifacts)``; the synopsis's ``meta`` records
        wall-clock seconds per step (the §4.2 creation-overhead numbers).
        """
        cfg = self.config
        record_ids = self.adapter.record_ids(partition)
        n = int(record_ids.size)
        if n == 0:
            index = IndexFile([])
            payload = self.adapter.assemble_payload(partition, [])
            synopsis = Synopsis(index=index, payload=payload, level=0, n_original=0,
                                meta={"step1_s": 0.0, "step2_s": 0.0, "step3_s": 0.0})
            artifacts = BuildArtifacts(
                svd=FunkSVD(n_dims=cfg.n_dims, n_iters=cfg.n_iters, seed=cfg.seed),
                tree=RTree(max_entries=cfg.max_entries, min_entries=cfg.min_entries),
                level=0,
            )
            return synopsis, artifacts

        # Step 1: dimensionality reduction.
        t0 = time.perf_counter()
        rows, cols, vals, n_rows, n_cols = self.adapter.svd_triples(partition)
        svd = FunkSVD(n_dims=cfg.n_dims, n_iters=cfg.n_iters,
                      learning_rate=cfg.learning_rate, reg=cfg.reg, seed=cfg.seed)
        svd.fit(rows, cols, vals, n_rows=n_rows, n_cols=n_cols)
        reduced = self.adapter.postprocess_reduced(svd.row_factors)
        t1 = time.perf_counter()

        # Step 2: similar-point organisation with an R-tree.
        tree = str_bulk_load(reduced, record_ids=record_ids,
                             max_entries=cfg.max_entries, min_entries=cfg.min_entries)
        target_groups = max(1, int(n // cfg.target_ratio))
        if cfg.level_rule == "at_most":
            level = tree.choose_level(target_groups)
        else:
            level = tree.closest_level(target_groups)
        groups = [np.asarray(sorted(tree.records_under(node)), dtype=np.int64)
                  for node in tree.nodes_at_level(level)]
        index = IndexFile(groups)
        index.validate(expected_records=record_ids)
        t2 = time.perf_counter()

        # Step 3: information aggregation of original points.
        group_vectors = [self.adapter.aggregate_group(partition, g) for g in groups]
        payload = self.adapter.assemble_payload(partition, group_vectors)
        t3 = time.perf_counter()

        synopsis = Synopsis(
            index=index, payload=payload, level=level, n_original=n,
            meta={
                "step1_s": t1 - t0,
                "step2_s": t2 - t1,
                "step3_s": t3 - t2,
                "total_s": t3 - t0,
                "n_dims": cfg.n_dims,
                "n_iters": cfg.n_iters,
                "target_ratio": cfg.target_ratio,
            },
        )
        artifacts = BuildArtifacts(svd=svd, tree=tree, level=level,
                                   group_vectors=group_vectors, reduced=reduced)
        return synopsis, artifacts
