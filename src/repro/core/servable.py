"""The ``Servable`` protocol: what it means to be "a service" here.

The repo grows services in layers — a single partitioned
:class:`~repro.core.service.AccuracyTraderService`, replica groups over
one partition set, and a sharded router tier over many of them
(:mod:`repro.serving.router`).  Everything that *drives* a service — the
:class:`~repro.serving.harness.ServingHarness`, the load generators, the
benchmarks, the examples — depends only on this protocol, so a routed
64-component cluster and a 2-component toy service are interchangeable
behind the same three members.

The merge helpers also live here: combining per-component results into
one service answer is part of the serving *contract* (the router merges
across shards with the very same functions a single service uses across
its components), not an implementation detail of one class.

Request-envelope contract: the native request path is typed.  A request
travels as one immutable :class:`~repro.serving.envelope.ServingRequest`
(payload, deadline, request class, priority, per-request overrides,
monotonic id, arrival timestamp) through :meth:`Servable.serve` /
:meth:`Servable.aserve`, and the reply is a
:class:`~repro.serving.envelope.ServingResponse` (answer, per-component
reports, state epochs, queue/service timing).  Bare payloads are
wrapped with :func:`~repro.serving.envelope.as_envelope` before
dispatch.  (The positional ``process`` / ``aprocess`` shims that once
bridged the pre-envelope API were removed after their deprecation
cycle.)

State-plane contract: every implementation serves requests from
immutable, epoch-versioned component snapshots
(:mod:`repro.core.state`).  A request is pinned at dispatch to each
component's then-current epoch, so a concurrent update can never tear
an in-flight answer: each component's state is always internally
consistent, and a request dispatched before a multi-component
operation (e.g. a shard rebalance) drains entirely against pre-move
epochs.  The one deliberately weaker case: a request dispatched *while*
a rebalance is publishing its affected components may pin a mix of
pre- and post-move epochs — each component still torn-free, but the
cross-component cut not atomic (see the rebalance docstring and the
ROADMAP's atomic-cut follow-on).  The dispatched epoch is reported
back per component via
:attr:`~repro.core.processor.ProcessingReport.state_epoch`.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol, runtime_checkable

from repro.core.adapters import CFAdapter, SearchAdapter

__all__ = ["Servable", "unwrap_adapter", "default_merge"]


@runtime_checkable
class Servable(Protocol):
    """A deployed service: n components answering deadline-bound requests.

    Implementations: :class:`~repro.core.service.AccuracyTraderService`
    (one partitioned deployment), :class:`~repro.serving.router.ReplicaGroup`
    (replicated deployment) and :class:`~repro.serving.router.ShardedService`
    (routed cluster of replica groups).
    """

    @property
    def n_components(self) -> int:
        """Total partition-processing components behind this service."""
        ...

    def serve(self, request: "ServingRequest", clocks=None, backend=None,
              ) -> "ServingResponse":
        """Answer one typed request envelope — the native entry point.

        ``request`` is a :class:`~repro.serving.envelope.ServingRequest`
        with its deadline resolved (harnesses fill defaults before
        dispatch).  ``clocks`` optionally supplies one
        :class:`~repro.core.clock.DeadlineClock` per component;
        ``backend`` overrides the service's default
        :class:`~repro.serving.backends.ExecutionBackend` for this call.
        Returns a :class:`~repro.serving.envelope.ServingResponse`;
        execution is pinned to each component's dispatch-time state
        epoch (see the module docstring's state-plane contract), and
        every per-component report carries the envelope's
        ``request_id`` / ``request_class``.
        """
        ...

    async def aserve(self, request: "ServingRequest", clocks=None,
                     backend=None) -> "ServingResponse":
        """Async :meth:`serve`: same contract, awaitable execution.

        On an :class:`~repro.serving.aio.AsyncExecutionBackend` the
        per-component work is awaited natively (one event loop holds
        thousands of in-flight requests); any other backend is bridged
        through an executor so the caller's loop never blocks.  Results
        are bit-identical to :meth:`serve` over the same state.
        """
        ...

    def exact(self, request) -> Any:
        """Full exact computation (ground truth for accuracy scoring)."""
        ...


def unwrap_adapter(adapter):
    """Strip delegating wrappers (e.g. ``IOStallAdapter``) off an adapter.

    Wrappers expose the wrapped adapter as ``.inner``; unwrapping stops at
    the first concrete paper adapter (CF or search) so merge selection and
    workload detection see the underlying service semantics.
    """
    while not isinstance(adapter, (CFAdapter, SearchAdapter)) and \
            hasattr(adapter, "inner"):
        adapter = adapter.inner
    return adapter


def default_merge(adapter) -> Callable:
    """The canonical merge function for ``adapter``'s workload.

    CF components (and shards) merge via
    :func:`~repro.recommender.cf.merge_predictions`; search via
    :func:`~repro.search.engine.merge_topk`.  Both are associative, which
    is what lets the router merge across shards with the same function a
    single service uses across components.  Custom adapters must supply
    their own merge.
    """
    adapter = unwrap_adapter(adapter)
    if isinstance(adapter, CFAdapter):
        from repro.recommender.cf import merge_predictions

        def merge_cf(results, request):
            return merge_predictions(results,
                                     active_mean=request.active_mean)

        return merge_cf
    if isinstance(adapter, SearchAdapter):
        from repro.search.engine import merge_topk

        def merge_search(results, request):
            return merge_topk(results, request.k)

        return merge_search
    raise ValueError("custom adapters must supply a merge function")
