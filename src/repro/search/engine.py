"""Per-partition search component and top-k merging.

A :class:`SearchComponent` owns one partition's inverted index and answers
queries with scored hits; :func:`merge_topk` combines hits from many
components (or many refinement rounds on one component) into a global
top-k, deterministically tie-broken by doc id.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.search.index import InvertedIndex
from repro.search.scoring import score_query

__all__ = ["SearchHit", "SearchComponent", "merge_topk"]


@dataclass(frozen=True, order=True)
class SearchHit:
    """One scored document.  Ordering: higher score first, then lower id.

    The dataclass order is (sort_key asc), so we store the negated score —
    heapq and sorted() then yield best-first without custom comparators.
    """

    neg_score: float
    doc_id: int

    @property
    def score(self) -> float:
        return -self.neg_score

    @staticmethod
    def make(doc_id: int, score: float) -> "SearchHit":
        return SearchHit(neg_score=-float(score), doc_id=int(doc_id))


class SearchComponent:
    """One component's share of the corpus: an inverted index over pages."""

    def __init__(self, index: InvertedIndex | None = None):
        self.index = index if index is not None else InvertedIndex()

    @property
    def n_docs(self) -> int:
        return self.index.n_docs

    def add_page(self, doc_id: int, terms) -> None:
        self.index.add_document(doc_id, terms)

    def search(self, query_terms, k: int | None = None,
               doc_ids=None) -> list[SearchHit]:
        """Score the partition (or a subset) and return hits best-first.

        Parameters
        ----------
        query_terms:
            Tokenised query.
        k:
            If given, truncate to the best k hits.
        doc_ids:
            Restrict scoring to these documents (refinement subsets).
        """
        scores = score_query(self.index, query_terms, doc_ids=doc_ids)
        hits = [SearchHit.make(d, s) for d, s in scores.items()]
        if k is not None:
            if k < 0:
                raise ValueError("k must be non-negative")
            hits = heapq.nsmallest(k, hits)
            return hits
        hits.sort()
        return hits


def merge_topk(hit_lists, k: int) -> list[SearchHit]:
    """Global top-k across several hit lists.

    If the same doc id appears in multiple lists (e.g. a synopsis estimate
    superseded by an exact refinement score), the *highest* score wins —
    refinement can only sharpen a hit, never count it twice.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    best: dict[int, SearchHit] = {}
    for hits in hit_lists:
        for h in hits:
            cur = best.get(h.doc_id)
            if cur is None or h.score > cur.score:
                best[h.doc_id] = h
    return heapq.nsmallest(k, best.values())
