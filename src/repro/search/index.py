"""Inverted index over a partition of web pages.

Maps term -> postings (doc id, term frequency).  Supports the operations
the paper's pipeline needs: build from tokenised docs, dynamic add /
replace of documents (for synopsis-updating experiments), document
frequency lookups for IDF, and per-document lengths for normalisation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["InvertedIndex"]


class InvertedIndex:
    """Term -> postings-list index with document add/replace.

    Postings are kept as parallel Python lists during building and exposed
    as NumPy arrays on query (cached per term, invalidated on mutation):
    build cost stays linear while query-time scoring is vectorised.
    """

    def __init__(self) -> None:
        self._postings: dict[str, list[tuple[int, int]]] = {}
        self._doc_len: dict[int, int] = {}
        self._doc_terms: dict[int, dict[str, int]] = {}
        self._cache: dict[str, tuple[np.ndarray, np.ndarray]] = {}

    # ------------------------------------------------------------------

    @property
    def n_docs(self) -> int:
        return len(self._doc_len)

    @property
    def n_terms(self) -> int:
        return len(self._postings)

    def doc_ids(self) -> list[int]:
        return sorted(self._doc_len)

    def doc_length(self, doc_id: int) -> int:
        """Token count of a document (0 for unknown ids)."""
        return self._doc_len.get(doc_id, 0)

    def doc_frequency(self, term: str) -> int:
        """Number of documents containing ``term``."""
        return len(self._postings.get(term, ()))

    def term_frequency(self, term: str, doc_id: int) -> int:
        return self._doc_terms.get(doc_id, {}).get(term, 0)

    def document_counts(self, doc_id: int) -> dict[str, int]:
        """``doc_id``'s term -> count bag, in stored (insertion) order.

        The exact dict :meth:`add_document_counts` indexed — re-indexing
        it into a fresh index reproduces this document bit-identically.
        """
        counts = self._doc_terms.get(int(doc_id))
        if counts is None:
            raise KeyError(f"document {doc_id} not indexed")
        return dict(counts)

    # ------------------------------------------------------------------

    def add_document(self, doc_id: int, terms) -> None:
        """Index a tokenised document under ``doc_id``.

        Raises
        ------
        KeyError
            If ``doc_id`` is already indexed (use :meth:`replace_document`).
        """
        doc_id = int(doc_id)
        if doc_id in self._doc_len:
            raise KeyError(f"document {doc_id} already indexed")
        counts: dict[str, int] = {}
        n = 0
        for t in terms:
            counts[t] = counts.get(t, 0) + 1
            n += 1
        for t, c in counts.items():
            self._postings.setdefault(t, []).append((doc_id, c))
            self._cache.pop(t, None)
        self._doc_len[doc_id] = n
        self._doc_terms[doc_id] = counts

    def add_document_counts(self, doc_id: int, counts: dict[str, int]) -> None:
        """Index a document given term -> count directly (no token list).

        Used when assembling aggregated pages, whose "content" is already
        a merged term-count bag.
        """
        doc_id = int(doc_id)
        if doc_id in self._doc_len:
            raise KeyError(f"document {doc_id} already indexed")
        counts = {t: int(c) for t, c in counts.items() if c > 0}
        for t, c in counts.items():
            self._postings.setdefault(t, []).append((doc_id, c))
            self._cache.pop(t, None)
        self._doc_len[doc_id] = sum(counts.values())
        self._doc_terms[doc_id] = counts

    def remove_document(self, doc_id: int) -> None:
        doc_id = int(doc_id)
        counts = self._doc_terms.pop(doc_id, None)
        if counts is None:
            raise KeyError(f"document {doc_id} not indexed")
        del self._doc_len[doc_id]
        for t in counts:
            plist = self._postings[t]
            plist[:] = [(d, c) for d, c in plist if d != doc_id]
            if not plist:
                del self._postings[t]
            self._cache.pop(t, None)

    def replace_document(self, doc_id: int, terms) -> None:
        """Atomically re-index a document (changed web page)."""
        self.remove_document(doc_id)
        self.add_document(doc_id, terms)

    # ------------------------------------------------------------------

    def postings(self, term: str) -> tuple[np.ndarray, np.ndarray]:
        """(doc_ids, term_freqs) arrays for ``term`` (empty if absent)."""
        cached = self._cache.get(term)
        if cached is not None:
            return cached
        plist = self._postings.get(term)
        if not plist:
            empty = (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
            return empty
        docs = np.fromiter((d for d, _ in plist), dtype=np.int64, count=len(plist))
        tfs = np.fromiter((c for _, c in plist), dtype=np.int64, count=len(plist))
        self._cache[term] = (docs, tfs)
        return docs, tfs

    def vocabulary(self) -> list[str]:
        return sorted(self._postings)
