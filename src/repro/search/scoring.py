"""TF-IDF similarity scoring (Lucene-classic flavour).

Lucene's classic ``TFIDFSimilarity`` scores a document *d* for query *q*
roughly as ``sum over t in q of tf(t, d) * idf(t)^2 / norm(d)`` with
``tf = sqrt(term_freq)``, ``idf = 1 + ln(N / (df + 1))`` and
``norm = sqrt(doc_len)``.  We implement exactly that shape; what the
experiments need is the *same* scoring function applied to original pages
and aggregated pages, so relative ranks are meaningful.
"""

from __future__ import annotations

import numpy as np

__all__ = ["tf_weight", "idf_weight", "score_query", "score_query_scalar",
           "score_queries"]


def tf_weight(term_freq) -> np.ndarray:
    """Sub-linear term-frequency weight: sqrt(tf)."""
    tf = np.asarray(term_freq, dtype=float)
    if np.any(tf < 0):
        raise ValueError("term frequency must be non-negative")
    return np.sqrt(tf)


def idf_weight(n_docs: int, doc_freq: int) -> float:
    """Inverse document frequency: 1 + ln(N / (df + 1)), floored at 0.

    The +1 smoothing keeps the weight finite for df = 0 and the floor
    avoids negative weights for terms present in nearly every document.
    """
    if n_docs < 0 or doc_freq < 0:
        raise ValueError("counts must be non-negative")
    if n_docs == 0:
        return 0.0
    return max(0.0, 1.0 + float(np.log(n_docs / (doc_freq + 1.0))))


def score_query(index, query_terms, doc_ids=None) -> dict[int, float]:
    """Score documents of ``index`` against ``query_terms``.

    Parameters
    ----------
    index:
        An :class:`repro.search.index.InvertedIndex`.
    query_terms:
        Tokenised query (duplicates count: a repeated term doubles its
        contribution, matching a bag-of-words query model).
    doc_ids:
        Optional container restricting scoring to a subset of documents
        (AccuracyTrader refinement scores one ranked group at a time).

    Returns
    -------
    dict[int, float]
        doc id -> similarity score; only docs matching at least one query
        term (and inside ``doc_ids`` if given) appear.
    """
    parts = _term_contributions(index, query_terms)
    if not parts:
        return {}
    docs = np.concatenate([d for d, _ in parts])
    contrib = np.concatenate([c for _, c in parts])
    docs, contrib = _restrict_postings(docs, contrib, doc_ids)
    if docs.size == 0:
        return {}
    uniq, inverse = np.unique(docs, return_inverse=True)
    totals = np.bincount(inverse, weights=contrib, minlength=uniq.size)
    totals = _length_normalize(index, uniq, totals)
    return {int(d): float(s) for d, s in zip(uniq.tolist(), totals.tolist())}


def score_query_scalar(index, query_terms, doc_ids=None) -> dict[int, float]:
    """Per-posting Python-loop reference for :func:`score_query` (oracle).

    Accumulates each doc's score with sequential dict additions in term
    order — exactly the order ``bincount`` uses per doc in the vectorized
    path, so both return bit-identical scores.
    """
    n = index.n_docs
    restrict = None if doc_ids is None else set(int(d) for d in doc_ids)
    scores: dict[int, float] = {}
    term_counts: dict[str, int] = {}
    for t in query_terms:
        term_counts[t] = term_counts.get(t, 0) + 1
    for term, q_tf in term_counts.items():
        docs, tfs = index.postings(term)
        if docs.size == 0:
            continue
        idf = idf_weight(n, docs.size)
        if idf == 0.0:
            continue
        contrib = q_tf * tf_weight(tfs) * (idf * idf)
        for d, c in zip(docs.tolist(), contrib.tolist()):
            if restrict is not None and d not in restrict:
                continue
            scores[d] = scores.get(d, 0.0) + c
    # Length normalisation, applied once per matched doc.
    for d in scores:
        ln = index.doc_length(d)
        if ln > 0:
            scores[d] /= float(np.sqrt(ln))
    return scores


def score_queries(index, queries, doc_ids=None) -> list[dict[int, float]]:
    """Batched :func:`score_query`: score several queries in one pass.

    Per-query results are bit-identical to individual ``score_query``
    calls: contributions are concatenated query-major in term order, and
    ``bincount`` over folded (query, doc) keys accumulates each doc's
    score in that same order.  ``doc_ids`` (if given) restricts every
    query alike.
    """
    results: list[dict[int, float]] = [{} for _ in queries]
    doc_l, contrib_l, q_l = [], [], []
    for q, terms in enumerate(queries):
        for docs, contrib in _term_contributions(index, terms):
            doc_l.append(docs)
            contrib_l.append(contrib)
            q_l.append(np.full(docs.size, q, dtype=np.int64))
    if not doc_l:
        return results
    docs = np.concatenate(doc_l)
    contrib = np.concatenate(contrib_l)
    qs = np.concatenate(q_l)
    keep_docs, contrib, qs = _restrict_postings(docs, contrib, doc_ids, qs)
    if keep_docs.size == 0:
        return results
    # Fold (query, doc) into one key axis; doc ids may be arbitrary
    # non-negative ints, so span by the observed range.
    dmin = int(keep_docs.min())
    span = int(keep_docs.max()) - dmin + 1
    key = qs * span + (keep_docs - dmin)
    uniq, inverse = np.unique(key, return_inverse=True)
    totals = np.bincount(inverse, weights=contrib, minlength=uniq.size)
    u_docs = uniq % span + dmin
    totals = _length_normalize(index, u_docs, totals)
    for q, d, s in zip((uniq // span).tolist(), u_docs.tolist(),
                       totals.tolist()):
        results[q][int(d)] = float(s)
    return results


def _term_contributions(index, query_terms):
    """Per-term (docs, contribution) arrays, in first-seen term order."""
    n = index.n_docs
    term_counts: dict[str, int] = {}
    for t in query_terms:
        term_counts[t] = term_counts.get(t, 0) + 1
    parts = []
    for term, q_tf in term_counts.items():
        docs, tfs = index.postings(term)
        if docs.size == 0:
            continue
        idf = idf_weight(n, docs.size)
        if idf == 0.0:
            continue
        parts.append((docs, q_tf * tf_weight(tfs) * (idf * idf)))
    return parts


def _restrict_postings(docs, contrib, doc_ids, qs=None):
    """Drop postings outside ``doc_ids`` (None means keep everything)."""
    if doc_ids is not None:
        allowed = np.unique(np.fromiter((int(d) for d in doc_ids),
                                        dtype=np.int64))
        if allowed.size == 0:
            keep = np.zeros(docs.size, dtype=bool)
        else:
            pos = np.minimum(np.searchsorted(allowed, docs),
                             allowed.size - 1)
            keep = allowed[pos] == docs
        docs, contrib = docs[keep], contrib[keep]
        if qs is not None:
            qs = qs[keep]
    return (docs, contrib) if qs is None else (docs, contrib, qs)


def _length_normalize(index, doc_ids_arr, totals):
    """Divide each matched doc's total by sqrt(doc length), once."""
    lens = np.fromiter((index.doc_length(int(d)) for d in doc_ids_arr),
                       dtype=float, count=doc_ids_arr.size)
    pos = lens > 0
    return np.where(pos, totals / np.where(pos, np.sqrt(lens), 1.0), totals)
