"""TF-IDF similarity scoring (Lucene-classic flavour).

Lucene's classic ``TFIDFSimilarity`` scores a document *d* for query *q*
roughly as ``sum over t in q of tf(t, d) * idf(t)^2 / norm(d)`` with
``tf = sqrt(term_freq)``, ``idf = 1 + ln(N / (df + 1))`` and
``norm = sqrt(doc_len)``.  We implement exactly that shape; what the
experiments need is the *same* scoring function applied to original pages
and aggregated pages, so relative ranks are meaningful.
"""

from __future__ import annotations

import numpy as np

__all__ = ["tf_weight", "idf_weight", "score_query"]


def tf_weight(term_freq) -> np.ndarray:
    """Sub-linear term-frequency weight: sqrt(tf)."""
    tf = np.asarray(term_freq, dtype=float)
    if np.any(tf < 0):
        raise ValueError("term frequency must be non-negative")
    return np.sqrt(tf)


def idf_weight(n_docs: int, doc_freq: int) -> float:
    """Inverse document frequency: 1 + ln(N / (df + 1)), floored at 0.

    The +1 smoothing keeps the weight finite for df = 0 and the floor
    avoids negative weights for terms present in nearly every document.
    """
    if n_docs < 0 or doc_freq < 0:
        raise ValueError("counts must be non-negative")
    if n_docs == 0:
        return 0.0
    return max(0.0, 1.0 + float(np.log(n_docs / (doc_freq + 1.0))))


def score_query(index, query_terms, doc_ids=None) -> dict[int, float]:
    """Score documents of ``index`` against ``query_terms``.

    Parameters
    ----------
    index:
        An :class:`repro.search.index.InvertedIndex`.
    query_terms:
        Tokenised query (duplicates count: a repeated term doubles its
        contribution, matching a bag-of-words query model).
    doc_ids:
        Optional container restricting scoring to a subset of documents
        (AccuracyTrader refinement scores one ranked group at a time).

    Returns
    -------
    dict[int, float]
        doc id -> similarity score; only docs matching at least one query
        term (and inside ``doc_ids`` if given) appear.
    """
    n = index.n_docs
    restrict = None if doc_ids is None else set(int(d) for d in doc_ids)
    scores: dict[int, float] = {}
    term_counts: dict[str, int] = {}
    for t in query_terms:
        term_counts[t] = term_counts.get(t, 0) + 1
    for term, q_tf in term_counts.items():
        docs, tfs = index.postings(term)
        if docs.size == 0:
            continue
        idf = idf_weight(n, docs.size)
        if idf == 0.0:
            continue
        contrib = q_tf * tf_weight(tfs) * (idf * idf)
        for d, c in zip(docs.tolist(), contrib.tolist()):
            if restrict is not None and d not in restrict:
                continue
            scores[d] = scores.get(d, 0.0) + c
    # Length normalisation, applied once per matched doc.
    for d in scores:
        ln = index.doc_length(d)
        if ln > 0:
            scores[d] /= float(np.sqrt(ln))
    return scores
