"""Inverted-index web search engine (paper §3.2, service 2).

Implements the Lucene-style pipeline the paper modifies: tokenise pages,
build an inverted index per partition, score candidate pages against the
query terms with TF-IDF cosine-style similarity, return the top-k.

Accuracy metric (§4.1): the fraction of the *actual* top-10 pages (full
scan over everything) present in the *retrieved* top-10.
"""

from repro.search.tokenizer import tokenize
from repro.search.index import InvertedIndex
from repro.search.scoring import tf_weight, idf_weight
from repro.search.engine import SearchComponent, SearchHit, merge_topk
from repro.search.aggregation import build_aggregated_pages
from repro.search.metrics import topk_overlap, topk_accuracy_loss_percent

__all__ = [
    "tokenize",
    "InvertedIndex",
    "tf_weight",
    "idf_weight",
    "SearchComponent",
    "SearchHit",
    "merge_topk",
    "build_aggregated_pages",
    "topk_overlap",
    "topk_accuracy_loss_percent",
]
