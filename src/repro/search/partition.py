"""A component's corpus partition: pages + inverted index + term-doc matrix.

Bundles the three synchronized views of one partition's pages that the
synopsis pipeline needs:

- raw token lists (for aggregated-page construction),
- the inverted index (for exact scoring),
- the term-document count matrix (for SVD reduction).

Page ids within a partition must be dense ``0..n-1`` (they double as
R-tree record ids and matrix row ids); the workload generator assigns
globally unique ids per partition via an offset.
"""

from __future__ import annotations

from repro.search.index import InvertedIndex
from repro.svd.textmatrix import TermDocumentMatrix

__all__ = ["SearchPartition"]


class SearchPartition:
    """Mutable page partition with synchronized index/matrix views."""

    def __init__(self) -> None:
        self.index = InvertedIndex()
        self.matrix = TermDocumentMatrix()
        self.doc_tokens: dict[int, list[str]] = {}

    @property
    def n_docs(self) -> int:
        return len(self.doc_tokens)

    def add_page(self, tokens) -> int:
        """Append a page; returns its id (dense, 0-based)."""
        tokens = list(tokens)
        doc_id = self.n_docs
        self.index.add_document(doc_id, tokens)
        row = self.matrix.add_document(tokens)
        assert row == doc_id, "matrix row desynchronised from doc id"
        self.doc_tokens[doc_id] = tokens
        return doc_id

    def add_pages(self, token_lists) -> list[int]:
        return [self.add_page(t) for t in token_lists]

    def replace_page(self, doc_id: int, tokens) -> None:
        """Overwrite an existing page's content (changed web page)."""
        if doc_id not in self.doc_tokens:
            raise KeyError(f"page {doc_id} not in partition")
        tokens = list(tokens)
        self.index.replace_document(doc_id, tokens)
        self.matrix.replace_document(doc_id, tokens)
        self.doc_tokens[doc_id] = tokens

    def tokens_of(self, doc_id: int) -> list[str]:
        return self.doc_tokens[doc_id]
