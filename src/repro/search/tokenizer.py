"""Minimal deterministic tokenizer.

Lower-cases, splits on non-alphanumeric runs, and drops a small English
stop-word list.  Deliberately simple: retrieval quality in the experiments
comes from the synthetic corpus's topic structure, not linguistic
sophistication, and a deterministic tokenizer keeps results reproducible.
"""

from __future__ import annotations

import re

__all__ = ["tokenize", "STOP_WORDS"]

STOP_WORDS = frozenset(
    """a an and are as at be by for from has he in is it its of on that the
    to was were will with this those these or not but they you your i we
    our us them his her she him had have do does did""".split()
)

_TOKEN_RE = re.compile(r"[a-z0-9]+")


def tokenize(text: str, drop_stop_words: bool = True) -> list[str]:
    """Split ``text`` into lowercase alphanumeric tokens.

    Parameters
    ----------
    text:
        Raw document or query text.
    drop_stop_words:
        When true (default), common English function words are removed.
    """
    tokens = _TOKEN_RE.findall(text.lower())
    if drop_stop_words:
        return [t for t in tokens if t not in STOP_WORDS]
    return tokens
