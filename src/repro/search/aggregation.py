"""Aggregated-page construction (synopsis step 3, text datasets).

Paper §2.2: "suppose an aggregated web page corresponds to a set of web
pages, this page contains all the contents in these pages."  An aggregated
page is therefore the *bag-union* of its members' term occurrences; the
synopsis index over aggregated pages is just another
:class:`repro.search.index.InvertedIndex`, so the untouched scoring code
processes it (the paper's no-algorithm-change property).
"""

from __future__ import annotations

from repro.search.index import InvertedIndex

__all__ = ["merge_page_terms", "build_aggregated_pages"]


def merge_page_terms(token_lists) -> list[str]:
    """Concatenate member pages' token lists into one aggregated page.

    Token multiplicity is preserved (term frequencies add), matching
    "contains all the contents in these pages".
    """
    merged: list[str] = []
    for tokens in token_lists:
        merged.extend(tokens)
    return merged


def build_aggregated_pages(doc_tokens: dict[int, list[str]], groups) -> InvertedIndex:
    """Build the synopsis index: one aggregated page per group.

    Parameters
    ----------
    doc_tokens:
        doc id -> tokenised content for every page in the partition.
    groups:
        Sequence of doc-id collections; group *g* becomes aggregated page
        *g* in the returned index.

    Returns
    -------
    InvertedIndex
        Index over aggregated pages, ids ``0..len(groups)-1``.
    """
    synopsis = InvertedIndex()
    for g, doc_ids in enumerate(groups):
        tokens = merge_page_terms(doc_tokens[int(d)] for d in doc_ids)
        synopsis.add_document(g, tokens)
    return synopsis
