"""Search accuracy metrics (paper §4.1).

Accuracy = |retrieved top-k ∩ actual top-k| / k, where "actual" is the
top-k from a full scan of all pages.  Accuracy loss is the percentage
drop relative to the exact result (whose accuracy is 1 by definition).
"""

from __future__ import annotations

__all__ = ["topk_overlap", "topk_accuracy_loss_percent"]


def topk_overlap(retrieved_ids, actual_ids, k: int | None = None) -> float:
    """Fraction of the actual top-k found in the retrieved top-k.

    ``k`` defaults to ``len(actual_ids)``.  Both inputs are truncated to
    ``k`` before comparison; order within the lists does not matter (the
    paper's metric is set overlap of the top-10s).

    An empty actual set (query matching nothing) counts as full accuracy:
    there was nothing to miss.
    """
    actual = list(actual_ids)
    if k is None:
        k = len(actual)
    if k < 0:
        raise ValueError("k must be non-negative")
    actual_set = set(actual[:k])
    if not actual_set:
        return 1.0
    retrieved_set = set(list(retrieved_ids)[:k])
    return len(retrieved_set & actual_set) / len(actual_set)


def topk_accuracy_loss_percent(retrieved_ids, actual_ids, k: int | None = None) -> float:
    """Percentage accuracy loss of a retrieved top-k vs the actual top-k."""
    return 100.0 * (1.0 - topk_overlap(retrieved_ids, actual_ids, k=k))
