"""Synthetic MovieLens-like rating data (substitute for MovieLens 10M).

The CF experiments need a rating matrix with (a) low-rank latent structure
plus noise — so that similar-minded users exist and Pearson weights carry
signal — and (b) Zipfian item popularity and realistic sparsity — so
partition statistics look like the real dataset (paper: ~4,000 users,
1,000 items, 0.27M ratings per partition, i.e. ~6.75% density).

Users are drawn from a small number of latent "taste clusters" (cluster
centre + per-user jitter), which gives the user-similarity structure that
synopsis grouping exploits; ratings are inner products squashed to the
1..5 star scale with observation noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.recommender.matrix import RatingMatrix
from repro.util.rng import make_rng
from repro.util.zipf import zipf_weights

__all__ = ["MovieLensConfig", "SyntheticRatings", "generate_ratings"]


@dataclass(frozen=True)
class MovieLensConfig:
    """Shape and statistics of the synthetic rating data."""

    n_users: int = 4000
    n_items: int = 1000
    density: float = 0.0675        # observed fraction of the matrix
    n_factors: int = 6             # latent dimensionality of tastes
    n_clusters: int = 12           # taste clusters (user-similarity structure)
    cluster_spread: float = 0.4    # user jitter around the cluster centre
    noise: float = 0.35            # observation noise (stars)
    popularity_exponent: float = 0.8  # Zipf skew of item popularity
    rating_min: float = 1.0
    rating_max: float = 5.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_users < 1 or self.n_items < 1:
            raise ValueError("need at least one user and item")
        if not (0.0 < self.density <= 1.0):
            raise ValueError("density must be in (0, 1]")
        if self.n_clusters < 1 or self.n_factors < 1:
            raise ValueError("need at least one cluster and factor")


@dataclass
class SyntheticRatings:
    """Generated ratings plus the ground truth behind them.

    ``true_ratings(users, items)`` evaluates the noiseless preference for
    arbitrary pairs — the experiments' RMSE ground truth.
    """

    matrix: RatingMatrix
    user_factors: np.ndarray
    item_factors: np.ndarray
    user_cluster: np.ndarray
    config: MovieLensConfig

    def true_ratings(self, users, items) -> np.ndarray:
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        raw = np.einsum("ij,ij->i", self.user_factors[users], self.item_factors[items])
        return _squash(raw, self.config)


def _squash(raw: np.ndarray, cfg: MovieLensConfig) -> np.ndarray:
    """Map raw preference scores onto the star scale with a logistic."""
    span = cfg.rating_max - cfg.rating_min
    return cfg.rating_min + span / (1.0 + np.exp(-raw))


def generate_ratings(config: MovieLensConfig | None = None,
                     seed: int | None = None) -> SyntheticRatings:
    """Generate one partition's worth of synthetic rating data.

    ``seed`` overrides ``config.seed`` (convenient for per-partition
    generation: same config, different seeds).
    """
    cfg = config if config is not None else MovieLensConfig()
    rng = make_rng(cfg.seed if seed is None else seed, "movielens")

    centres = rng.normal(0.0, 1.0, (cfg.n_clusters, cfg.n_factors))
    cluster = rng.integers(0, cfg.n_clusters, cfg.n_users)
    user_f = centres[cluster] + rng.normal(0.0, cfg.cluster_spread,
                                           (cfg.n_users, cfg.n_factors))
    item_f = rng.normal(0.0, 1.0, (cfg.n_items, cfg.n_factors))

    # Zipfian item popularity decides *which* cells are observed.
    n_obs = int(round(cfg.density * cfg.n_users * cfg.n_items))
    item_p = zipf_weights(cfg.n_items, cfg.popularity_exponent)
    # Per-user rating counts ~ multinomial over users (roughly uniform with
    # fluctuation), items drawn by popularity without replacement per user.
    per_user = rng.multinomial(n_obs, np.full(cfg.n_users, 1.0 / cfg.n_users))
    users_l, items_l = [], []
    for u in range(cfg.n_users):
        k = min(int(per_user[u]), cfg.n_items)
        if k == 0:
            continue
        chosen = rng.choice(cfg.n_items, size=k, replace=False, p=item_p)
        users_l.append(np.full(k, u, dtype=np.int64))
        items_l.append(np.asarray(chosen, dtype=np.int64))
    users = np.concatenate(users_l) if users_l else np.empty(0, dtype=np.int64)
    items = np.concatenate(items_l) if items_l else np.empty(0, dtype=np.int64)

    raw = np.einsum("ij,ij->i", user_f[users], item_f[items])
    stars = _squash(raw, cfg) + rng.normal(0.0, cfg.noise, raw.shape)
    stars = np.clip(stars, cfg.rating_min, cfg.rating_max)

    matrix = RatingMatrix(users, items, stars,
                          n_users=cfg.n_users, n_items=cfg.n_items)
    return SyntheticRatings(matrix=matrix, user_factors=user_f,
                            item_factors=item_f, user_cluster=cluster,
                            config=cfg)
