"""Diurnal query-log model (substitute for the Sogou 24-hour query log).

Figures 5-8 use only two properties of the real log: the per-hour arrival
*rates* (night trough, morning ramp, evening peak — Figure 7(a)) and the
query *terms*.  :data:`HOURLY_RATE_PROFILE` encodes the paper's rate shape
normalised to a peak of 1.0; hour 9 is on the morning ramp (increasing),
hour 10 is near-steady, and hour 24 decays — matching the paper's choice
of the three "typical hours".  Query terms are topic draws against a
:class:`~repro.workloads.corpus.SyntheticCorpus` with Zipfian topic
popularity, so popular topics recur like popular real-world queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.rng import make_rng
from repro.util.zipf import ZipfSampler, zipf_weights
from repro.workloads.arrival import nhpp_arrivals
from repro.workloads.corpus import SyntheticCorpus

__all__ = [
    "HOURLY_RATE_PROFILE",
    "QueryLogConfig",
    "SyntheticQueryLog",
    "generate_query_log",
    "hour_arrival_rate",
]

# Relative request rate per hour-of-day (index 0 = hour 1 of the paper,
# i.e. midnight-1am), normalised to max 1.0.  Shape follows Figure 7(a):
# evening peak around hours 21-23, deep trough hours 3-7, steep morning
# ramp through hours 8-11.
HOURLY_RATE_PROFILE: np.ndarray = np.array([
    0.52,  # hour 1   (00-01)
    0.38,  # hour 2
    0.26,  # hour 3
    0.18,  # hour 4
    0.14,  # hour 5
    0.13,  # hour 6
    0.16,  # hour 7
    0.24,  # hour 8
    0.42,  # hour 9   (morning ramp: increasing within the hour)
    0.60,  # hour 10  (steady-ish)
    0.72,  # hour 11
    0.78,  # hour 12
    0.74,  # hour 13
    0.72,  # hour 14
    0.76,  # hour 15
    0.80,  # hour 16
    0.82,  # hour 17
    0.80,  # hour 18
    0.78,  # hour 19
    0.84,  # hour 20
    0.94,  # hour 21
    1.00,  # hour 22  (evening peak)
    0.92,  # hour 23
    0.70,  # hour 24  (decreasing within the hour)
])
HOURLY_RATE_PROFILE.setflags(write=False)


def hour_arrival_rate(hour: int, peak_rate: float) -> float:
    """Mean arrival rate (req/s) of 1-based ``hour`` given the peak rate."""
    if not (1 <= hour <= 24):
        raise ValueError("hour must be 1..24")
    if peak_rate <= 0:
        raise ValueError("peak_rate must be positive")
    return float(HOURLY_RATE_PROFILE[hour - 1] * peak_rate)


@dataclass(frozen=True)
class QueryLogConfig:
    """Knobs of the synthetic query log."""

    peak_rate: float = 100.0        # req/s at the busiest hour
    terms_per_query_mean: float = 2.6  # real logs average ~2-3 terms
    topic_zipf_exponent: float = 0.9   # popular topics recur
    seed: int = 0

    def __post_init__(self) -> None:
        if self.peak_rate <= 0:
            raise ValueError("peak_rate must be positive")
        if self.terms_per_query_mean < 1:
            raise ValueError("queries need at least one term on average")


@dataclass
class SyntheticQueryLog:
    """Arrival times and query terms for one hour of simulated load."""

    hour: int
    arrivals: np.ndarray                 # seconds within the hour, sorted
    queries: list = field(default_factory=list)  # list[list[str]] terms
    query_topics: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))

    @property
    def n_queries(self) -> int:
        return self.arrivals.size

    def mean_rate(self, duration: float = 3600.0) -> float:
        return self.n_queries / duration


def _hour_rate_fn(hour: int, peak_rate: float):
    """Instantaneous rate within the hour, linear between neighbours.

    Interpolating toward the adjacent hours reproduces the paper's
    "increasing / steady / decreasing within the hour" patterns for hours
    9, 10 and 24.
    """
    prev_rate = HOURLY_RATE_PROFILE[(hour - 2) % 24] * peak_rate
    cur_rate = HOURLY_RATE_PROFILE[hour - 1] * peak_rate
    next_rate = HOURLY_RATE_PROFILE[hour % 24] * peak_rate
    # Midpoint of the hour carries the nominal rate; edges blend halves.
    start_rate = 0.5 * (prev_rate + cur_rate)
    end_rate = 0.5 * (cur_rate + next_rate)

    def rate(t: float) -> float:
        x = t / 3600.0
        if x < 0.5:
            return start_rate + (cur_rate - start_rate) * (x / 0.5)
        return cur_rate + (end_rate - cur_rate) * ((x - 0.5) / 0.5)

    return rate, max(start_rate, cur_rate, end_rate)


def generate_query_log(corpus: SyntheticCorpus, hour: int,
                       config: QueryLogConfig | None = None,
                       duration: float = 3600.0) -> SyntheticQueryLog:
    """Generate one hour's arrivals + queries against ``corpus``.

    Parameters
    ----------
    corpus:
        The corpus queries are aimed at (topics define term choices).
    hour:
        1-based hour of day (1..24), selecting the rate profile segment.
    config:
        Log parameters (defaults to :class:`QueryLogConfig`).
    duration:
        Simulated window in seconds (default one hour; shorter windows
        subsample the same process for cheaper experiments).
    """
    cfg = config if config is not None else QueryLogConfig()
    rng = make_rng(cfg.seed, "sogou", hour)
    rate_fn, rate_max = _hour_rate_fn(hour, cfg.peak_rate)
    # Scale the profile to `duration` by compressing the hour.
    scale = 3600.0 / duration if duration > 0 else 1.0

    def scaled_rate(t: float) -> float:
        return rate_fn(t * scale)

    arrivals = nhpp_arrivals(scaled_rate, rate_max, duration, rng)

    n_topics = corpus.config.n_topics
    topic_sampler = ZipfSampler(n_topics, cfg.topic_zipf_exponent, rng)
    # Map Zipf rank -> topic id with a fixed permutation so "popular"
    # topics are stable across hours of the same seed.
    perm = make_rng(cfg.seed, "sogou-topic-perm").permutation(n_topics)
    topics = perm[topic_sampler.sample(arrivals.size)] if arrivals.size else \
        np.empty(0, dtype=np.int64)

    queries = []
    for topic in topics:
        n_terms = max(1, int(rng.poisson(cfg.terms_per_query_mean - 1)) + 1)
        queries.append(corpus.topic_words(int(topic), n=n_terms, rng=rng))

    return SyntheticQueryLog(hour=hour, arrivals=arrivals, queries=queries,
                             query_topics=np.asarray(topics, dtype=np.int64))
