"""Workload generators standing in for the paper's datasets and traces.

Each generator documents the real artifact it substitutes and which
properties it preserves (see DESIGN.md §2):

- :mod:`repro.workloads.movielens` — MovieLens 10M rating matrix;
- :mod:`repro.workloads.corpus` — Sogou web-page collection;
- :mod:`repro.workloads.sogou` — Sogou 24-hour user-query log (terms +
  diurnal arrival rates);
- :mod:`repro.workloads.mapreduce` — SWIM/Facebook MapReduce co-location
  trace (interference);
- :mod:`repro.workloads.arrival` — Poisson / nonhomogeneous-Poisson /
  bursty open-loop request arrival processes;
- :mod:`repro.workloads.partitioning` — shard maps (round-robin / hash /
  locality) splitting workload data across service components and shards.
"""

from repro.workloads.arrival import bursty_arrivals, poisson_arrivals, nhpp_arrivals
from repro.workloads.partitioning import (
    ShardMap,
    make_shard_map,
    reshard_corpus,
    reshard_partitions,
    reshard_ratings,
    shard_corpus,
    shard_ratings,
    split_corpus,
    split_ratings,
)
from repro.workloads.movielens import MovieLensConfig, SyntheticRatings, generate_ratings
from repro.workloads.corpus import CorpusConfig, SyntheticCorpus, generate_corpus
from repro.workloads.sogou import (
    HOURLY_RATE_PROFILE,
    QueryLogConfig,
    SyntheticQueryLog,
    generate_query_log,
    hour_arrival_rate,
)
from repro.workloads.mapreduce import MapReduceTraceConfig, generate_interference_jobs

__all__ = [
    "poisson_arrivals",
    "nhpp_arrivals",
    "bursty_arrivals",
    "split_ratings",
    "split_corpus",
    "ShardMap",
    "make_shard_map",
    "shard_ratings",
    "shard_corpus",
    "reshard_ratings",
    "reshard_corpus",
    "reshard_partitions",
    "MovieLensConfig",
    "SyntheticRatings",
    "generate_ratings",
    "CorpusConfig",
    "SyntheticCorpus",
    "generate_corpus",
    "HOURLY_RATE_PROFILE",
    "QueryLogConfig",
    "SyntheticQueryLog",
    "generate_query_log",
    "hour_arrival_rate",
    "MapReduceTraceConfig",
    "generate_interference_jobs",
]
