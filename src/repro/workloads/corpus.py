"""Synthetic web corpus (substitute for the Sogou page collection).

Retrieval accuracy experiments need a corpus where (a) pages cluster by
topic — so R-tree grouping of SVD-reduced pages is meaningful — and
(b) term frequencies are Zipfian — so TF-IDF behaves realistically.

Pages are generated from a topic-mixture model: each topic owns a band of
the vocabulary with its own Zipf distribution; a page draws most tokens
from its primary topic and the rest from a background Zipf over the whole
vocabulary.  Queries (see :mod:`repro.workloads.sogou`) sample topic words
the same way, so each query has a well-defined set of truly relevant pages.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.search.partition import SearchPartition
from repro.util.rng import make_rng
from repro.util.zipf import ZipfSampler

__all__ = ["CorpusConfig", "SyntheticCorpus", "generate_corpus"]


@dataclass(frozen=True)
class CorpusConfig:
    """Shape of the synthetic corpus."""

    n_docs: int = 2000
    n_topics: int = 20
    vocab_size: int = 5000
    words_per_topic: int = 200     # vocabulary band owned by each topic
    doc_length_mean: float = 120.0  # lognormal page lengths
    doc_length_sigma: float = 0.4
    topic_affinity: float = 0.7    # fraction of tokens from the page's topic
    zipf_exponent: float = 1.05
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_docs < 1 or self.n_topics < 1:
            raise ValueError("need at least one doc and topic")
        if self.n_topics * self.words_per_topic > self.vocab_size:
            raise ValueError("vocabulary too small for the topic bands")
        if not (0.0 <= self.topic_affinity <= 1.0):
            raise ValueError("topic_affinity must be in [0, 1]")


@dataclass
class SyntheticCorpus:
    """A generated partition plus its topic ground truth."""

    partition: SearchPartition
    doc_topic: np.ndarray
    config: CorpusConfig

    def topic_words(self, topic: int, n: int = 3,
                    rng: np.random.Generator | None = None) -> list[str]:
        """Representative query terms for a topic (most popular band words)."""
        cfg = self.config
        if not (0 <= topic < cfg.n_topics):
            raise IndexError(f"topic {topic} out of range")
        base = topic * cfg.words_per_topic
        if rng is None:
            offsets = range(n)
        else:
            # Popular-word bias: geometric offsets into the band.
            offsets = np.minimum(
                rng.geometric(p=0.15, size=n) - 1, cfg.words_per_topic - 1
            )
        return [f"w{base + int(o)}" for o in offsets]


def generate_corpus(config: CorpusConfig | None = None,
                    seed: int | None = None) -> SyntheticCorpus:
    """Generate one partition's worth of pages."""
    cfg = config if config is not None else CorpusConfig()
    rng = make_rng(cfg.seed if seed is None else seed, "corpus")

    topic_sampler = ZipfSampler(cfg.words_per_topic, cfg.zipf_exponent, rng)
    backgr_sampler = ZipfSampler(cfg.vocab_size, cfg.zipf_exponent, rng)

    partition = SearchPartition()
    doc_topic = rng.integers(0, cfg.n_topics, cfg.n_docs)
    lengths = np.maximum(
        rng.lognormal(np.log(cfg.doc_length_mean), cfg.doc_length_sigma,
                      cfg.n_docs).astype(int),
        5,
    )
    for d in range(cfg.n_docs):
        topic = int(doc_topic[d])
        base = topic * cfg.words_per_topic
        n_tok = int(lengths[d])
        from_topic = rng.random(n_tok) < cfg.topic_affinity
        n_topic_tok = int(from_topic.sum())
        words = np.empty(n_tok, dtype=np.int64)
        words[from_topic] = base + topic_sampler.sample(n_topic_tok)
        words[~from_topic] = backgr_sampler.sample(n_tok - n_topic_tok)
        partition.add_page([f"w{w}" for w in words])

    return SyntheticCorpus(partition=partition, doc_topic=doc_topic, config=cfg)
