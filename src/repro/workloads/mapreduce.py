"""Co-located MapReduce interference traces (substitute for SWIM/Facebook).

The paper co-locates each service node with short-running Hadoop jobs
replayed by BigDataBench-MT from the Facebook SWIM trace: a mix of
CPU-intensive (WordCount) and I/O-intensive (Sort) jobs with input sizes
from 1MB to 10GB.  What the latency experiments need from that trace is
*when* each node is slowed and *by how much*; this generator reproduces
those two marginals:

- job inter-arrival per node: exponential (SWIM jobs are bursty but
  memoryless at hour scale);
- job duration: lognormal, heavy-tailed like the 1MB-10GB input mix
  (most jobs are seconds, a few run minutes);
- slowdown while running: CPU jobs contend ~evenly (slowdown ~2), I/O
  jobs stall the service harder (slowdown up to ~6).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import make_rng

__all__ = ["MapReduceTraceConfig", "generate_interference_jobs"]


@dataclass(frozen=True)
class MapReduceTraceConfig:
    """Statistical shape of the co-located batch workload."""

    jobs_per_hour_per_node: float = 25.0   # short-running job arrival rate
    duration_mean_s: float = 1.5           # lognormal median duration
    duration_sigma: float = 0.6            # tail from the 1MB-10GB input mix
    cpu_job_fraction: float = 0.6          # WordCount vs Sort mix
    cpu_slowdown: float = 1.5              # service slowdown while CPU job runs
    io_slowdown_min: float = 1.8
    io_slowdown_max: float = 2.8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.jobs_per_hour_per_node < 0:
            raise ValueError("job rate must be non-negative")
        if self.duration_mean_s <= 0:
            raise ValueError("duration mean must be positive")
        if not (0.0 <= self.cpu_job_fraction <= 1.0):
            raise ValueError("cpu_job_fraction must be in [0, 1]")
        if self.cpu_slowdown < 1 or self.io_slowdown_min < 1:
            raise ValueError("slowdowns must be >= 1")
        if self.io_slowdown_max < self.io_slowdown_min:
            raise ValueError("io slowdown range inverted")


def generate_interference_jobs(n_nodes: int, duration: float,
                               config: MapReduceTraceConfig | None = None,
                               seed: int | None = None) -> list[tuple[int, float, float, float]]:
    """Generate ``(node, start, end, slowdown)`` job intervals.

    Suitable for feeding straight into
    :class:`repro.cluster.interference.InterferenceTimeline`.

    Parameters
    ----------
    n_nodes:
        Number of nodes to co-locate jobs on.
    duration:
        Trace window in seconds (jobs start within it; a job may end
        after it, as in any real trace cut).
    config:
        Trace statistics (defaults to :class:`MapReduceTraceConfig`).
    seed:
        Overrides ``config.seed``.
    """
    cfg = config if config is not None else MapReduceTraceConfig()
    if n_nodes < 1:
        raise ValueError("need at least one node")
    if duration < 0:
        raise ValueError("duration must be non-negative")
    rng = make_rng(cfg.seed if seed is None else seed, "mapreduce")
    rate = cfg.jobs_per_hour_per_node / 3600.0
    jobs: list[tuple[int, float, float, float]] = []
    if rate == 0 or duration == 0:
        return jobs
    log_mean = float(np.log(cfg.duration_mean_s))
    for node in range(n_nodes):
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / rate))
            if t >= duration:
                break
            length = float(rng.lognormal(log_mean, cfg.duration_sigma))
            if rng.random() < cfg.cpu_job_fraction:
                slowdown = cfg.cpu_slowdown
            else:
                slowdown = float(rng.uniform(cfg.io_slowdown_min,
                                             cfg.io_slowdown_max))
            jobs.append((node, t, t + length, slowdown))
    return jobs
