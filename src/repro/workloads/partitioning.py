"""Round-robin partitioning of workload data across service components.

The paper deploys each service over n components, each owning a share of
the input data.  These helpers split the generated workloads the way the
deployment would: records dealt round-robin by id, so every component
gets a statistically identical slice.  Handles record counts that do not
divide evenly — component p receives ``ceil((n_records - p) / n_parts)``
records with dense local ids.
"""

from __future__ import annotations

import numpy as np

from repro.recommender.matrix import RatingMatrix
from repro.search.partition import SearchPartition

__all__ = ["split_ratings", "split_corpus"]


def split_ratings(matrix: RatingMatrix, n_parts: int) -> list[RatingMatrix]:
    """Partition users round-robin into ``n_parts`` rating matrices.

    User ``u`` goes to component ``u % n_parts`` with local id
    ``u // n_parts``; all parts share the full item space so predictions
    merge across components.
    """
    if n_parts < 1:
        raise ValueError("need at least one part")
    users, items, vals = matrix.to_triples()
    parts = []
    for p in range(n_parts):
        mask = (users % n_parts) == p
        n_local = (matrix.n_users - p + n_parts - 1) // n_parts
        parts.append(RatingMatrix(users[mask] // n_parts, items[mask],
                                  vals[mask],
                                  n_users=n_local,
                                  n_items=matrix.n_items))
    return parts


def split_corpus(partition: SearchPartition, n_parts: int) -> list[SearchPartition]:
    """Partition pages round-robin into ``n_parts`` search partitions."""
    if n_parts < 1:
        raise ValueError("need at least one part")
    parts = [SearchPartition() for _ in range(n_parts)]
    for doc_id in range(partition.n_docs):
        parts[doc_id % n_parts].add_page(partition.tokens_of(doc_id))
    return parts
