"""Partitioning of workload data across service components and shards.

The paper deploys each service over n components, each owning a share of
the input data.  A :class:`ShardMap` decides which share: it assigns
every global record id to one shard and a dense local id within it,
under one of three placement strategies:

- ``round_robin`` — record ``r`` to shard ``r % n`` (the paper's
  deployment default: every shard gets a statistically identical slice);
- ``hash`` — a seeded integer hash of the id picks the shard, so
  placement is stable under growth of the id space (adding records never
  moves existing ones between shards the way round-robin renumbering
  conceptually would);
- ``locality`` — contiguous id ranges, keeping neighbouring records
  (e.g. consecutive users or crawl-ordered pages) co-resident, the
  layout range queries and locality-sensitive caches want.

:func:`shard_ratings` / :func:`shard_corpus` materialise a map into
per-shard datasets; :func:`split_ratings` / :func:`split_corpus` are the
original round-robin conveniences, now thin wrappers over the same code
path.  Uneven counts are handled: shard p of a round-robin map over N
records gets ``ceil((N - p) / n_shards)`` records, always with dense
local ids.

Online rebalancing: :meth:`ShardMap.rebalance` moves named records to
new shards, returning a fourth-strategy (``"custom"``) map plus the
*minimal* set of affected shards — only shards that gained or lost a
record change at all; every other shard's assignments and local ids are
untouched.  :func:`reshard_ratings` / :func:`reshard_corpus` rebuild
exactly the affected shards' datasets, bit-identical to a cold
:func:`shard_ratings` / :func:`shard_corpus` build over the new map.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.recommender.matrix import RatingMatrix
from repro.search.partition import SearchPartition

__all__ = ["ShardMap", "make_shard_map", "shard_ratings", "shard_corpus",
           "split_ratings", "split_corpus", "reshard_ratings",
           "reshard_corpus", "reshard_partitions"]

# "custom" marks a map whose assignment vector is the source of truth
# (the result of explicit rebalancing moves) rather than a generating
# rule; make_shard_map never produces it.
_STRATEGIES = ("round_robin", "hash", "locality", "custom")


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Deterministic 64-bit mixer (splitmix64 finaliser), vectorised.

    Python's builtin ``hash`` is salted per process, so shard placement
    must come from an explicit mixer to be reproducible across runs.
    """
    with np.errstate(over="ignore"):
        z = x + np.uint64(0x9E3779B97F4A7C15)
        z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        return z ^ (z >> np.uint64(31))


@dataclass(frozen=True, eq=False)
class ShardMap:
    """Assignment of ``n_records`` global record ids to ``n_shards``.

    ``assignments[r]`` is record r's shard; ``local_ids[r]`` its dense
    id within that shard (0..count-1, ascending with the global id).
    Built through :func:`make_shard_map`.  Equality is identity
    (``eq=False``): the generated field-tuple comparison would apply
    ``bool()`` to elementwise ndarray equality and raise.
    """

    n_shards: int
    n_records: int
    strategy: str
    assignments: np.ndarray = field(repr=False)
    local_ids: np.ndarray = field(repr=False)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError("need at least one shard")
        if self.n_records < 0:
            raise ValueError("n_records must be non-negative")
        if self.strategy not in _STRATEGIES:
            raise ValueError(f"unknown strategy {self.strategy!r}; "
                             f"expected one of {_STRATEGIES}")

    def shard_of(self, record_id: int) -> int:
        """The shard owning global ``record_id`` (update routing)."""
        return int(self.assignments[record_id])

    def local_id(self, record_id: int) -> int:
        """``record_id``'s dense id within its shard."""
        return int(self.local_ids[record_id])

    def counts(self) -> np.ndarray:
        """Records per shard."""
        return np.bincount(self.assignments, minlength=self.n_shards)

    def members_of(self, shard: int) -> np.ndarray:
        """Global record ids owned by ``shard``, in local-id order."""
        if not (0 <= shard < self.n_shards):
            raise IndexError(f"shard {shard} out of range")
        return np.flatnonzero(self.assignments == shard)

    def with_records_added(self, n_new: int) -> "ShardMap":
        """A map covering ``n_new`` additional records (ids continue on).

        Existing assignments and local ids never move: ``round_robin``
        and ``hash`` placement are stable under id-space growth by
        construction; ``locality`` growth appends the new contiguous
        id range to the last shard; ``custom`` (rebalanced) growth
        spreads new ids round-robin, with local ids continuing after
        each shard's current block (online rebalancing is a separate,
        explicit operation — growth must not silently relocate data).
        """
        if n_new < 0:
            raise ValueError("n_new must be non-negative")
        if n_new == 0:
            return self
        if self.strategy in ("round_robin", "hash"):
            return make_shard_map(self.n_records + n_new, self.n_shards,
                                  self.strategy, seed=self.seed)
        if self.strategy == "custom":
            # New ids are larger than every existing id, so appending at
            # the end of each shard's block keeps local ids dense *and*
            # ascending with the global id.
            new_shards = (np.arange(n_new, dtype=np.int64) % self.n_shards)
            counts = self.counts()
            local_new = np.empty(n_new, dtype=np.int64)
            for s in range(self.n_shards):
                mine = np.flatnonzero(new_shards == s)
                local_new[mine] = counts[s] + np.arange(mine.size)
            return ShardMap(
                self.n_shards, self.n_records + n_new, self.strategy,
                np.concatenate([self.assignments, new_shards]),
                np.concatenate([self.local_ids, local_new]),
                seed=self.seed)
        # locality: the new ids are one contiguous range at the end of
        # the id space, so they extend the last shard's range.
        last = self.n_shards - 1
        start = int(np.sum(self.assignments == last))
        assignments = np.concatenate([
            self.assignments, np.full(n_new, last, dtype=np.int64)])
        local = np.concatenate([
            self.local_ids,
            np.arange(start, start + n_new, dtype=np.int64)])
        return ShardMap(self.n_shards, self.n_records + n_new,
                        self.strategy, assignments, local, seed=self.seed)

    def rebalance(self, moves) -> tuple["ShardMap", list[int]]:
        """Move named records to new shards; the explicit online operation.

        ``moves`` maps global record ids to destination shards (a dict
        or an iterable of ``(record_id, dest_shard)`` pairs).  Returns
        ``(new_map, affected_shards)`` where ``affected_shards`` is the
        *minimal* set touched by the moves — every shard that gained or
        lost at least one record, in ascending order.  Unaffected shards
        keep their assignments and local ids bit-identically; affected
        shards get fresh dense local ids in ascending global-id order,
        so the new map equals what :func:`make_shard_map` would produce
        from the new assignment vector.  Moves that name a record's
        current shard are no-ops; an all-no-op request returns ``self``
        unchanged.

        The result carries strategy ``"custom"``: its assignment vector,
        not a generating rule, is now the source of truth (see
        :meth:`with_records_added` for how a custom map grows).
        """
        pairs = moves.items() if hasattr(moves, "items") else moves
        assignments = self.assignments.copy()
        affected: set[int] = set()
        for record_id, dest in pairs:
            record_id, dest = int(record_id), int(dest)
            if not (0 <= record_id < self.n_records):
                raise IndexError(
                    f"record {record_id} out of range [0, {self.n_records})")
            if not (0 <= dest < self.n_shards):
                raise IndexError(
                    f"destination shard {dest} out of range "
                    f"[0, {self.n_shards})")
            src = int(assignments[record_id])
            if src == dest:
                continue
            assignments[record_id] = dest
            affected.add(src)
            affected.add(dest)
        if not affected:
            return self, []
        local = self.local_ids.copy()
        for s in affected:
            members = np.flatnonzero(assignments == s)
            local[members] = np.arange(members.size, dtype=np.int64)
        return (ShardMap(self.n_shards, self.n_records, "custom",
                         assignments, local, seed=self.seed),
                sorted(affected))


def make_shard_map(n_records: int, n_shards: int,
                   strategy: str = "round_robin", seed: int = 0) -> ShardMap:
    """Build a :class:`ShardMap` under the named placement strategy.

    ``seed`` only affects ``hash`` placement.  Local ids are always
    assigned in ascending global-id order within each shard, so any two
    maps with the same assignment vector give identical datasets.
    """
    if n_shards < 1:
        raise ValueError("need at least one shard")
    if n_records < 0:
        raise ValueError("n_records must be non-negative")
    ids = np.arange(n_records, dtype=np.int64)
    if strategy == "round_robin":
        assignments = (ids % n_shards).astype(np.int64)
        local = ids // n_shards
        return ShardMap(n_shards, n_records, strategy, assignments, local,
                        seed=seed)
    if strategy == "hash":
        seed_mix = _splitmix64(np.array([seed], dtype=np.uint64))[0]
        mixed = _splitmix64(ids.astype(np.uint64) ^ seed_mix)
        assignments = (mixed % np.uint64(n_shards)).astype(np.int64)
    elif strategy == "locality":
        # Balanced contiguous ranges: shard boundaries at r*N/n.
        assignments = (ids * n_shards // max(n_records, 1)).astype(np.int64)
        assignments = np.minimum(assignments, n_shards - 1)
    else:
        # "custom" has no generating rule — it only arises from
        # ShardMap.rebalance — so it cannot be made from scratch here.
        generable = tuple(s for s in _STRATEGIES if s != "custom")
        raise ValueError(f"cannot generate strategy {strategy!r}; "
                         f"expected one of {generable}")
    # Dense local ids in ascending global-id order within each shard:
    # one stable sort instead of a per-shard scan of the whole vector.
    counts = np.bincount(assignments, minlength=n_shards)
    starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
    order = np.argsort(assignments, kind="stable")
    local = np.empty(n_records, dtype=np.int64)
    local[order] = np.arange(n_records, dtype=np.int64) - \
        np.repeat(starts, counts)
    return ShardMap(n_shards, n_records, strategy, assignments, local,
                    seed=seed)


# ---------------------------------------------------------------------------
# Materialising a map into per-shard datasets
# ---------------------------------------------------------------------------


def shard_ratings(matrix: RatingMatrix, shard_map: ShardMap) -> list[RatingMatrix]:
    """Partition users into per-shard rating matrices under ``shard_map``.

    All shards share the full item space so predictions merge across
    components/shards.
    """
    if shard_map.n_records != matrix.n_users:
        raise ValueError(
            f"shard map covers {shard_map.n_records} records but the "
            f"matrix has {matrix.n_users} users")
    users, items, vals = matrix.to_triples()
    counts = shard_map.counts()
    parts = []
    for p in range(shard_map.n_shards):
        mask = shard_map.assignments[users] == p
        parts.append(RatingMatrix(shard_map.local_ids[users[mask]],
                                  items[mask], vals[mask],
                                  n_users=int(counts[p]),
                                  n_items=matrix.n_items))
    return parts


def shard_corpus(partition: SearchPartition,
                 shard_map: ShardMap) -> list[SearchPartition]:
    """Partition pages into per-shard search partitions under ``shard_map``."""
    if shard_map.n_records != partition.n_docs:
        raise ValueError(
            f"shard map covers {shard_map.n_records} records but the "
            f"corpus has {partition.n_docs} pages")
    parts = [SearchPartition() for _ in range(shard_map.n_shards)]
    # Ascending doc-id order makes append order equal local-id order.
    for doc_id in range(partition.n_docs):
        parts[shard_map.shard_of(doc_id)].add_page(partition.tokens_of(doc_id))
    return parts


# ---------------------------------------------------------------------------
# Rebuilding the affected shards after a rebalance
# ---------------------------------------------------------------------------


def _check_reshard_args(parts, old_map: ShardMap, new_map: ShardMap,
                        shards) -> list[int]:
    if old_map.n_shards != new_map.n_shards or len(parts) != old_map.n_shards:
        raise ValueError(
            f"need one partition per shard: {len(parts)} partitions, "
            f"{old_map.n_shards} -> {new_map.n_shards} shards")
    if old_map.n_records != new_map.n_records:
        raise ValueError(
            f"rebalancing moves records, it cannot add or drop them: "
            f"{old_map.n_records} -> {new_map.n_records}")
    shards = sorted(int(s) for s in shards)
    for s in shards:
        if not (0 <= s < old_map.n_shards):
            raise IndexError(f"shard {s} out of range")
    return shards


def reshard_ratings(parts, old_map: ShardMap, new_map: ShardMap,
                    shards) -> dict[int, RatingMatrix]:
    """Rebuild the rating matrices of ``shards`` under ``new_map``.

    ``parts`` are the *current* per-shard matrices under ``old_map``;
    only the listed (affected) shards are read and rebuilt — a record
    can only enter an affected shard by leaving another affected shard,
    so the rest of the cluster is never touched.  Each rebuilt matrix is
    bit-identical to :func:`shard_ratings` applied cold to ``new_map``
    (CSR construction canonicalises triple order).
    """
    shards = _check_reshard_args(parts, old_map, new_map, shards)
    users_l, items_l, vals_l = [], [], []
    for s in shards:
        members = old_map.members_of(s)  # local id -> global id
        u, i, v = parts[s].to_triples()
        users_l.append(members[u])
        items_l.append(i)
        vals_l.append(v)
    users = np.concatenate(users_l) if users_l else np.empty(0, np.int64)
    items = np.concatenate(items_l) if items_l else np.empty(0, np.int64)
    vals = np.concatenate(vals_l) if vals_l else np.empty(0, float)
    counts = new_map.counts()
    # The item space is global (all shards share it so predictions
    # merge); an unaffected shard may carry the widest one.
    n_items = max((p.n_items for p in parts), default=0)
    rebuilt = {}
    for s in shards:
        mask = new_map.assignments[users] == s
        rebuilt[s] = RatingMatrix(new_map.local_ids[users[mask]],
                                  items[mask], vals[mask],
                                  n_users=int(counts[s]), n_items=n_items)
    return rebuilt


def reshard_corpus(parts, old_map: ShardMap, new_map: ShardMap,
                   shards) -> dict[int, SearchPartition]:
    """Rebuild the search partitions of ``shards`` under ``new_map``.

    Same contract as :func:`reshard_ratings`: pages are gathered from
    the affected shards only and re-appended in ascending global-id
    order, so each rebuilt partition is bit-identical to
    :func:`shard_corpus` applied cold to ``new_map``.
    """
    shards = _check_reshard_args(parts, old_map, new_map, shards)
    tokens: dict[int, list] = {}
    for s in shards:
        for local, global_id in enumerate(old_map.members_of(s)):
            tokens[int(global_id)] = parts[s].tokens_of(local)
    rebuilt = {}
    for s in shards:
        part = SearchPartition()
        for global_id in new_map.members_of(s):
            part.add_page(tokens[int(global_id)])
        rebuilt[s] = part
    return rebuilt


def reshard_partitions(parts, old_map: ShardMap, new_map: ShardMap,
                       shards) -> dict:
    """Type-dispatching reshard: ratings or corpus, by partition type."""
    parts = list(parts)
    if not parts:
        raise ValueError("need at least one partition")
    if isinstance(parts[0], RatingMatrix):
        return reshard_ratings(parts, old_map, new_map, shards)
    if isinstance(parts[0], SearchPartition):
        return reshard_corpus(parts, old_map, new_map, shards)
    raise TypeError(
        f"cannot reshard partitions of type {type(parts[0]).__name__}; "
        "expected RatingMatrix or SearchPartition")


def split_ratings(matrix: RatingMatrix, n_parts: int) -> list[RatingMatrix]:
    """Round-robin partition of users into ``n_parts`` rating matrices.

    User ``u`` goes to component ``u % n_parts`` with local id
    ``u // n_parts``.  Equivalent to :func:`shard_ratings` with a
    round-robin :class:`ShardMap`.
    """
    if n_parts < 1:
        raise ValueError("need at least one part")
    return shard_ratings(matrix, make_shard_map(matrix.n_users, n_parts))


def split_corpus(partition: SearchPartition, n_parts: int) -> list[SearchPartition]:
    """Round-robin partition of pages into ``n_parts`` search partitions."""
    if n_parts < 1:
        raise ValueError("need at least one part")
    return shard_corpus(partition, make_shard_map(partition.n_docs, n_parts))
