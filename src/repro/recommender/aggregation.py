"""Aggregated-user construction (synopsis step 3, numeric datasets).

Paper §2.2: "suppose an aggregated user corresponds to a set U of original
users, in which a subset Ui of U have rated item i.  The aggregated user's
rating on item i is the users' average rating on i in set Ui."

The output is itself a :class:`repro.recommender.matrix.RatingMatrix`
whose "users" are the aggregated data points, so the *same* CF code path
processes synopses and original data — the paper's key implementation
property (§3.2: no change to the request-processing algorithm, only to the
dataset fed to it).
"""

from __future__ import annotations

import numpy as np

from repro.recommender.matrix import RatingMatrix

__all__ = ["build_aggregated_users", "aggregate_group"]


def aggregate_group(matrix: RatingMatrix, user_ids) -> tuple[np.ndarray, np.ndarray]:
    """Mean rating per item over the users of one group.

    Returns (item_ids, mean_ratings), items sorted ascending.  Items rated
    by nobody in the group are absent (not zero-filled) — the aggregated
    user simply "hasn't rated" them, matching the paper's Ui definition.
    """
    user_ids = np.asarray(user_ids, dtype=np.int64)
    if user_ids.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=float)
    all_items = []
    all_vals = []
    for u in user_ids:
        ids, vals = matrix.user_ratings(int(u))
        all_items.append(ids)
        all_vals.append(vals)
    items = np.concatenate(all_items)
    vals = np.concatenate(all_vals)
    if items.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=float)
    uniq, inverse = np.unique(items, return_inverse=True)
    sums = np.bincount(inverse, weights=vals, minlength=uniq.size)
    cnts = np.bincount(inverse, minlength=uniq.size)
    return uniq, sums / cnts


def build_aggregated_users(matrix: RatingMatrix, groups) -> RatingMatrix:
    """Aggregate each group of users into one synthetic user.

    Parameters
    ----------
    matrix:
        The partition's rating matrix.
    groups:
        Sequence of user-id arrays; group *g* becomes aggregated user *g*.
        (Typically the record sets under each chosen R-tree node.)

    Returns
    -------
    RatingMatrix
        Matrix of shape (len(groups), matrix.n_items); row *g* holds group
        *g*'s per-item mean ratings.
    """
    groups = list(groups)
    users_l, items_l, vals_l = [], [], []
    for g, user_ids in enumerate(groups):
        ids, means = aggregate_group(matrix, user_ids)
        users_l.append(np.full(ids.size, g, dtype=np.int64))
        items_l.append(ids)
        vals_l.append(means)
    if users_l:
        users = np.concatenate(users_l)
        items = np.concatenate(items_l)
        vals = np.concatenate(vals_l)
    else:
        users = items = np.empty(0, dtype=np.int64)
        vals = np.empty(0, dtype=float)
    return RatingMatrix(users, items, vals,
                        n_users=len(groups), n_items=matrix.n_items)
