"""Aggregated-user construction (synopsis step 3, numeric datasets).

Paper §2.2: "suppose an aggregated user corresponds to a set U of original
users, in which a subset Ui of U have rated item i.  The aggregated user's
rating on item i is the users' average rating on i in set Ui."

The output is itself a :class:`repro.recommender.matrix.RatingMatrix`
whose "users" are the aggregated data points, so the *same* CF code path
processes synopses and original data — the paper's key implementation
property (§3.2: no change to the request-processing algorithm, only to the
dataset fed to it).
"""

from __future__ import annotations

import numpy as np

from repro.recommender.matrix import RatingMatrix

__all__ = ["build_aggregated_users", "aggregate_group", "aggregate_groups"]


def aggregate_group(matrix: RatingMatrix, user_ids) -> tuple[np.ndarray, np.ndarray]:
    """Mean rating per item over the users of one group.

    Returns (item_ids, mean_ratings), items sorted ascending.  Items rated
    by nobody in the group are absent (not zero-filled) — the aggregated
    user simply "hasn't rated" them, matching the paper's Ui definition.
    """
    user_ids = np.asarray(user_ids, dtype=np.int64)
    if user_ids.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=float)
    all_items = []
    all_vals = []
    for u in user_ids:
        ids, vals = matrix.user_ratings(int(u))
        all_items.append(ids)
        all_vals.append(vals)
    items = np.concatenate(all_items)
    vals = np.concatenate(all_vals)
    if items.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=float)
    uniq, inverse = np.unique(items, return_inverse=True)
    sums = np.bincount(inverse, weights=vals, minlength=uniq.size)
    cnts = np.bincount(inverse, minlength=uniq.size)
    return uniq, sums / cnts


def aggregate_groups(matrix: RatingMatrix, groups) -> list[tuple[np.ndarray, np.ndarray]]:
    """Batched :func:`aggregate_group`: one gather answers every group.

    Returns one ``(item_ids, mean_ratings)`` pair per group, each
    bit-identical to the corresponding single-group call: the per-group
    member rows are concatenated in the same order, and ``bincount``
    accumulates each (group, item) sum in that same input order.
    """
    groups = [np.asarray(g, dtype=np.int64) for g in groups]
    empty = (np.empty(0, dtype=np.int64), np.empty(0, dtype=float))
    if not groups:
        return []
    users = np.concatenate(groups)
    if users.size == 0 or matrix.nnz == 0:
        return [empty for _ in groups]
    g_lens = np.array([g.size for g in groups], dtype=np.int64)
    g_of_user = np.repeat(np.arange(len(groups)), g_lens)
    starts = matrix.indptr[users]
    lens = matrix.indptr[users + 1] - starts
    total = int(lens.sum())
    if total == 0:
        return [empty for _ in groups]
    seg_end = np.cumsum(lens)
    idx = np.repeat(starts - (seg_end - lens), lens) + np.arange(total)
    items = matrix.item_ids[idx]
    vals = matrix.values[idx]
    # Fold (group, item) into one key axis; unique keys come out sorted
    # group-major, so each group's slice is items-ascending like the
    # single-group unique.
    key = np.repeat(g_of_user, lens) * matrix.n_items + items
    uniq, inverse = np.unique(key, return_inverse=True)
    sums = np.bincount(inverse, weights=vals, minlength=uniq.size)
    cnts = np.bincount(inverse, minlength=uniq.size)
    means = sums / cnts
    u_items = uniq % matrix.n_items
    bounds = np.searchsorted(uniq // matrix.n_items,
                             np.arange(len(groups) + 1))
    return [(u_items[bounds[g]:bounds[g + 1]], means[bounds[g]:bounds[g + 1]])
            for g in range(len(groups))]


def build_aggregated_users(matrix: RatingMatrix, groups) -> RatingMatrix:
    """Aggregate each group of users into one synthetic user.

    Parameters
    ----------
    matrix:
        The partition's rating matrix.
    groups:
        Sequence of user-id arrays; group *g* becomes aggregated user *g*.
        (Typically the record sets under each chosen R-tree node.)

    Returns
    -------
    RatingMatrix
        Matrix of shape (len(groups), matrix.n_items); row *g* holds group
        *g*'s per-item mean ratings.
    """
    groups = list(groups)
    users_l, items_l, vals_l = [], [], []
    for g, (ids, means) in enumerate(aggregate_groups(matrix, groups)):
        users_l.append(np.full(ids.size, g, dtype=np.int64))
        items_l.append(ids)
        vals_l.append(means)
    if users_l:
        users = np.concatenate(users_l)
        items = np.concatenate(items_l)
        vals = np.concatenate(vals_l)
    else:
        users = items = np.empty(0, dtype=np.int64)
        vals = np.empty(0, dtype=float)
    return RatingMatrix(users, items, vals,
                        n_users=len(groups), n_items=matrix.n_items)
