"""User-based collaborative-filtering recommender (paper §3.2, service 1).

A partition of the user-item rating matrix lives on each service
component.  For an active user the component computes Pearson weights
against its local users and a weighted-average rating prediction; the
composer merges per-component numerator/denominator sums so the merged
prediction equals the prediction a single machine would have produced.

Accuracy is RMSE over a test set; the paper's accuracy-loss metric is the
relative RMSE increase of an approximate prediction versus the exact one.
"""

from repro.recommender.matrix import RatingMatrix
from repro.recommender.similarity import pearson_weights
from repro.recommender.cf import CFComponent, CFPrediction, merge_predictions
from repro.recommender.aggregation import build_aggregated_users
from repro.recommender.metrics import rmse, accuracy_loss_percent

__all__ = [
    "RatingMatrix",
    "pearson_weights",
    "CFComponent",
    "CFPrediction",
    "merge_predictions",
    "build_aggregated_users",
    "rmse",
    "accuracy_loss_percent",
]
