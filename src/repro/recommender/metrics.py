"""Recommender accuracy metrics (paper §4.1).

RMSE over a test set of (user, item) pairs, and the accuracy-loss
percentage: the relative increase of approximate RMSE over exact RMSE.
A loss of 0% means the approximation predicts exactly as well as full
computation; 100% means its error doubled.
"""

from __future__ import annotations

import numpy as np

__all__ = ["rmse", "accuracy_loss_percent"]


def rmse(predicted, actual) -> float:
    """Root-mean-square error between prediction and ground-truth arrays."""
    predicted = np.asarray(predicted, dtype=float)
    actual = np.asarray(actual, dtype=float)
    if predicted.shape != actual.shape:
        raise ValueError("prediction/actual shape mismatch")
    if predicted.size == 0:
        raise ValueError("RMSE of an empty test set is undefined")
    return float(np.sqrt(np.mean((predicted - actual) ** 2)))


def accuracy_loss_percent(approx_rmse: float, exact_rmse: float) -> float:
    """Percentage accuracy loss of an approximate result (RMSE metric).

    Defined as ``100 * (approx_rmse - exact_rmse) / exact_rmse``, floored
    at 0 (an approximation can fluctuate slightly *below* exact RMSE on a
    finite test set; the paper reports losses, not gains).

    ``exact_rmse == 0`` (perfect exact predictor) maps to 0% loss if the
    approximation is also perfect, else 100%.
    """
    if approx_rmse < 0 or exact_rmse < 0:
        raise ValueError("RMSE values must be non-negative")
    if exact_rmse == 0.0:
        return 0.0 if approx_rmse == 0.0 else 100.0
    return max(0.0, 100.0 * (approx_rmse - exact_rmse) / exact_rmse)
