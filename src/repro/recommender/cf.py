"""User-based CF prediction, partitioned the way the paper deploys it.

Each service component owns a partition of the rating matrix.  For an
active user *u* and target item *i* the classic two-step algorithm is

1. weight every local user *v* who rated *i*: ``w_uv = Pearson(u, v)``;
2. predict ``p(u,i) = mean_u + sum_v w_uv (r_vi - mean_v) / sum_v |w_uv|``
   (mean-centred weighted average — the standard Resnick formula).

Components return *partial sums* (numerator, denominator, per item) so the
composer can merge any subset of components/users and still produce
exactly the prediction a single machine scanning those users would give.
That additivity is what lets AccuracyTrader refine a prediction
incrementally, one ranked user-group at a time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.recommender import similarity
from repro.recommender.matrix import RatingMatrix

__all__ = ["CFPrediction", "CFComponent", "merge_predictions"]


@dataclass
class CFPrediction:
    """Mergeable partial prediction state for one active user.

    ``numer[i]``/``denom[i]`` accumulate the Resnick sums for target item
    ``i``; ``active_mean`` is the active user's own mean rating (the
    fallback prediction when no neighbour rated an item).
    """

    active_mean: float
    numer: dict[int, float] = field(default_factory=dict)
    denom: dict[int, float] = field(default_factory=dict)

    def absorb(self, other: "CFPrediction") -> "CFPrediction":
        """Merge another partial into this one (commutative, associative)."""
        for i, n in other.numer.items():
            self.numer[i] = self.numer.get(i, 0.0) + n
            self.denom[i] = self.denom.get(i, 0.0) + other.denom[i]
        return self

    def predict(self, item: int) -> float:
        """Point prediction for ``item`` given the evidence absorbed so far."""
        den = self.denom.get(item, 0.0)
        if den == 0.0:
            return self.active_mean
        return self.active_mean + self.numer[item] / den

    def predict_many(self, items) -> np.ndarray:
        return np.array([self.predict(int(i)) for i in items])


class CFComponent:
    """One component's share of the recommender: a rating-matrix partition.

    Precomputes user means and the item->raters inverted view once; each
    request then touches only the users it actually scans.
    """

    def __init__(self, matrix: RatingMatrix):
        self.matrix = matrix
        counts = np.diff(matrix.indptr)
        sums = np.zeros(matrix.n_users)
        np.add.at(sums, np.repeat(np.arange(matrix.n_users), counts), matrix.values)
        self.user_means = np.divide(sums, counts, out=np.zeros_like(sums),
                                    where=counts > 0)
        self._raters = matrix.item_raters()

    @property
    def n_users(self) -> int:
        return self.matrix.n_users

    # ------------------------------------------------------------------

    def weights_for(self, active_items, active_vals, user_ids) -> np.ndarray:
        """Pearson weight of the active user vs each user in ``user_ids``.

        Delegates to the vectorized single-pass
        :func:`repro.recommender.similarity.pearson_weights` (resolved
        through the module so benchmarks can swap in the scalar oracle).
        """
        return similarity.pearson_weights(self.matrix, active_items,
                                          active_vals, user_ids)

    def partial_prediction(self, active_items, active_vals, target_items,
                           active_mean: float,
                           user_ids=None) -> CFPrediction:
        """Resnick partial sums over ``user_ids`` (default: all local users).

        Only users who actually rated a target item contribute to that
        item's sums; weight computation is still paid for every scanned
        user, which is what makes exact processing expensive — and is the
        work the synopsis avoids.

        Vectorized: one CSR gather of the contributing users' rows, one
        ``searchsorted`` against the (unique, sorted) target items, and
        ``bincount`` partial sums whose in-order accumulation makes the
        result bit-identical to :meth:`partial_prediction_scalar`.
        """
        if user_ids is None:
            user_ids = np.arange(self.matrix.n_users)
        user_ids = np.asarray(user_ids, dtype=np.int64)
        target_items = [int(i) for i in target_items]
        pred = CFPrediction(active_mean=active_mean)
        if user_ids.size == 0:
            return pred
        weights = self.weights_for(active_items, active_vals, user_ids)
        nz = weights != 0.0
        users_nz = user_ids[nz]
        w_nz = weights[nz]
        targets = (np.unique(np.asarray(target_items, dtype=np.int64))
                   if target_items else np.empty(0, dtype=np.int64))
        if users_nz.size == 0 or targets.size == 0:
            return pred
        starts = self.matrix.indptr[users_nz]
        lens = self.matrix.indptr[users_nz + 1] - starts
        total = int(lens.sum())
        if total == 0:
            return pred
        seg_end = np.cumsum(lens)
        idx = np.repeat(starts - (seg_end - lens), lens) + np.arange(total)
        items = self.matrix.item_ids[idx]
        pos = np.searchsorted(targets, items)
        pos_c = np.minimum(pos, targets.size - 1)
        hit = targets[pos_c] == items
        if not np.any(hit):
            return pred
        seg_h = np.repeat(np.arange(users_nz.size), lens)[hit]
        contrib = w_nz[seg_h] * (self.matrix.values[idx][hit]
                                 - self.user_means[users_nz][seg_h])
        t_pos = pos[hit]
        numer = np.bincount(t_pos, weights=contrib, minlength=targets.size)
        denom = np.bincount(t_pos, weights=np.abs(w_nz)[seg_h],
                            minlength=targets.size)
        touched = np.bincount(t_pos, minlength=targets.size) > 0
        for t in np.flatnonzero(touched).tolist():
            item = int(targets[t])
            pred.numer[item] = float(numer[t])
            pred.denom[item] = float(denom[t])
        return pred

    def partial_prediction_scalar(self, active_items, active_vals,
                                  target_items, active_mean: float,
                                  user_ids=None) -> CFPrediction:
        """Per-user reference loop for :meth:`partial_prediction` (oracle)."""
        if user_ids is None:
            user_ids = np.arange(self.matrix.n_users)
        user_ids = np.asarray(user_ids, dtype=np.int64)
        target_items = [int(i) for i in target_items]
        pred = CFPrediction(active_mean=active_mean)
        if user_ids.size == 0:
            return pred
        weights = similarity.pearson_weights_scalar(
            self.matrix, active_items, active_vals, user_ids)
        target_set = set(target_items)
        for v, w in zip(user_ids, weights):
            if w == 0.0:
                continue
            ids, vals = self.matrix.user_ratings(int(v))
            mean_v = self.user_means[v]
            for item, r in zip(ids.tolist(), vals.tolist()):
                if item in target_set:
                    pred.numer[item] = pred.numer.get(item, 0.0) + w * (r - mean_v)
                    pred.denom[item] = pred.denom.get(item, 0.0) + abs(w)
        return pred

    def raters_of(self, item: int) -> np.ndarray:
        """Local users who rated ``item`` (empty array if none)."""
        return self._raters.get(int(item), np.empty(0, dtype=np.int64))


def merge_predictions(parts, active_mean: float | None = None) -> CFPrediction:
    """Merge partial predictions from many components into one.

    ``active_mean`` defaults to the first part's mean (all parts of one
    request share the same active user).
    """
    parts = list(parts)
    if not parts:
        if active_mean is None:
            raise ValueError("merge of zero parts needs an explicit active_mean")
        return CFPrediction(active_mean=active_mean)
    merged = CFPrediction(active_mean=active_mean if active_mean is not None
                          else parts[0].active_mean)
    for p in parts:
        merged.absorb(p)
    return merged
