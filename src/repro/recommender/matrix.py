"""Sparse user-item rating matrix in CSR layout.

Rows are users, columns are items, values are ratings.  CSR gives O(1)
access to one user's rating vector — the access pattern of both Pearson
weight computation (active user vs all locals) and SVD triple extraction.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RatingMatrix"]


class RatingMatrix:
    """Immutable-ish CSR rating matrix with an append/replace API.

    Built from COO triples; per-user slices are contiguous views (no
    copies), following the HPC guide's views-over-copies advice.
    """

    def __init__(self, users, items, ratings, n_users: int | None = None,
                 n_items: int | None = None):
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        ratings = np.asarray(ratings, dtype=float)
        if not (users.shape == items.shape == ratings.shape) or users.ndim != 1:
            raise ValueError("users/items/ratings must be equal-length 1-D arrays")
        if users.size and (users.min() < 0 or items.min() < 0):
            raise ValueError("indices must be non-negative")
        self.n_users = int(n_users if n_users is not None else (users.max() + 1 if users.size else 0))
        self.n_items = int(n_items if n_items is not None else (items.max() + 1 if items.size else 0))
        if users.size and (users.max() >= self.n_users or items.max() >= self.n_items):
            raise ValueError("index exceeds declared shape")
        # Sort by (user, item) then build CSR.
        order = np.lexsort((items, users))
        users, items, ratings = users[order], items[order], ratings[order]
        if users.size:
            dup = (np.diff(users) == 0) & (np.diff(items) == 0)
            if np.any(dup):
                raise ValueError("duplicate (user, item) rating")
        self.indptr = np.zeros(self.n_users + 1, dtype=np.int64)
        np.add.at(self.indptr, users + 1, 1)
        np.cumsum(self.indptr, out=self.indptr)
        self.item_ids = items
        self.values = ratings

    # ------------------------------------------------------------------

    @property
    def nnz(self) -> int:
        return int(self.values.size)

    def user_ratings(self, user: int) -> tuple[np.ndarray, np.ndarray]:
        """(item_ids, ratings) views for one user, sorted by item id."""
        if not (0 <= user < self.n_users):
            raise IndexError(f"user {user} out of range")
        s, e = self.indptr[user], self.indptr[user + 1]
        return self.item_ids[s:e], self.values[s:e]

    def user_mean(self, user: int) -> float:
        """Mean rating of a user (0.0 if the user rated nothing)."""
        ids, vals = self.user_ratings(user)
        return float(vals.mean()) if vals.size else 0.0

    def rating(self, user: int, item: int) -> float | None:
        """The rating of (user, item), or None if unrated."""
        ids, vals = self.user_ratings(user)
        pos = np.searchsorted(ids, item)
        if pos < ids.size and ids[pos] == item:
            return float(vals[pos])
        return None

    def to_triples(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """COO triples (users, items, ratings)."""
        users = np.repeat(np.arange(self.n_users), np.diff(self.indptr))
        return users, self.item_ids.copy(), self.values.copy()

    def dense(self, fill: float = 0.0) -> np.ndarray:
        """Dense (n_users, n_items) copy — test/debug helper only."""
        out = np.full((self.n_users, self.n_items), fill, dtype=float)
        users = np.repeat(np.arange(self.n_users), np.diff(self.indptr))
        out[users, self.item_ids] = self.values
        return out

    def item_raters(self) -> dict[int, np.ndarray]:
        """item -> array of users who rated it (inverted view)."""
        users = np.repeat(np.arange(self.n_users), np.diff(self.indptr))
        order = np.argsort(self.item_ids, kind="stable")
        items_sorted = self.item_ids[order]
        users_sorted = users[order]
        bounds = np.searchsorted(items_sorted, np.arange(self.n_items + 1))
        return {
            i: users_sorted[bounds[i]:bounds[i + 1]]
            for i in range(self.n_items)
            if bounds[i] < bounds[i + 1]
        }

    # ------------------------------------------------------------------

    def with_rows_appended(self, users, items, ratings) -> "RatingMatrix":
        """New matrix with additional users appended (ids continue on).

        ``users`` here are *local* indices of the new block (0-based).
        """
        users = np.asarray(users, dtype=np.int64)
        old_u, old_i, old_v = self.to_triples()
        new_u = users + self.n_users
        n_new = int(users.max() + 1) if users.size else 0
        return RatingMatrix(
            np.concatenate([old_u, new_u]),
            np.concatenate([old_i, np.asarray(items, dtype=np.int64)]),
            np.concatenate([old_v, np.asarray(ratings, dtype=float)]),
            n_users=self.n_users + n_new,
            n_items=max(self.n_items, int(np.asarray(items).max() + 1) if len(items) else 0),
        )

    def with_users_replaced(self, replaced: dict[int, tuple[np.ndarray, np.ndarray]]) -> "RatingMatrix":
        """New matrix where each user in ``replaced`` gets a fresh rating
        vector ``(item_ids, ratings)`` — models changed data points."""
        users_l, items_l, vals_l = [], [], []
        for u in range(self.n_users):
            if u in replaced:
                ids, vals = replaced[u]
                ids = np.asarray(ids, dtype=np.int64)
                vals = np.asarray(vals, dtype=float)
            else:
                ids, vals = self.user_ratings(u)
            users_l.append(np.full(ids.size, u, dtype=np.int64))
            items_l.append(ids)
            vals_l.append(vals)
        return RatingMatrix(
            np.concatenate(users_l), np.concatenate(items_l), np.concatenate(vals_l),
            n_users=self.n_users, n_items=self.n_items,
        )
