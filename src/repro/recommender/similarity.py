"""Pearson correlation weights between an active user and stored users.

Pearson's correlation coefficient over co-rated items is the paper's CF
weight measure (§3.2) *and* its correlation-to-result-accuracy estimate
for aggregated users (§2.3): processing an aggregated user's Pearson
weight predicts how much its member users will improve the prediction.
"""

from __future__ import annotations

import numpy as np

__all__ = ["pearson", "pearson_weights"]

# Below this many co-rated items a Pearson estimate is statistically
# meaningless; standard CF practice treats such pairs as uncorrelated.
MIN_OVERLAP = 2


def pearson(items_a, vals_a, items_b, vals_b) -> float:
    """Pearson correlation of two users over their co-rated items.

    Inputs are (sorted item-id array, rating array) pairs as returned by
    :meth:`repro.recommender.matrix.RatingMatrix.user_ratings`.  Returns
    0.0 when the overlap is smaller than :data:`MIN_OVERLAP` or either
    side is constant on the overlap (undefined correlation).
    """
    items_a = np.asarray(items_a)
    items_b = np.asarray(items_b)
    ia = np.searchsorted(items_a, items_b)
    mask = (ia < items_a.size)
    mask[mask] &= items_a[ia[mask]] == items_b[mask]
    if np.count_nonzero(mask) < MIN_OVERLAP:
        return 0.0
    xa = np.asarray(vals_a, dtype=float)[ia[mask]]
    xb = np.asarray(vals_b, dtype=float)[mask]
    xa = xa - xa.mean()
    xb = xb - xb.mean()
    denom = np.sqrt((xa @ xa) * (xb @ xb))
    if denom == 0.0:
        return 0.0
    r = float((xa @ xb) / denom)
    # Clamp float noise so downstream |w|<=1 assumptions hold exactly.
    return max(-1.0, min(1.0, r))


def pearson_weights(matrix, active_items, active_vals,
                    user_ids=None) -> np.ndarray:
    """Pearson weight of the active user against each user of ``matrix``.

    Parameters
    ----------
    matrix:
        A :class:`repro.recommender.matrix.RatingMatrix`.
    active_items, active_vals:
        The active user's (sorted) rated item ids and ratings.
    user_ids:
        Optional subset of matrix users to score (default: all users).

    Returns
    -------
    numpy.ndarray
        Weight per requested user, in ``user_ids`` order.
    """
    if user_ids is None:
        user_ids = range(matrix.n_users)
    active_items = np.asarray(active_items, dtype=np.int64)
    active_vals = np.asarray(active_vals, dtype=float)
    if active_items.size > 1 and np.any(np.diff(active_items) < 0):
        order = np.argsort(active_items)
        active_items, active_vals = active_items[order], active_vals[order]
    out = np.empty(len(list(user_ids)) if not hasattr(user_ids, "__len__") else len(user_ids))
    user_list = list(user_ids)
    for k, u in enumerate(user_list):
        ids, vals = matrix.user_ratings(int(u))
        out[k] = pearson(ids, vals, active_items, active_vals)
    return out
