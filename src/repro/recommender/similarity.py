"""Pearson correlation weights between an active user and stored users.

Pearson's correlation coefficient over co-rated items is the paper's CF
weight measure (§3.2) *and* its correlation-to-result-accuracy estimate
for aggregated users (§2.3): processing an aggregated user's Pearson
weight predicts how much its member users will improve the prediction.

Bit-identity contract
=====================

Every entry point here — scalar :func:`pearson`, the per-user-loop
:func:`pearson_weights_scalar`, the vectorized :func:`pearson_weights`
and the multi-request :func:`pearson_weights_batch` — computes r from
the same five sufficient sums ``(Σa, Σb, Σa², Σb², Σab)`` over the
co-rated overlap, accumulated *strictly sequentially in overlap order*
via ``np.bincount`` and finished by the shared elementwise
:func:`_pearson_from_sums`.  Because both the accumulation order and the
finishing arithmetic are identical, the vectorized paths return
bit-identical floats to the scalar loop — which is what lets the serving
layer treat batched and unbatched execution as interchangeable.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "pearson",
    "pearson_weights",
    "pearson_weights_scalar",
    "pearson_weights_batch",
]

# Below this many co-rated items a Pearson estimate is statistically
# meaningless; standard CF practice treats such pairs as uncorrelated.
MIN_OVERLAP = 2

def _sequential_sums(seg_ids, n_segments: int, *columns):
    """Per-segment sums of each column, accumulated in input order.

    ``np.bincount`` adds ``weights[i]`` into its bin one element at a
    time, front to back — the accumulation order is the *input* order,
    not a pairwise tree.  Both the scalar and the vectorized Pearson
    paths funnel through here so their partial sums round identically.
    """
    return tuple(
        np.bincount(seg_ids, weights=col, minlength=n_segments)
        for col in columns
    )


def _pearson_from_sums(n, sa, sb, saa, sbb, sab):
    """Pearson r from overlap-count + five sufficient sums (elementwise).

    ``r = (Σab - ΣaΣb/n) / sqrt((Σa² - (Σa)²/n)(Σb² - (Σb)²/n))``,
    clamped to [-1, 1]; 0.0 when the overlap is below
    :data:`MIN_OVERLAP` or either side is (numerically) constant on the
    overlap.  Works on scalars and arrays alike; every caller uses this
    one implementation so the finishing arithmetic is shared.
    """
    n = np.asarray(n, dtype=float)
    with np.errstate(invalid="ignore", divide="ignore"):
        num = sab - sa * sb / n
        var_a = saa - sa * sa / n
        var_b = sbb - sb * sb / n
        denom = np.sqrt(var_a * var_b)
        ok = denom > 0.0
        r = np.where(ok, num / np.where(ok, denom, 1.0), 0.0)
    # Clamp float noise so downstream |w|<=1 assumptions hold exactly.
    r = np.minimum(1.0, np.maximum(-1.0, r))
    return np.where(n >= MIN_OVERLAP, r, 0.0)


def pearson(items_a, vals_a, items_b, vals_b) -> float:
    """Pearson correlation of two users over their co-rated items.

    Inputs are (sorted item-id array, rating array) pairs as returned by
    :meth:`repro.recommender.matrix.RatingMatrix.user_ratings`.  Returns
    0.0 when the overlap is smaller than :data:`MIN_OVERLAP` or either
    side is constant on the overlap (undefined correlation).
    """
    items_a = np.asarray(items_a)
    items_b = np.asarray(items_b)
    ia = np.searchsorted(items_a, items_b)
    mask = (ia < items_a.size)
    mask[mask] &= items_a[ia[mask]] == items_b[mask]
    n = int(np.count_nonzero(mask))
    if n < MIN_OVERLAP:
        return 0.0
    xa = np.asarray(vals_a, dtype=float)[ia[mask]]
    xb = np.asarray(vals_b, dtype=float)[mask]
    zeros = np.zeros(n, dtype=np.intp)
    sa, sb, saa, sbb, sab = _sequential_sums(
        zeros, 1, xa, xb, xa * xa, xb * xb, xa * xb)
    return float(_pearson_from_sums(n, sa[0], sb[0], saa[0], sbb[0], sab[0]))


def _materialize_users(matrix, user_ids) -> np.ndarray:
    """User ids as an int64 array, consuming iterators exactly once."""
    if user_ids is None:
        return np.arange(matrix.n_users, dtype=np.int64)
    if not hasattr(user_ids, "__len__"):
        user_ids = list(user_ids)
    return np.asarray(user_ids, dtype=np.int64)


def _sorted_active(active_items, active_vals):
    active_items = np.asarray(active_items, dtype=np.int64)
    active_vals = np.asarray(active_vals, dtype=float)
    if active_items.size > 1 and np.any(np.diff(active_items) < 0):
        order = np.argsort(active_items, kind="stable")
        active_items, active_vals = active_items[order], active_vals[order]
    return active_items, active_vals


def _has_duplicate_items(active_items) -> bool:
    return active_items.size > 1 and bool(
        np.any(active_items[1:] == active_items[:-1]))


def pearson_weights_scalar(matrix, active_items, active_vals,
                           user_ids=None) -> np.ndarray:
    """Per-user Python-loop reference for :func:`pearson_weights`.

    Kept as the oracle the vectorized path is tested against (and as the
    fallback for inputs the vectorized intersection does not model, e.g.
    duplicate active item ids).
    """
    users = _materialize_users(matrix, user_ids)
    active_items, active_vals = _sorted_active(active_items, active_vals)
    out = np.empty(users.size)
    for k, u in enumerate(users.tolist()):
        ids, vals = matrix.user_ratings(int(u))
        out[k] = pearson(ids, vals, active_items, active_vals)
    return out


def pearson_weights(matrix, active_items, active_vals,
                    user_ids=None) -> np.ndarray:
    """Pearson weight of the active user against each user of ``matrix``.

    Single vectorized pass over the CSR layout: gather the requested
    users' rating rows, intersect item ids with the active user's via one
    ``searchsorted``, reduce the five sufficient sums per user with
    ``bincount``, and finish elementwise — no per-user Python loop.
    Bit-identical to :func:`pearson_weights_scalar`.

    Parameters
    ----------
    matrix:
        A :class:`repro.recommender.matrix.RatingMatrix`.
    active_items, active_vals:
        The active user's (sorted) rated item ids and ratings.
    user_ids:
        Optional subset of matrix users to score (default: all users).
        Iterators/generators are materialized exactly once.

    Returns
    -------
    numpy.ndarray
        Weight per requested user, in ``user_ids`` order.
    """
    users = _materialize_users(matrix, user_ids)
    active_items, active_vals = _sorted_active(active_items, active_vals)
    if _has_duplicate_items(active_items):
        # Duplicate active ids make the overlap direction ambiguous; the
        # scalar loop defines the semantics, so defer to it.
        return pearson_weights_scalar(matrix, active_items, active_vals, users)
    if users.size == 0 or active_items.size < MIN_OVERLAP:
        return np.zeros(users.size)
    starts = matrix.indptr[users]
    lens = matrix.indptr[users + 1] - starts
    total = int(lens.sum())
    if total == 0:
        return np.zeros(users.size)
    seg_end = np.cumsum(lens)
    idx = np.repeat(starts - (seg_end - lens), lens) + np.arange(total)
    items = matrix.item_ids[idx]
    vals = matrix.values[idx]
    seg = np.repeat(np.arange(users.size), lens)
    pos = np.searchsorted(active_items, items)
    pos_c = np.minimum(pos, active_items.size - 1)
    hit = active_items[pos_c] == items
    xa = vals[hit]
    xb = active_vals[pos_c[hit]]
    seg_h = seg[hit]
    n = np.bincount(seg_h, minlength=users.size)
    sa, sb, saa, sbb, sab = _sequential_sums(
        seg_h, users.size, xa, xb, xa * xa, xb * xb, xa * xb)
    return _pearson_from_sums(n, sa, sb, saa, sbb, sab)


def pearson_weights_batch(matrix, actives) -> np.ndarray:
    """Weights of several active users against *every* user of ``matrix``.

    ``actives`` is a sequence of ``(active_items, active_vals)`` pairs.
    Returns an array of shape ``(len(actives), matrix.n_users)`` whose
    row *r* is bit-identical to ``pearson_weights(matrix, *actives[r])``.
    Every request intersects against the *same* rating entries, so the
    batch shares one CSR expansion (``entry_user``) and a reusable dense
    item->slot table; each request then costs one O(nnz) gather + mask
    and a set of ``bincount`` reductions — no per-request CSR walk, no
    batch-sized temporaries.
    """
    n_users = matrix.n_users
    out = np.zeros((len(actives), n_users))
    clean: list[tuple[int, np.ndarray, np.ndarray]] = []
    for r, (a_items, a_vals) in enumerate(actives):
        a_items, a_vals = _sorted_active(a_items, a_vals)
        if _has_duplicate_items(a_items):
            out[r] = pearson_weights(matrix, a_items, a_vals)
            continue
        if a_items.size < MIN_OVERLAP:
            continue  # row stays all-zero, as in the single-request path
        clean.append((r, a_items, a_vals))
    if not clean or matrix.nnz == 0 or n_users == 0:
        return out
    items = matrix.item_ids
    vals = matrix.values
    entry_user = np.repeat(np.arange(n_users), np.diff(matrix.indptr))
    # Dense item -> active-slot table, reset between requests by undoing
    # only the slots each request touched (active sets are tiny next to
    # the item vocabulary).
    lookup = np.full(matrix.n_items, -1, dtype=np.int64)
    for r, a_items, a_vals in clean:
        in_range = np.flatnonzero(
            (a_items >= 0) & (a_items < lookup.size))
        lookup[a_items[in_range]] = in_range
        slot = lookup[items]
        hit = slot >= 0
        xa = vals[hit]
        xb = a_vals[slot[hit]]
        seg_h = entry_user[hit]
        n = np.bincount(seg_h, minlength=n_users)
        sa, sb, saa, sbb, sab = _sequential_sums(
            seg_h, n_users, xa, xb, xa * xa, xb * xb, xa * xb)
        out[r] = _pearson_from_sums(n, sa, sb, saa, sbb, sab)
        lookup[a_items[in_range]] = -1
    return out
