"""Request-processing strategies compared in the paper's evaluation (§4.1).

- :class:`BasicStrategy` — exact processing, no tail-latency technique;
- :class:`ReissueStrategy` — request reissue / hedging: replicas of
  straggling sub-operations after the class's 95th-percentile latency
  (Dean & Barroso; Jalaparti et al.);
- :class:`PartialExecutionStrategy` — approximate: only components that
  answer before the deadline contribute (He et al. Zeta);
- :class:`AccuracyTraderStrategy` — synopsis pass + correlation-ranked
  refinement within the deadline (this paper).

These are *work models* consumed by the cluster simulators: they say how
many work units a component spends on a sub-operation and record the
bookkeeping their accuracy accounting needs.  The real result-producing
code paths live in :mod:`repro.core`; experiment runners couple the two
(see DESIGN.md §5.1).
"""

from repro.strategies.base import ComponentWorkModel
from repro.strategies.basic import BasicStrategy
from repro.strategies.partial import PartialExecutionStrategy
from repro.strategies.accuracytrader import AccuracyTraderStrategy
from repro.strategies.reissue import ReissueStrategy

__all__ = [
    "ComponentWorkModel",
    "BasicStrategy",
    "PartialExecutionStrategy",
    "AccuracyTraderStrategy",
    "ReissueStrategy",
]
