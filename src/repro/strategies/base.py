"""Work-model interface between strategies and the fan-out simulator.

The simulator owns queueing (FIFO per component) and time; the strategy
owns *how much work* a sub-operation performs given when it starts, and
whatever per-request accounting its accuracy metric later needs.
"""

from __future__ import annotations

import abc

__all__ = ["ComponentWorkModel"]


class ComponentWorkModel(abc.ABC):
    """Per-sub-operation work decision + bookkeeping hooks."""

    @abc.abstractmethod
    def begin_run(self, n_requests: int, n_components: int) -> None:
        """Reset per-run accounting before a simulation starts."""

    @abc.abstractmethod
    def service_work(self, request: int, component: int,
                     arrival: float, start: float, speed: float) -> float:
        """Work units the component spends on this sub-operation.

        Parameters
        ----------
        request, component:
            Indices of the sub-operation.
        arrival:
            Request submission time (queueing started here).
        start:
            Time the component dequeued the sub-operation.
        speed:
            The component's current speed in work units / second.
        """

    def on_complete(self, request: int, component: int,
                    arrival: float, done: float) -> None:
        """Called when a sub-operation finishes (default: no-op)."""
        del request, component, arrival, done
