"""The basic approach: exact processing, no tail-latency technique.

Every component scans its whole partition for every request; under heavy
load queueing delay grows without bound (the paper's Table 1 "Basic" row
reaching 202,834 ms at 100 req/s).
"""

from __future__ import annotations

from repro.strategies.base import ComponentWorkModel

__all__ = ["BasicStrategy"]


class BasicStrategy(ComponentWorkModel):
    """Constant full-partition work per sub-operation.

    Parameters
    ----------
    full_work:
        Work units of one exact partition scan (= partition size in
        original data points).
    """

    def __init__(self, full_work: float):
        if full_work <= 0:
            raise ValueError("full_work must be positive")
        self.full_work = float(full_work)

    def begin_run(self, n_requests: int, n_components: int) -> None:
        del n_requests, n_components

    def service_work(self, request: int, component: int,
                     arrival: float, start: float, speed: float) -> float:
        del request, component, arrival, start, speed
        return self.full_work
