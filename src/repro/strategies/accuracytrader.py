"""AccuracyTrader's work model for the cluster simulator.

Implements the *timing* side of Algorithm 1: a component always pays the
synopsis pass, then refines with ranked groups while the elapsed service
time (queueing included) is below the deadline and fewer than ``i_max``
groups were processed.  The number of groups that fit is computed in
O(log m) from the prefix sums of the (ranked) group work sizes.

The model records the per-sub-operation refinement depth, which the
experiment runners feed back into the *real* Algorithm-1 execution to
measure accuracy — one consistent run produces both latency and accuracy
(DESIGN.md §5.1).
"""

from __future__ import annotations

import numpy as np

from repro.strategies.base import ComponentWorkModel

__all__ = ["AccuracyTraderStrategy"]


class AccuracyTraderStrategy(ComponentWorkModel):
    """Deadline-aware synopsis + ranked-refinement work model.

    Parameters
    ----------
    synopsis_work:
        Work units of the stage-1 synopsis pass (= synopsis size m).
    group_works:
        Work units of each refinement group in *rank order* (the sizes of
        the ranked original-point sets D'_1..D'_m).  Group sizes are
        membership counts, which are rank-independent to first order, so
        a single representative ordering is used for all requests.
    deadline:
        Specified service latency l_spe in seconds, from submission.
    i_max:
        Maximum number of groups to refine with (``None`` = all).

    Attributes
    ----------
    groups_processed:
        After a run: array (n_requests, n_components) of refinement depth
        per sub-operation.
    """

    def __init__(self, synopsis_work: float, group_works, deadline: float,
                 i_max: int | None = None, group_overhead: float = 0.0):
        if synopsis_work < 0:
            raise ValueError("synopsis_work must be non-negative")
        if deadline < 0:
            raise ValueError("deadline must be non-negative")
        if group_overhead < 0:
            raise ValueError("group_overhead must be non-negative")
        self.synopsis_work = float(synopsis_work)
        gw = np.asarray(group_works, dtype=float)
        if gw.ndim != 1:
            raise ValueError("group_works must be 1-D")
        if np.any(gw < 0):
            raise ValueError("group works must be non-negative")
        self.deadline = float(deadline)
        self.group_overhead = float(group_overhead)
        m = gw.size
        self.i_max = m if i_max is None else min(int(i_max), m)
        if self.i_max < 0:
            raise ValueError("i_max must be non-negative")
        # cum[k] = work of the first k ranked groups (each charged its
        # per-round framework overhead: result merging, scheduling —
        # the paper's AT is slightly *slower* than a plain scan when the
        # deadline never binds, Table 1 rate 20); cum[0] = 0.
        self._cum = np.concatenate(
            [[0.0], np.cumsum(gw[: self.i_max] + self.group_overhead)])
        self.groups_processed = np.empty((0, 0), dtype=np.int16)

    def begin_run(self, n_requests: int, n_components: int) -> None:
        self.groups_processed = np.zeros((n_requests, n_components), dtype=np.int16)

    def service_work(self, request: int, component: int,
                     arrival: float, start: float, speed: float) -> float:
        # Budget of *work* available before the deadline, after the
        # mandatory synopsis pass.  Group k starts iff the elapsed time at
        # its start is < deadline <=> cum[k] < budget.
        budget = (self.deadline - (start - arrival)) * speed - self.synopsis_work
        # Number of groups whose start falls before the deadline = count of
        # k in [0, i_max) with cum[k] < budget (cum[0] = 0, so a group that
        # merely *starts* in time still runs to completion, which is why
        # actual latency can slightly exceed the deadline, as in the paper).
        k = int(np.searchsorted(self._cum[: self.i_max], budget, side="left"))
        self.groups_processed[request, component] = k
        return self.synopsis_work + float(self._cum[k])

    # ------------------------------------------------------------------

    def refinement_depths(self) -> np.ndarray:
        """Per-sub-operation refinement depth of the last run."""
        if self.groups_processed.size == 0:
            raise RuntimeError("no run recorded")
        return self.groups_processed

    def mean_refined_fraction(self) -> float:
        """Mean fraction of the group cap processed across the run."""
        if self.i_max == 0:
            return 1.0
        return float(self.groups_processed.mean() / self.i_max)
