"""Request reissue (hedged requests) configuration.

The paper's first compared technique (§4.1): "if some sub-operations of a
request have been executed for more than a high percentile of the expected
latency for this class of sub-operations, a replica of each straggling
sub-operation is sent and only the quicker replica is used.  The
percentile is set to 95th."

Reissue couples components (replicas load the mirror component), so it is
simulated by the event-driven :class:`repro.cluster.hedged.HedgedFanoutSimulator`;
this class carries its parameters and the adaptive threshold estimator.
The *live* serving path reuses the same strategy object: the router tier
(:class:`repro.serving.router.ShardedService`) triggers a real re-issue on
a sibling replica whenever a shard call is outstanding beyond
:attr:`threshold`, and feeds every effective shard-call latency back into
:meth:`observe` — so simulated and measured hedging share one estimator.
"""

from __future__ import annotations

import numpy as np

from repro.util.stats import percentile

__all__ = ["ReissueStrategy"]


class ReissueStrategy:
    """Parameters + adaptive p95 threshold for hedged execution.

    Parameters
    ----------
    full_work:
        Work units of one exact partition scan (replicas repeat it).
    hedge_percentile:
        Straggler threshold percentile of the expected sub-operation
        latency class (paper: 95).
    initial_expected_latency:
        Prior for the class latency before any completions are observed
        (an idle-cluster scan time is a good prior).
    window:
        Number of most recent completions the threshold is estimated from.
    recompute_every:
        Refresh cadence of the threshold (completions between refreshes);
        avoids re-sorting the window on every event.
    """

    def __init__(self, full_work: float, hedge_percentile: float = 95.0,
                 initial_expected_latency: float = 0.1,
                 window: int = 2000, recompute_every: int = 200):
        if full_work <= 0:
            raise ValueError("full_work must be positive")
        if not (0.0 < hedge_percentile <= 100.0):
            raise ValueError("hedge_percentile must be in (0, 100]")
        if initial_expected_latency <= 0:
            raise ValueError("initial_expected_latency must be positive")
        if window < 10:
            raise ValueError("window too small to estimate a percentile")
        self.full_work = float(full_work)
        self.hedge_percentile = float(hedge_percentile)
        self.window = int(window)
        self.recompute_every = int(recompute_every)
        self._samples: list[float] = []
        self._since_recompute = 0
        self._threshold = float(initial_expected_latency)

    @property
    def threshold(self) -> float:
        """Current straggler threshold (seconds since submission)."""
        return self._threshold

    def observe(self, latency: float) -> None:
        """Record a completed sub-operation's effective latency."""
        self._samples.append(float(latency))
        if len(self._samples) > self.window:
            del self._samples[: len(self._samples) - self.window]
        self._since_recompute += 1
        if self._since_recompute >= self.recompute_every and len(self._samples) >= 20:
            self._threshold = percentile(self._samples, self.hedge_percentile)
            self._since_recompute = 0

    def reset(self, initial_expected_latency: float | None = None) -> None:
        """Clear observations between runs."""
        self._samples.clear()
        self._since_recompute = 0
        if initial_expected_latency is not None:
            if initial_expected_latency <= 0:
                raise ValueError("initial_expected_latency must be positive")
            self._threshold = float(initial_expected_latency)

    def expected_scan_time(self, base_speed: float) -> float:
        """Idle-cluster scan time — the natural threshold prior."""
        return self.full_work / base_speed
