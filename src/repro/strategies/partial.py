"""Partial execution: skip components that miss the deadline.

Each component still performs the exact full-partition computation; the
composer waits only until the specified deadline and produces the
approximate result from whichever components answered in time (paper §4.1
compared technique 2; He et al. Zeta, Jalaparti et al. Kwiken).

Latency is bounded by construction (the composer cuts off), so this
strategy appears in the *accuracy* comparisons: the quantity that matters
is, per request, how many components' results were skipped — under heavy
load the majority, which is where the large accuracy losses come from.
"""

from __future__ import annotations

import numpy as np

from repro.strategies.base import ComponentWorkModel

__all__ = ["PartialExecutionStrategy"]


class PartialExecutionStrategy(ComponentWorkModel):
    """Full-scan work model that records per-request completion-by-deadline.

    Parameters
    ----------
    full_work:
        Work units of one exact partition scan.
    deadline:
        Composer cut-off in seconds, measured from request submission
        (the paper uses the same deadline it gives AccuracyTrader).

    Attributes
    ----------
    completed_by_deadline:
        After a run: array (n_requests,) of how many components answered
        within the deadline.
    n_components:
        Fan-out width of the run (to turn counts into fractions).
    """

    def __init__(self, full_work: float, deadline: float):
        if full_work <= 0:
            raise ValueError("full_work must be positive")
        if deadline <= 0:
            raise ValueError("deadline must be positive")
        self.full_work = float(full_work)
        self.deadline = float(deadline)
        self.completed_by_deadline = np.empty(0, dtype=np.int64)
        self.n_components = 0

    def begin_run(self, n_requests: int, n_components: int) -> None:
        self.completed_by_deadline = np.zeros(n_requests, dtype=np.int64)
        self.n_components = n_components

    def service_work(self, request: int, component: int,
                     arrival: float, start: float, speed: float) -> float:
        del request, component, arrival, start, speed
        return self.full_work

    def on_complete(self, request: int, component: int,
                    arrival: float, done: float) -> None:
        del component
        if done - arrival <= self.deadline:
            self.completed_by_deadline[request] += 1

    # ------------------------------------------------------------------

    def used_fractions(self) -> np.ndarray:
        """Per-request fraction of components whose results were used."""
        if self.n_components == 0:
            raise RuntimeError("no run recorded")
        return self.completed_by_deadline / float(self.n_components)
