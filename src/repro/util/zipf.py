"""Bounded Zipf sampling.

Web-search term frequencies and e-commerce item popularities are
Zipf-distributed; the corpus and query-log generators both draw from a
*bounded* Zipf (finite support ``1..n``), which NumPy does not provide
directly (``numpy.random.Generator.zipf`` has unbounded support).
"""

from __future__ import annotations

import numpy as np

__all__ = ["zipf_weights", "ZipfSampler"]


def zipf_weights(n: int, exponent: float = 1.0) -> np.ndarray:
    """Normalised Zipf probability vector ``p_k ∝ k^-exponent`` for k=1..n."""
    if n <= 0:
        raise ValueError("zipf support size must be positive")
    if exponent < 0:
        raise ValueError("zipf exponent must be non-negative")
    ranks = np.arange(1, n + 1, dtype=float)
    w = ranks**-exponent
    return w / w.sum()


class ZipfSampler:
    """Draw ranks from a bounded Zipf distribution via inverse-CDF lookup.

    Sampling is vectorised: a single sorted ``searchsorted`` over the
    precomputed CDF, O(log n) per draw.

    Parameters
    ----------
    n:
        Support size; samples are integers in ``[0, n)`` (rank order:
        0 is the most popular element).
    exponent:
        Zipf skew ``s``; ``s=0`` degenerates to uniform.
    rng:
        Source of randomness.
    """

    def __init__(self, n: int, exponent: float, rng: np.random.Generator):
        self._cdf = np.cumsum(zipf_weights(n, exponent))
        # Guard against float round-off leaving the last CDF bin < 1.0.
        self._cdf[-1] = 1.0
        self._rng = rng
        self.n = n
        self.exponent = exponent

    def sample(self, size: int | None = None) -> np.ndarray | int:
        """Draw ``size`` ranks (or a scalar when ``size`` is ``None``)."""
        u = self._rng.random(size=size)
        idx = np.searchsorted(self._cdf, u, side="left")
        if size is None:
            return int(idx)
        return idx.astype(np.int64)
