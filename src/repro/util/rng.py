"""Deterministic random-number-generator plumbing.

Every stochastic element of the reproduction (workload generators, the
discrete-event simulator, SGD initialisation, ...) receives its own
:class:`numpy.random.Generator` derived from a root seed plus a stream
label.  Independent streams keep experiments reproducible even when the
order of draws inside one subsystem changes.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "make_rng"]


def derive_seed(root_seed: int, *labels: object) -> int:
    """Derive a child seed from ``root_seed`` and a sequence of labels.

    The derivation hashes the root seed together with the string form of
    each label, so distinct label tuples map to (practically) independent
    64-bit seeds while staying stable across processes and Python versions
    (unlike built-in ``hash``).

    Parameters
    ----------
    root_seed:
        The experiment-wide seed.
    labels:
        Arbitrary hashable/str-able objects naming the stream, e.g.
        ``derive_seed(42, "arrivals", hour)``.
    """
    h = hashlib.sha256()
    h.update(str(int(root_seed)).encode())
    for label in labels:
        h.update(b"\x1f")
        h.update(str(label).encode())
    return int.from_bytes(h.digest()[:8], "little")


def make_rng(root_seed: int, *labels: object) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` for a named stream.

    ``make_rng(seed)`` with no labels seeds directly from ``seed``;
    otherwise the seed is derived via :func:`derive_seed`.
    """
    if labels:
        return np.random.default_rng(derive_seed(root_seed, *labels))
    return np.random.default_rng(int(root_seed))
