"""Shared utilities: seeded RNG management, statistics, and samplers.

These helpers are deliberately dependency-light; every experiment in the
reproduction is driven through :func:`repro.util.rng.make_rng` so that all
randomness is reproducible from a single integer seed.
"""

from repro.util.rng import derive_seed, make_rng
from repro.util.stats import (
    OnlineStats,
    PercentileTracker,
    percentile,
    tail_latency,
)
from repro.util.zipf import ZipfSampler, zipf_weights

__all__ = [
    "derive_seed",
    "make_rng",
    "OnlineStats",
    "PercentileTracker",
    "percentile",
    "tail_latency",
    "ZipfSampler",
    "zipf_weights",
]
