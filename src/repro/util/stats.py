"""Latency/accuracy statistics helpers.

The paper's headline performance metric is the 99.9th-percentile component
latency; this module provides a percentile implementation that matches the
"nearest-rank" convention used by serving-systems papers (the reported
percentile is an actually-observed latency, never an interpolated one), an
online mean/variance accumulator, and a bounded-memory percentile tracker
for long simulations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["percentile", "tail_latency", "OnlineStats", "PercentileTracker"]


def percentile(samples, q: float) -> float:
    """Nearest-rank percentile of ``samples``.

    ``q`` is in percent (e.g. ``99.9``).  The nearest-rank definition picks
    the smallest observed value such that at least ``q``% of samples are
    less than or equal to it — the convention of tail-latency papers, where
    a percentile must be a latency some request actually saw.

    Raises
    ------
    ValueError
        If ``samples`` is empty or ``q`` is outside ``(0, 100]``.
    """
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValueError("percentile of empty sample set is undefined")
    if not (0.0 < q <= 100.0):
        raise ValueError(f"percentile q must be in (0, 100], got {q}")
    arr = np.sort(arr, kind="stable")
    # Small epsilon guards against float round-up (99.9/100*2000 is
    # 1998.0000000000002 in IEEE-754, which would ceil to the wrong rank).
    rank = int(np.ceil(q / 100.0 * arr.size - 1e-9))
    return float(arr[max(rank, 1) - 1])


def tail_latency(samples, q: float = 99.9) -> float:
    """The paper's tail-latency metric: the ``q``-th percentile (default 99.9)."""
    return percentile(samples, q)


@dataclass
class OnlineStats:
    """Welford online accumulator for mean/variance/min/max.

    Numerically stable for long streams — used by the simulator to track
    per-component service-time statistics without storing every sample.
    """

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")

    def add(self, x: float) -> None:
        x = float(x)
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (x - self.mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    def extend(self, xs) -> None:
        for x in xs:
            self.add(x)

    @property
    def variance(self) -> float:
        """Population variance (0.0 for fewer than two samples)."""
        if self.count < 2:
            return 0.0
        return self._m2 / self.count

    @property
    def std(self) -> float:
        return self.variance**0.5

    def merge(self, other: "OnlineStats") -> "OnlineStats":
        """Combine two accumulators (parallel Welford merge)."""
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            return self
        n = self.count + other.count
        delta = other.mean - self.mean
        self._m2 = self._m2 + other._m2 + delta * delta * self.count * other.count / n
        self.mean = (self.mean * self.count + other.mean * other.count) / n
        self.count = n
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self


@dataclass
class PercentileTracker:
    """Stores samples for exact percentile queries, with optional cap.

    With ``max_samples`` unset every sample is kept (exact percentiles).
    With a cap set, reservoir sampling keeps a uniform subsample so memory
    stays bounded on very long simulations; percentiles then carry the
    usual reservoir estimation error.  Tail experiments in this repo keep
    all samples (a 24-hour run is only ~10^6 floats).
    """

    max_samples: int | None = None
    seed: int = 0
    _samples: list = field(default_factory=list)
    _seen: int = 0
    _rng: np.random.Generator | None = None

    def __post_init__(self) -> None:
        if self.max_samples is not None and self.max_samples <= 0:
            raise ValueError("max_samples must be positive when set")
        if self.max_samples is not None:
            self._rng = np.random.default_rng(self.seed)

    def add(self, x: float) -> None:
        self._seen += 1
        if self.max_samples is None or len(self._samples) < self.max_samples:
            self._samples.append(float(x))
        else:
            # Reservoir sampling: replace with probability cap/seen.
            j = int(self._rng.integers(0, self._seen))
            if j < self.max_samples:
                self._samples[j] = float(x)

    def extend(self, xs) -> None:
        for x in xs:
            self.add(x)

    @property
    def count(self) -> int:
        """Number of samples observed (not necessarily retained)."""
        return self._seen

    def percentile(self, q: float) -> float:
        return percentile(self._samples, q)

    def snapshot(self) -> np.ndarray:
        """A copy of the retained samples."""
        return np.asarray(self._samples, dtype=float)
