"""R-tree node and entry types.

A :class:`Node` is either a leaf (its entries reference data records by
integer id) or internal (its entries reference child nodes).  Entries carry
the MBR; nodes cache the union of their entries' MBRs.
"""

from __future__ import annotations

from typing import Optional

from repro.rtree.geometry import Rect

__all__ = ["Entry", "Node"]


class Entry:
    """One slot in a node: an MBR plus either a record id or a child node."""

    __slots__ = ("rect", "record_id", "child")

    def __init__(self, rect: Rect, record_id: Optional[int] = None,
                 child: Optional["Node"] = None):
        if (record_id is None) == (child is None):
            raise ValueError("Entry must reference exactly one of record_id/child")
        self.rect = rect
        self.record_id = record_id
        self.child = child

    @property
    def is_leaf_entry(self) -> bool:
        return self.record_id is not None

    def __repr__(self) -> str:
        ref = f"record {self.record_id}" if self.is_leaf_entry else "child"
        return f"Entry({ref}, {self.rect})"


class Node:
    """A depth-balanced R-tree node.

    ``level`` counts from 0 at the leaves upward; all leaves in a valid
    tree share level 0, which is what gives every node at a fixed level the
    same approximation granularity (paper §2.2, reason 2).
    """

    __slots__ = ("level", "entries", "parent")

    def __init__(self, level: int, entries: Optional[list[Entry]] = None,
                 parent: Optional["Node"] = None):
        self.level = level
        self.entries: list[Entry] = entries if entries is not None else []
        self.parent = parent
        for e in self.entries:
            if e.child is not None:
                e.child.parent = self

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    def mbr(self) -> Rect:
        """Union of all entry MBRs. Undefined (raises) for an empty node."""
        return Rect.union_of(e.rect for e in self.entries)

    def add(self, entry: Entry) -> None:
        self.entries.append(entry)
        if entry.child is not None:
            entry.child.parent = self

    def entry_for_child(self, child: "Node") -> Entry:
        for e in self.entries:
            if e.child is child:
                return e
        raise KeyError("child not found in node")

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else f"internal(level={self.level})"
        return f"Node({kind}, {len(self.entries)} entries)"
