"""Axis-aligned minimum bounding rectangles (MBRs) in d dimensions.

A :class:`Rect` is immutable; all tree mutations build fresh rectangles.
Coordinates are stored as plain tuples and the hot operations (enlarge,
area, union) are computed with scalar Python arithmetic: at synopsis
dimensionality (d = 3) this beats NumPy's per-call dispatch overhead by
roughly an order of magnitude, and R-tree insertion is exactly a long
sequence of such tiny geometric evaluations (profiling per the HPC
guide's "measure first" rule identified ``np.prod`` on 3-vectors as the
update-path bottleneck).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = ["Rect"]


def _as_tuple(x) -> tuple:
    if isinstance(x, tuple):
        return tuple(float(v) for v in x)
    arr = np.asarray(x, dtype=float)
    if arr.ndim != 1:
        raise ValueError("Rect coordinates must be 1-D")
    return tuple(arr.tolist())


class Rect:
    """A d-dimensional axis-aligned bounding box ``[lo, hi]`` (inclusive).

    Degenerate boxes (``lo == hi`` in some or all dimensions) are valid and
    are how point data enters the tree.  ``lo``/``hi`` are tuples of floats.
    """

    __slots__ = ("lo", "hi")

    def __init__(self, lo, hi):
        lo = _as_tuple(lo)
        hi = _as_tuple(hi)
        if len(lo) != len(hi):
            raise ValueError("Rect lo/hi must have equal length")
        if len(lo) == 0:
            raise ValueError("Rect must have at least one dimension")
        for a, b in zip(lo, hi):
            if a > b:
                raise ValueError("Rect requires lo <= hi in every dimension")
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    def __setattr__(self, name, value):  # immutability guard
        raise AttributeError("Rect is immutable")

    def __reduce__(self):
        # Rebuild through the constructor so copy/deepcopy/pickle work
        # despite the immutability guard on __setattr__.
        return (Rect, (self.lo, self.hi))

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_point(cls, p) -> "Rect":
        """Degenerate rectangle covering a single point."""
        t = _as_tuple(p)
        return cls(t, t)

    @classmethod
    def union_of(cls, rects: Iterable["Rect"]) -> "Rect":
        """Smallest rectangle enclosing all ``rects`` (must be non-empty)."""
        it = iter(rects)
        try:
            first = next(it)
        except StopIteration:
            raise ValueError("union of zero rectangles is undefined") from None
        lo = list(first.lo)
        hi = list(first.hi)
        for r in it:
            for i, (a, b) in enumerate(zip(r.lo, r.hi)):
                if a < lo[i]:
                    lo[i] = a
                if b > hi[i]:
                    hi[i] = b
        return cls(tuple(lo), tuple(hi))

    # -- measures ----------------------------------------------------------

    @property
    def dim(self) -> int:
        return len(self.lo)

    def area(self) -> float:
        """Hyper-volume of the box (0.0 for degenerate boxes)."""
        p = 1.0
        for a, b in zip(self.lo, self.hi):
            p *= b - a
        return p

    def margin(self) -> float:
        """Sum of edge lengths (the R*-tree "margin" measure)."""
        s = 0.0
        for a, b in zip(self.lo, self.hi):
            s += b - a
        return s

    def center(self) -> np.ndarray:
        return np.array([(a + b) / 2.0 for a, b in zip(self.lo, self.hi)])

    # -- relations ---------------------------------------------------------

    def union(self, other: "Rect") -> "Rect":
        return Rect(
            tuple(a if a < c else c for a, c in zip(self.lo, other.lo)),
            tuple(b if b > d else d for b, d in zip(self.hi, other.hi)),
        )

    def enlargement(self, other: "Rect") -> float:
        """Area increase needed for this rect to also cover ``other``.

        This is Guttman's insertion heuristic quantity: the child whose MBR
        needs the least enlargement receives the new entry.
        """
        p = 1.0
        for a, b, c, d in zip(self.lo, self.hi, other.lo, other.hi):
            lo = a if a < c else c
            hi = b if b > d else d
            p *= hi - lo
        return p - self.area()

    def contains(self, other: "Rect") -> bool:
        for a, b, c, d in zip(self.lo, self.hi, other.lo, other.hi):
            if c < a or d > b:
                return False
        return True

    def contains_point(self, p) -> bool:
        for a, b, x in zip(self.lo, self.hi, _as_tuple(p)):
            if x < a or x > b:
                return False
        return True

    def intersects(self, other: "Rect") -> bool:
        for a, b, c, d in zip(self.lo, self.hi, other.lo, other.hi):
            if c > b or d < a:
                return False
        return True

    # -- dunder ------------------------------------------------------------

    def __eq__(self, other) -> bool:
        if not isinstance(other, Rect):
            return NotImplemented
        return self.lo == other.lo and self.hi == other.hi

    def __hash__(self) -> int:
        return hash((self.lo, self.hi))

    def __repr__(self) -> str:
        return f"Rect(lo={list(self.lo)}, hi={list(self.hi)})"
