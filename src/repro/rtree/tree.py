"""Guttman R-tree with quadratic split, dynamic insert and delete.

The synopsis pipeline uses the tree in three ways:

- **build**: bulk-loaded (``repro.rtree.bulk``) or incrementally inserted;
- **level extraction**: :meth:`RTree.nodes_at_level` /
  :meth:`RTree.records_under` pick the aggregation granularity;
- **update**: :meth:`RTree.insert` / :meth:`RTree.delete` implement the two
  input-data-change situations of §2.2 (new points added, existing points
  changed = delete + re-insert).

Record ids are caller-chosen non-negative integers (row indices of the
reduced dataset); each id may appear at most once in the tree.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.rtree.geometry import Rect
from repro.rtree.node import Entry, Node

__all__ = ["RTree"]


class RTree:
    """Dynamic R-tree over point (or rectangle) records.

    Parameters
    ----------
    max_entries:
        Node capacity M (Guttman's M); nodes split when they would exceed it.
    min_entries:
        Minimum fill m (defaults to ``ceil(M * 0.4)``); nodes underflowing
        after a delete are condensed and their entries re-inserted.
    """

    def __init__(self, max_entries: int = 8, min_entries: Optional[int] = None):
        if max_entries < 2:
            raise ValueError("max_entries must be >= 2")
        self.max_entries = max_entries
        self.min_entries = (
            min_entries if min_entries is not None else max(1, int(np.ceil(max_entries * 0.4)))
        )
        if not (1 <= self.min_entries <= max_entries // 2):
            raise ValueError("min_entries must satisfy 1 <= m <= M/2")
        self.root = Node(level=0)
        self._record_rects: dict[int, Rect] = {}

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._record_rects)

    def __contains__(self, record_id: int) -> bool:
        return record_id in self._record_rects

    @property
    def height(self) -> int:
        """Number of levels (a lone leaf root has height 1)."""
        return self.root.level + 1

    def record_rect(self, record_id: int) -> Rect:
        """MBR under which ``record_id`` was inserted."""
        return self._record_rects[record_id]

    def record_ids(self) -> Iterator[int]:
        return iter(self._record_rects)

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------

    def insert_point(self, record_id: int, point) -> None:
        """Insert a point record (degenerate rectangle)."""
        self.insert(record_id, Rect.from_point(point))

    def insert(self, record_id: int, rect: Rect) -> None:
        """Insert ``record_id`` with bounding box ``rect``.

        Raises
        ------
        KeyError
            If ``record_id`` is already present (records are unique).
        """
        record_id = int(record_id)
        if record_id in self._record_rects:
            raise KeyError(f"record {record_id} already in tree")
        self._record_rects[record_id] = rect
        self._insert_entry(Entry(rect, record_id=record_id), level=0)

    def _insert_entry(self, entry: Entry, level: int) -> None:
        """Insert ``entry`` at tree level ``level`` (0 = leaf)."""
        node = self._choose_node(entry.rect, level)
        node.add(entry)
        split = self._split(node) if len(node) > self.max_entries else None
        self._adjust_tree(node, split)

    def _choose_node(self, rect: Rect, level: int) -> Node:
        """Guttman ChooseLeaf generalised to any target level."""
        node = self.root
        while node.level > level:
            best = None
            best_key = None
            for e in node.entries:
                enlargement = e.rect.enlargement(rect)
                key = (enlargement, e.rect.area())
                if best_key is None or key < best_key:
                    best, best_key = e, key
            node = best.child
        return node

    # -- quadratic split ----------------------------------------------

    def _split(self, node: Node) -> Node:
        """Quadratic split of an overfull node; returns the new sibling."""
        entries = node.entries
        seed_a, seed_b = self._pick_seeds(entries)
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        rect_a = entries[seed_a].rect
        rect_b = entries[seed_b].rect
        remaining = [e for i, e in enumerate(entries) if i not in (seed_a, seed_b)]

        while remaining:
            # Force assignment when one group must take everything left to
            # reach minimum fill.
            if len(group_a) + len(remaining) == self.min_entries:
                group_a.extend(remaining)
                rect_a = Rect.union_of([rect_a] + [e.rect for e in remaining])
                remaining = []
                break
            if len(group_b) + len(remaining) == self.min_entries:
                group_b.extend(remaining)
                rect_b = Rect.union_of([rect_b] + [e.rect for e in remaining])
                remaining = []
                break
            idx, prefer_a = self._pick_next(remaining, rect_a, rect_b,
                                            len(group_a), len(group_b))
            e = remaining.pop(idx)
            if prefer_a:
                group_a.append(e)
                rect_a = rect_a.union(e.rect)
            else:
                group_b.append(e)
                rect_b = rect_b.union(e.rect)

        node.entries = group_a
        for e in group_a:
            if e.child is not None:
                e.child.parent = node
        sibling = Node(level=node.level, entries=group_b)
        return sibling

    @staticmethod
    def _pick_seeds(entries: list[Entry]) -> tuple[int, int]:
        """Pair of entries wasting the most area if grouped (PickSeeds)."""
        worst = -1.0
        pair = (0, 1)
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                combined = entries[i].rect.union(entries[j].rect).area()
                waste = combined - entries[i].rect.area() - entries[j].rect.area()
                if waste > worst:
                    worst = waste
                    pair = (i, j)
        return pair

    @staticmethod
    def _pick_next(remaining: list[Entry], rect_a: Rect, rect_b: Rect,
                   size_a: int, size_b: int) -> tuple[int, bool]:
        """Entry with max group-preference difference (PickNext) + its group."""
        best_idx = 0
        best_diff = -1.0
        prefer_a = True
        for i, e in enumerate(remaining):
            da = rect_a.enlargement(e.rect)
            db = rect_b.enlargement(e.rect)
            diff = abs(da - db)
            if diff > best_diff:
                best_diff = diff
                best_idx = i
                if da != db:
                    prefer_a = da < db
                elif rect_a.area() != rect_b.area():
                    prefer_a = rect_a.area() < rect_b.area()
                else:
                    prefer_a = size_a <= size_b
        return best_idx, prefer_a

    def _adjust_tree(self, node: Node, split: Optional[Node]) -> None:
        """Propagate MBR updates and splits to the root (AdjustTree)."""
        while node is not self.root:
            parent = node.parent
            parent.entry_for_child(node).rect = node.mbr()
            if split is not None:
                parent.add(Entry(split.mbr(), child=split))
                split = self._split(parent) if len(parent) > self.max_entries else None
            node = parent
        if split is not None:
            # Root split: grow the tree by one level.
            old_root = self.root
            self.root = Node(
                level=old_root.level + 1,
                entries=[Entry(old_root.mbr(), child=old_root),
                         Entry(split.mbr(), child=split)],
            )

    # ------------------------------------------------------------------
    # deletion
    # ------------------------------------------------------------------

    def delete(self, record_id: int) -> None:
        """Remove ``record_id``; underflowing nodes are condensed and their
        surviving entries re-inserted at their original level (Guttman
        CondenseTree), preserving depth balance.

        Raises
        ------
        KeyError
            If the record is not in the tree.
        """
        record_id = int(record_id)
        rect = self._record_rects.get(record_id)
        if rect is None:
            raise KeyError(f"record {record_id} not in tree")
        leaf = self._find_leaf(self.root, record_id, rect)
        if leaf is None:  # pragma: no cover - defended by _record_rects
            raise KeyError(f"record {record_id} not reachable in tree")
        leaf.entries = [e for e in leaf.entries if e.record_id != record_id]
        del self._record_rects[record_id]
        self._condense_tree(leaf)
        # Shrink the root while it has a single child.
        while not self.root.is_leaf and len(self.root) == 1:
            self.root = self.root.entries[0].child
            self.root.parent = None

    def _find_leaf(self, node: Node, record_id: int, rect: Rect) -> Optional[Node]:
        if node.is_leaf:
            for e in node.entries:
                if e.record_id == record_id:
                    return node
            return None
        for e in node.entries:
            if e.rect.intersects(rect):
                found = self._find_leaf(e.child, record_id, rect)
                if found is not None:
                    return found
        return None

    def _condense_tree(self, node: Node) -> None:
        orphans: list[Entry] = []
        while node is not self.root:
            parent = node.parent
            if len(node) < self.min_entries:
                parent.entries = [e for e in parent.entries if e.child is not node]
                orphans.extend(node.entries)
            else:
                parent.entry_for_child(node).rect = node.mbr()
            node = parent
        for entry in orphans:
            if entry.is_leaf_entry:
                self._insert_entry(entry, level=0)
                continue
            # An entry referencing a child at level c belongs in a node at
            # level c+1, preserving depth balance.  If the (possibly
            # shrunk) tree is no taller than the subtree, fall back to
            # re-inserting its leaf records individually.
            child_level = entry.child.level
            if child_level + 1 <= self.root.level:
                self._insert_entry(entry, level=child_level + 1)
            else:
                for rec, rect in self._collect_records(entry.child):
                    self._insert_entry(Entry(rect, record_id=rec), level=0)

    @staticmethod
    def _collect_records(node: Node) -> list[tuple[int, Rect]]:
        out: list[tuple[int, Rect]] = []
        stack = [node]
        while stack:
            n = stack.pop()
            for e in n.entries:
                if e.is_leaf_entry:
                    out.append((e.record_id, e.rect))
                else:
                    stack.append(e.child)
        return out

    # ------------------------------------------------------------------
    # queries and level extraction
    # ------------------------------------------------------------------

    def search(self, rect: Rect) -> list[int]:
        """Record ids whose MBR intersects ``rect``."""
        out: list[int] = []
        if len(self._record_rects) == 0:
            return out
        stack = [self.root]
        while stack:
            node = stack.pop()
            for e in node.entries:
                if not e.rect.intersects(rect):
                    continue
                if e.is_leaf_entry:
                    out.append(e.record_id)
                else:
                    stack.append(e.child)
        return out

    def nodes_at_level(self, level: int) -> list[Node]:
        """All nodes at ``level`` (0 = leaves), left-to-right."""
        if not (0 <= level <= self.root.level):
            raise ValueError(f"level {level} outside tree of height {self.height}")
        nodes = [self.root]
        while nodes and nodes[0].level > level:
            nodes = [e.child for n in nodes for e in n.entries]
        return nodes

    def records_under(self, node: Node) -> list[int]:
        """All record ids in the subtree rooted at ``node``."""
        return [rec for rec, _ in self._collect_records(node)]

    def level_sizes(self) -> list[int]:
        """Node count per level from root (index 0) down to the leaves."""
        sizes = []
        nodes = [self.root]
        while True:
            sizes.append(len(nodes))
            if nodes[0].is_leaf:
                break
            nodes = [e.child for n in nodes for e in n.entries]
        return sizes

    def choose_level(self, max_groups: int) -> int:
        """Deepest level with at most ``max_groups`` nodes.

        This implements the paper's step-2 rule: pick the level whose node
        count is "sufficiently small" relative to the dataset (the synopsis
        size bound) while remaining as fine-grained as possible.
        """
        if max_groups < 1:
            raise ValueError("max_groups must be >= 1")
        best = self.root.level
        for level in range(0, self.root.level + 1):
            if len(self.nodes_at_level(level)) <= max_groups:
                best = level
                break
        return best

    def closest_level(self, target_groups: int) -> int:
        """Level whose node count is geometrically closest to the target.

        Node counts jump by roughly ``max_entries`` between adjacent
        levels, so the strict at-most rule of :meth:`choose_level` can
        overshoot coarseness by almost that factor; when the synopsis
        granularity matters more than the strict size bound (the paper's
        "sufficient number of nodes for fine-grained differentiation"),
        picking the nearest level in log space is the better trade.
        Ties prefer the deeper (finer) level.
        """
        if target_groups < 1:
            raise ValueError("target_groups must be >= 1")
        sizes = self.level_sizes()  # root (index 0) down to leaves
        best_level = self.root.level
        best_score = float("inf")
        for idx, count in enumerate(sizes):
            level = self.root.level - idx
            score = abs(float(np.log(count / target_groups)))
            if score < best_score or (score == best_score
                                      and level < best_level):
                best_score = score
                best_level = level
        return best_level

    # ------------------------------------------------------------------
    # invariant checking (used heavily by tests)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise ``AssertionError`` on any structural violation.

        Checked: parent MBR containment, level consistency (children are
        exactly one level below), fill bounds on non-root nodes, leaf depth
        balance, and record-set consistency with the id map.
        """
        seen: set[int] = set()

        def visit(node: Node, expected_level: Optional[int]) -> None:
            if expected_level is not None:
                assert node.level == expected_level, "level mismatch"
            if node is not self.root:
                assert self.min_entries <= len(node) <= self.max_entries, (
                    f"fill violation: {len(node)} entries at level {node.level}"
                )
            else:
                assert len(node) <= self.max_entries, "root overfull"
            for e in node.entries:
                if e.is_leaf_entry:
                    assert node.is_leaf, "record entry in internal node"
                    assert e.record_id not in seen, "duplicate record"
                    seen.add(e.record_id)
                else:
                    assert not node.is_leaf, "child entry in leaf"
                    assert e.child.parent is node, "broken parent pointer"
                    assert e.rect.contains(e.child.mbr()), "MBR does not cover child"
                    visit(e.child, node.level - 1)

        if len(self._record_rects) > 0 or len(self.root) > 0:
            visit(self.root, self.root.level)
        assert seen == set(self._record_rects), "record map out of sync"
