"""Sort-Tile-Recursive (STR) bulk loading.

Building the initial synopsis R-tree point-by-point is O(k log k) with a
large constant (quadratic splits); STR packs k points into a tree bottom-up
in O(k log k) with near-perfect node fill and excellent spatial clustering,
which is exactly the "similar data points share a node" property the
synopsis needs.

The algorithm (Leutenegger et al., 1997): sort points by the first
coordinate, cut into vertical slabs of ~sqrt(k/M) * M points, sort each
slab by the next coordinate, recurse; pack runs of M points into leaves,
then pack leaves the same way into parents until one root remains.
"""

from __future__ import annotations

import numpy as np

from repro.rtree.geometry import Rect
from repro.rtree.node import Entry, Node
from repro.rtree.tree import RTree

__all__ = ["str_bulk_load"]


def _tile_order(points: np.ndarray, capacity: int) -> np.ndarray:
    """Return a permutation of row indices in STR tile order.

    Recursively slices along successive dimensions; the returned order
    groups spatially close points into runs of ``capacity``.
    """
    n, dim = points.shape
    index = np.arange(n)

    def recurse(idx: np.ndarray, d: int) -> np.ndarray:
        if len(idx) <= capacity or d >= dim - 1:
            # Final dimension (or small set): plain sort along dim d.
            return idx[np.argsort(points[idx, d], kind="stable")]
        idx = idx[np.argsort(points[idx, d], kind="stable")]
        n_nodes = int(np.ceil(len(idx) / capacity))
        # Number of slabs along this axis: ceil(n_nodes^(1/(dim-d))).
        slabs = int(np.ceil(n_nodes ** (1.0 / (dim - d))))
        slab_size = int(np.ceil(len(idx) / slabs)) if slabs > 0 else len(idx)
        parts = [
            recurse(idx[s:s + slab_size], d + 1)
            for s in range(0, len(idx), slab_size)
        ]
        return np.concatenate(parts)

    return recurse(index, 0)


def str_bulk_load(points, record_ids=None, max_entries: int = 8,
                  min_entries: int | None = None) -> RTree:
    """Bulk-load an :class:`RTree` from an ``(n, d)`` point array.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)``; row i becomes a degenerate rectangle.
    record_ids:
        Optional ids per row (default ``0..n-1``). Must be unique.
    max_entries, min_entries:
        Node capacity parameters of the resulting tree (see
        :class:`repro.rtree.tree.RTree`).

    Returns
    -------
    RTree
        A depth-balanced tree containing all rows, with the same dynamic
        insert/delete behaviour as an incrementally built tree.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2:
        raise ValueError("points must be a 2-D array (n, d)")
    n = points.shape[0]
    if record_ids is None:
        record_ids = np.arange(n)
    record_ids = np.asarray(record_ids)
    if record_ids.shape[0] != n:
        raise ValueError("record_ids length must match points")
    if len(set(int(r) for r in record_ids)) != n:
        raise ValueError("record_ids must be unique")

    tree = RTree(max_entries=max_entries, min_entries=min_entries)
    if n == 0:
        return tree

    order = _tile_order(points, tree.max_entries)

    # Pack leaves.
    leaves: list[Node] = []
    for s in range(0, n, tree.max_entries):
        rows = order[s:s + tree.max_entries]
        entries = [
            Entry(Rect.from_point(points[i]), record_id=int(record_ids[i]))
            for i in rows
        ]
        leaves.append(Node(level=0, entries=entries))

    # Pack upward until a single root remains.
    level_nodes = leaves
    level = 0
    while len(level_nodes) > 1:
        level += 1
        centers = np.array([node.mbr().center() for node in level_nodes])
        order_up = _tile_order(centers, tree.max_entries)
        parents: list[Node] = []
        for s in range(0, len(level_nodes), tree.max_entries):
            group = [level_nodes[i] for i in order_up[s:s + tree.max_entries]]
            entries = [Entry(child.mbr(), child=child) for child in group]
            parents.append(Node(level=level, entries=entries))
        level_nodes = parents

    tree.root = level_nodes[0]
    tree._record_rects = {
        int(record_ids[i]): Rect.from_point(points[i]) for i in range(n)
    }

    # STR can leave the *last* node of a level underfilled below min_entries;
    # repair by reinserting those records so dynamic invariants hold.
    _repair_underfull(tree)
    return tree


def _repair_underfull(tree: RTree) -> None:
    """Re-insert records from non-root nodes violating minimum fill."""
    while True:
        victim = _find_underfull(tree)
        if victim is None:
            return
        records = [(rec, tree.record_rect(rec)) for rec in tree.records_under(victim)]
        parent = victim.parent
        parent.entries = [e for e in parent.entries if e.child is not victim]
        tree._condense_tree(parent)
        while not tree.root.is_leaf and len(tree.root) == 1:
            tree.root = tree.root.entries[0].child
            tree.root.parent = None
        for rec, rect in records:
            del tree._record_rects[rec]
            tree.insert(rec, rect)


def _find_underfull(tree: RTree):
    stack = [tree.root]
    while stack:
        node = stack.pop()
        for e in node.entries:
            if e.child is not None:
                if len(e.child) < tree.min_entries:
                    return e.child
                stack.append(e.child)
    return None
