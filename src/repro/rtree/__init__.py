"""From-scratch R-tree used for synopsis creation and incremental update.

The paper (§2.2) relies on three R-tree properties:

1. construction groups points that are close in feature space into the
   same node;
2. the tree is depth-balanced, so all nodes at one level approximate the
   dataset at the same granularity;
3. leaves support dynamic insertion and deletion, enabling incremental
   synopsis updates.

This package provides a Guttman R-tree with quadratic split
(:class:`repro.rtree.tree.RTree`), Sort-Tile-Recursive bulk loading
(:func:`repro.rtree.bulk.str_bulk_load`) for the initial build, and the
level-extraction helper the synopsis builder uses to choose its
aggregation granularity.
"""

from repro.rtree.geometry import Rect
from repro.rtree.node import Entry, Node
from repro.rtree.tree import RTree
from repro.rtree.bulk import str_bulk_load

__all__ = ["Rect", "Entry", "Node", "RTree", "str_bulk_load"]
