"""AccuracyTrader reproduction (ICPP 2016, Han et al.).

Accuracy-aware approximate processing for low tail latency and high
result accuracy in cloud online services, reproduced as a pure-Python
library: the synopsis pipeline (incremental SVD -> R-tree grouping ->
information aggregation), the two-stage online Algorithm 1, both example
services (a user-based CF recommender and a TF-IDF web search engine), a
discrete-event cluster substrate for the tail-latency experiments, the
compared baseline techniques, workload generators, and experiment runners
for every table and figure of the paper's evaluation.

Quickstart::

    from repro.core import (AccuracyAwareProcessor, CFAdapter, CFRequest,
                            SynopsisBuilder, SynopsisConfig)
    from repro.workloads import generate_ratings

    data = generate_ratings()                  # synthetic MovieLens-like
    adapter = CFAdapter()
    synopsis, _ = SynopsisBuilder(adapter, SynopsisConfig()).build(data.matrix)
    processor = AccuracyAwareProcessor(adapter, data.matrix, synopsis)
    # result, report = processor.process(request, deadline=0.1)

See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-measured results.
"""

__version__ = "1.0.0"

__all__ = [
    "core",
    "rtree",
    "svd",
    "recommender",
    "search",
    "cluster",
    "serving",
    "strategies",
    "workloads",
    "experiments",
    "util",
]
