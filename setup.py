"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` on this machine has no network and no ``wheel``
distribution, so the PEP 660 editable path fails; this shim lets the
legacy ``setup.py develop`` editable path work instead
(``pip install -e . --no-build-isolation``).  All project metadata lives
in ``pyproject.toml``.
"""

from setuptools import setup

setup()
