"""Property-based tests: R-tree invariants under random operation mixes."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.rtree.bulk import str_bulk_load
from repro.rtree.geometry import Rect
from repro.rtree.tree import RTree

point = st.tuples(st.floats(min_value=0, max_value=1, allow_nan=False),
                  st.floats(min_value=0, max_value=1, allow_nan=False))


@settings(max_examples=40, deadline=None)
@given(st.lists(point, min_size=0, max_size=120))
def test_insert_only_invariants_and_membership(pts):
    tree = RTree(max_entries=4)
    for i, p in enumerate(pts):
        tree.insert_point(i, p)
    tree.check_invariants()
    assert len(tree) == len(pts)
    found = set(tree.search(Rect([0, 0], [1, 1])))
    assert found == set(range(len(pts)))


@settings(max_examples=30, deadline=None)
@given(st.lists(point, min_size=1, max_size=80), st.data())
def test_insert_delete_mix(pts, data):
    tree = RTree(max_entries=4)
    alive = set()
    for i, p in enumerate(pts):
        tree.insert_point(i, p)
        alive.add(i)
        # Randomly delete ~1/3 of the time.
        if alive and data.draw(st.integers(0, 2)) == 0:
            victim = data.draw(st.sampled_from(sorted(alive)))
            tree.delete(victim)
            alive.remove(victim)
    tree.check_invariants()
    assert set(tree.search(Rect([0, 0], [1, 1]))) == alive


@settings(max_examples=30, deadline=None)
@given(st.lists(point, min_size=1, max_size=100))
def test_bulk_load_equals_incremental_membership(pts):
    arr = np.array(pts)
    bulk = str_bulk_load(arr, max_entries=4)
    bulk.check_invariants()
    inc = RTree(max_entries=4)
    for i, p in enumerate(pts):
        inc.insert_point(i, p)
    q = Rect([0.25, 0.25], [0.75, 0.75])
    assert set(bulk.search(q)) == set(inc.search(q))


@settings(max_examples=25, deadline=None)
@given(st.lists(point, min_size=5, max_size=100))
def test_levels_partition_at_every_depth(pts):
    tree = str_bulk_load(np.array(pts), max_entries=4)
    n = len(pts)
    for level in range(tree.height):
        ids = [r for nd in tree.nodes_at_level(level)
               for r in tree.records_under(nd)]
        assert sorted(ids) == list(range(n))


@settings(max_examples=25, deadline=None)
@given(st.lists(point, min_size=2, max_size=60),
       st.lists(point, min_size=1, max_size=20))
def test_search_correct_after_bulk_then_inserts(base, extra):
    tree = str_bulk_load(np.array(base), max_entries=4)
    for j, p in enumerate(extra):
        tree.insert_point(len(base) + j, p)
    tree.check_invariants()
    q = Rect([0.0, 0.0], [0.5, 0.5])
    all_pts = list(base) + list(extra)
    expected = {i for i, p in enumerate(all_pts) if q.contains_point(p)}
    assert set(tree.search(q)) == expected
