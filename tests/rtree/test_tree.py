"""Tests for the dynamic R-tree."""

import numpy as np
import pytest

from repro.rtree.geometry import Rect
from repro.rtree.tree import RTree
from repro.util.rng import make_rng


def build_random(n, seed=0, max_entries=4, dim=2):
    rng = make_rng(seed, "rtree")
    pts = rng.random((n, dim))
    tree = RTree(max_entries=max_entries)
    for i, p in enumerate(pts):
        tree.insert_point(i, p)
    return tree, pts


class TestConstruction:
    def test_param_validation(self):
        with pytest.raises(ValueError):
            RTree(max_entries=1)
        with pytest.raises(ValueError):
            RTree(max_entries=8, min_entries=5)  # m > M/2
        with pytest.raises(ValueError):
            RTree(max_entries=8, min_entries=0)

    def test_empty_tree(self):
        tree = RTree()
        assert len(tree) == 0
        assert tree.height == 1
        tree.check_invariants()


class TestInsert:
    def test_single(self):
        tree = RTree()
        tree.insert_point(7, [0.5, 0.5])
        assert 7 in tree and len(tree) == 1
        tree.check_invariants()

    def test_duplicate_id_rejected(self):
        tree = RTree()
        tree.insert_point(1, [0, 0])
        with pytest.raises(KeyError):
            tree.insert_point(1, [1, 1])

    def test_many_inserts_keep_invariants(self):
        tree, _ = build_random(200, seed=1)
        tree.check_invariants()
        assert len(tree) == 200

    def test_tree_grows_in_height(self):
        tree, _ = build_random(100, seed=2, max_entries=4)
        assert tree.height >= 3

    def test_identical_points_allowed(self):
        tree = RTree(max_entries=4)
        for i in range(20):
            tree.insert_point(i, [0.5, 0.5])
        tree.check_invariants()
        assert len(tree) == 20


class TestSearch:
    def test_finds_all_in_range(self):
        tree, pts = build_random(150, seed=3)
        query = Rect([0.2, 0.2], [0.6, 0.6])
        found = set(tree.search(query))
        expected = {i for i, p in enumerate(pts) if query.contains_point(p)}
        assert found == expected

    def test_whole_space(self):
        tree, _ = build_random(50, seed=4)
        assert set(tree.search(Rect([0, 0], [1, 1]))) == set(range(50))

    def test_empty_region(self):
        tree, _ = build_random(50, seed=5)
        assert tree.search(Rect([5, 5], [6, 6])) == []

    def test_search_empty_tree(self):
        assert RTree().search(Rect([0, 0], [1, 1])) == []


class TestDelete:
    def test_delete_all(self):
        tree, _ = build_random(80, seed=6)
        for i in range(80):
            tree.delete(i)
            tree.check_invariants()
        assert len(tree) == 0

    def test_delete_missing_raises(self):
        tree, _ = build_random(5, seed=7)
        with pytest.raises(KeyError):
            tree.delete(99)

    def test_delete_then_reinsert(self):
        tree, pts = build_random(60, seed=8)
        for i in range(0, 60, 3):
            tree.delete(i)
        tree.check_invariants()
        for i in range(0, 60, 3):
            tree.insert_point(i, pts[i])
        tree.check_invariants()
        assert len(tree) == 60

    def test_root_shrinks(self):
        tree, _ = build_random(100, seed=9, max_entries=4)
        h = tree.height
        for i in range(95):
            tree.delete(i)
        assert tree.height < h
        tree.check_invariants()

    def test_search_consistent_after_deletes(self):
        tree, pts = build_random(120, seed=10)
        removed = set(range(0, 120, 2))
        for i in removed:
            tree.delete(i)
        found = set(tree.search(Rect([0, 0], [1, 1])))
        assert found == set(range(120)) - removed


class TestLevels:
    def test_level_sizes_shape(self):
        tree, _ = build_random(200, seed=11, max_entries=4)
        sizes = tree.level_sizes()
        assert sizes[0] == 1  # root
        assert all(sizes[i] <= sizes[i + 1] for i in range(len(sizes) - 1))

    def test_nodes_at_level_partition_records(self):
        tree, _ = build_random(150, seed=12)
        for level in range(tree.height):
            nodes = tree.nodes_at_level(level)
            ids = [r for nd in nodes for r in tree.records_under(nd)]
            assert sorted(ids) == list(range(150))

    def test_nodes_at_bad_level(self):
        tree, _ = build_random(10, seed=13)
        with pytest.raises(ValueError):
            tree.nodes_at_level(99)

    def test_choose_level_respects_bound(self):
        tree, _ = build_random(200, seed=14, max_entries=4)
        for max_groups in (1, 5, 20, 100):
            level = tree.choose_level(max_groups)
            assert len(tree.nodes_at_level(level)) <= max_groups

    def test_choose_level_prefers_deepest(self):
        tree, _ = build_random(200, seed=15, max_entries=4)
        level = tree.choose_level(10**9)
        assert level == 0  # leaves qualify

    def test_choose_level_invalid(self):
        tree, _ = build_random(10, seed=16)
        with pytest.raises(ValueError):
            tree.choose_level(0)


class TestSimilarityGrouping:
    def test_nearby_points_share_leaves_more_than_far_points(self):
        # Two well-separated blobs: leaves should rarely mix them.
        rng = make_rng(17)
        a = rng.normal(0.0, 0.05, (50, 2))
        b = rng.normal(5.0, 0.05, (50, 2))
        tree = RTree(max_entries=4)
        for i, p in enumerate(np.vstack([a, b])):
            tree.insert_point(i, p)
        mixed = 0
        for leaf in tree.nodes_at_level(0):
            ids = tree.records_under(leaf)
            kinds = {i < 50 for i in ids}
            if len(kinds) > 1:
                mixed += 1
        assert mixed == 0
