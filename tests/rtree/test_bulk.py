"""Tests for STR bulk loading."""

import numpy as np
import pytest

from repro.rtree.bulk import str_bulk_load
from repro.rtree.geometry import Rect
from repro.util.rng import make_rng


class TestBulkLoad:
    def test_empty(self):
        tree = str_bulk_load(np.empty((0, 2)))
        assert len(tree) == 0
        tree.check_invariants()

    def test_single_point(self):
        tree = str_bulk_load([[0.5, 0.5]])
        assert len(tree) == 1
        tree.check_invariants()

    def test_all_points_present(self):
        rng = make_rng(1)
        pts = rng.random((500, 3))
        tree = str_bulk_load(pts, max_entries=8)
        assert len(tree) == 500
        tree.check_invariants()
        assert set(tree.search(Rect([0, 0, 0], [1, 1, 1]))) == set(range(500))

    def test_custom_record_ids(self):
        pts = make_rng(2).random((20, 2))
        ids = np.arange(100, 120)
        tree = str_bulk_load(pts, record_ids=ids)
        assert set(tree.record_ids()) == set(range(100, 120))
        tree.check_invariants()

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            str_bulk_load([[0, 0], [1, 1]], record_ids=[5, 5])

    def test_id_length_mismatch(self):
        with pytest.raises(ValueError):
            str_bulk_load([[0, 0], [1, 1]], record_ids=[1])

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            str_bulk_load([1.0, 2.0])

    def test_dynamic_ops_after_bulk_load(self):
        pts = make_rng(3).random((100, 2))
        tree = str_bulk_load(pts)
        tree.insert_point(100, [0.5, 0.5])
        tree.delete(7)
        tree.check_invariants()
        assert 100 in tree and 7 not in tree

    def test_high_fill_factor(self):
        # STR should pack close to max_entries per leaf.
        pts = make_rng(4).random((640, 2))
        tree = str_bulk_load(pts, max_entries=8)
        leaves = tree.nodes_at_level(0)
        mean_fill = np.mean([len(n) for n in leaves])
        assert mean_fill >= 6.0

    def test_spatial_locality(self):
        # Leaf MBRs should be small relative to the unit square.
        pts = make_rng(5).random((800, 2))
        tree = str_bulk_load(pts, max_entries=8)
        areas = [n.mbr().area() for n in tree.nodes_at_level(0)]
        assert np.mean(areas) < 0.02

    def test_various_sizes_keep_invariants(self):
        for n in (2, 3, 7, 8, 9, 63, 64, 65, 200):
            pts = make_rng(6).random((n, 2))
            tree = str_bulk_load(pts, max_entries=4)
            tree.check_invariants()
            assert len(tree) == n
