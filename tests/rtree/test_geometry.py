"""Tests for MBR geometry."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.rtree.geometry import Rect


def rect_2d(x0, y0, x1, y1):
    return Rect([min(x0, x1), min(y0, y1)], [max(x0, x1), max(y0, y1)])


class TestConstruction:
    def test_point_rect_is_degenerate(self):
        r = Rect.from_point([1.0, 2.0])
        assert r.area() == 0.0
        assert r.contains_point([1.0, 2.0])

    def test_lo_must_not_exceed_hi(self):
        with pytest.raises(ValueError):
            Rect([1.0], [0.0])

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            Rect([0.0, 0.0], [1.0])

    def test_zero_dims_rejected(self):
        with pytest.raises(ValueError):
            Rect([], [])

    def test_immutable(self):
        r = Rect([0.0], [1.0])
        with pytest.raises(TypeError):
            r.lo[0] = 5.0  # tuples reject item assignment
        with pytest.raises(AttributeError):
            r.lo = (5.0,)  # attributes are frozen


class TestMeasures:
    def test_area(self):
        assert rect_2d(0, 0, 2, 3).area() == 6.0

    def test_margin(self):
        assert rect_2d(0, 0, 2, 3).margin() == 5.0

    def test_center(self):
        np.testing.assert_array_equal(rect_2d(0, 0, 2, 4).center(), [1, 2])


class TestRelations:
    def test_union(self):
        u = rect_2d(0, 0, 1, 1).union(rect_2d(2, 2, 3, 3))
        assert u == rect_2d(0, 0, 3, 3)

    def test_union_of_many(self):
        u = Rect.union_of([Rect.from_point([i, -i]) for i in range(5)])
        assert u == rect_2d(0, 0, 4, -4)

    def test_union_of_empty_raises(self):
        with pytest.raises(ValueError):
            Rect.union_of([])

    def test_enlargement_zero_when_contained(self):
        big, small = rect_2d(0, 0, 10, 10), rect_2d(1, 1, 2, 2)
        assert big.enlargement(small) == 0.0

    def test_enlargement_positive_when_outside(self):
        a = rect_2d(0, 0, 1, 1)
        assert a.enlargement(rect_2d(2, 0, 3, 1)) == pytest.approx(2.0)

    def test_contains(self):
        assert rect_2d(0, 0, 4, 4).contains(rect_2d(1, 1, 2, 2))
        assert not rect_2d(0, 0, 4, 4).contains(rect_2d(3, 3, 5, 5))

    def test_intersects_touching_edges(self):
        assert rect_2d(0, 0, 1, 1).intersects(rect_2d(1, 1, 2, 2))

    def test_disjoint(self):
        assert not rect_2d(0, 0, 1, 1).intersects(rect_2d(2, 2, 3, 3))

    def test_hash_eq_consistent(self):
        a, b = rect_2d(0, 0, 1, 1), rect_2d(0, 0, 1, 1)
        assert a == b and hash(a) == hash(b)


coords = st.floats(min_value=-100, max_value=100, allow_nan=False)


@given(coords, coords, coords, coords, coords, coords, coords, coords)
def test_union_contains_both(ax0, ay0, ax1, ay1, bx0, by0, bx1, by1):
    a, b = rect_2d(ax0, ay0, ax1, ay1), rect_2d(bx0, by0, bx1, by1)
    u = a.union(b)
    assert u.contains(a) and u.contains(b)
    assert u.area() >= max(a.area(), b.area())


@given(coords, coords, coords, coords, coords, coords, coords, coords)
def test_enlargement_consistent_with_union(ax0, ay0, ax1, ay1, bx0, by0, bx1, by1):
    a, b = rect_2d(ax0, ay0, ax1, ay1), rect_2d(bx0, by0, bx1, by1)
    assert a.enlargement(b) == pytest.approx(a.union(b).area() - a.area(), abs=1e-6)
