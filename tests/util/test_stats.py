"""Tests for percentile and online statistics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.stats import OnlineStats, PercentileTracker, percentile, tail_latency


class TestPercentile:
    def test_median_odd(self):
        assert percentile([1, 2, 3], 50) == 2

    def test_max(self):
        assert percentile([5, 1, 9], 100) == 9

    def test_nearest_rank_is_a_sample(self):
        data = [1.5, 2.5, 7.25, 9.0]
        for q in (10, 25, 50, 75, 99, 99.9):
            assert percentile(data, q) in data

    def test_p999_nearest_rank_boundaries(self):
        data = np.ones(999)
        assert percentile(data, 99.9) == 1.0
        # ceil(99.9% of 1000) = 999 -> still the 1.0 at sorted rank 999.
        data = np.concatenate([np.ones(999), [100.0]])
        assert percentile(data, 99.9) == 1.0
        # ceil(99.9% of 2000) = 1998 -> with two outliers at the top, the
        # p99.9 lands on the first outlier.
        data = np.concatenate([np.ones(1997), [100.0, 150.0, 200.0]])
        assert percentile(data, 99.9) == 100.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_bad_q_raises(self):
        with pytest.raises(ValueError):
            percentile([1], 0)
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_unsorted_input(self):
        assert percentile([9, 1, 5], 50) == 5

    def test_tail_latency_default_q(self):
        data = list(range(10000))
        assert tail_latency(data) == percentile(data, 99.9)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=200),
           st.floats(min_value=0.1, max_value=100.0))
    def test_matches_nearest_rank_definition(self, xs, q):
        p = percentile(xs, q)
        arr = np.sort(xs)
        frac = np.count_nonzero(arr <= p) / arr.size
        assert p in xs
        assert frac * 100 >= q - 1e-9


class TestOnlineStats:
    def test_mean_and_variance(self):
        s = OnlineStats()
        data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        s.extend(data)
        assert s.mean == pytest.approx(np.mean(data))
        assert s.variance == pytest.approx(np.var(data))
        assert s.std == pytest.approx(np.std(data))
        assert s.min == 2.0 and s.max == 9.0

    def test_single_value(self):
        s = OnlineStats()
        s.add(3.0)
        assert s.mean == 3.0
        assert s.variance == 0.0

    def test_merge_matches_pooled(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(0, 1, 50), rng.normal(5, 2, 70)
        sa, sb = OnlineStats(), OnlineStats()
        sa.extend(a)
        sb.extend(b)
        sa.merge(sb)
        pooled = np.concatenate([a, b])
        assert sa.count == 120
        assert sa.mean == pytest.approx(pooled.mean())
        assert sa.variance == pytest.approx(pooled.var())

    def test_merge_with_empty(self):
        s = OnlineStats()
        s.add(1.0)
        s.merge(OnlineStats())
        assert s.count == 1
        empty = OnlineStats()
        empty.merge(s)
        assert empty.mean == 1.0


class TestPercentileTracker:
    def test_exact_when_uncapped(self):
        t = PercentileTracker()
        data = np.arange(1000, dtype=float)
        t.extend(data)
        assert t.percentile(50) == percentile(data, 50)
        assert t.count == 1000

    def test_reservoir_bounds_memory(self):
        t = PercentileTracker(max_samples=100, seed=1)
        t.extend(range(10_000))
        assert len(t.snapshot()) == 100
        assert t.count == 10_000

    def test_reservoir_estimates_reasonably(self):
        t = PercentileTracker(max_samples=2000, seed=2)
        rng = np.random.default_rng(3)
        data = rng.exponential(1.0, 50_000)
        t.extend(data)
        est = t.percentile(90)
        true = percentile(data, 90)
        assert abs(est - true) / true < 0.15

    def test_bad_cap_raises(self):
        with pytest.raises(ValueError):
            PercentileTracker(max_samples=0)
