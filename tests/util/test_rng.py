"""Tests for seeded RNG derivation."""

import numpy as np
import pytest

from repro.util.rng import derive_seed, make_rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_labels_matter(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_root_matters(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_label_order_matters(self):
        assert derive_seed(42, "a", "b") != derive_seed(42, "b", "a")

    def test_numeric_labels_stable(self):
        assert derive_seed(7, 123) == derive_seed(7, 123)

    def test_no_concat_ambiguity(self):
        # ("ab",) and ("a", "b") must not collide (separator byte).
        assert derive_seed(42, "ab") != derive_seed(42, "a", "b")

    def test_fits_in_64_bits(self):
        assert 0 <= derive_seed(42, "x") < 2**64


class TestMakeRng:
    def test_same_stream_same_draws(self):
        a = make_rng(42, "s").random(5)
        b = make_rng(42, "s").random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_streams_differ(self):
        a = make_rng(42, "s1").random(5)
        b = make_rng(42, "s2").random(5)
        assert not np.array_equal(a, b)

    def test_no_labels_uses_root_directly(self):
        a = make_rng(42).random(3)
        b = np.random.default_rng(42).random(3)
        np.testing.assert_array_equal(a, b)

    def test_returns_generator(self):
        assert isinstance(make_rng(0), np.random.Generator)
