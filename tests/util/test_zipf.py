"""Tests for bounded Zipf sampling."""

import numpy as np
import pytest

from repro.util.rng import make_rng
from repro.util.zipf import ZipfSampler, zipf_weights


class TestZipfWeights:
    def test_normalised(self):
        assert zipf_weights(100, 1.0).sum() == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        w = zipf_weights(50, 1.2)
        assert np.all(np.diff(w) < 0)

    def test_exponent_zero_is_uniform(self):
        w = zipf_weights(10, 0.0)
        np.testing.assert_allclose(w, 0.1)

    def test_ratio_follows_power_law(self):
        w = zipf_weights(100, 2.0)
        assert w[0] / w[1] == pytest.approx(2.0**2.0)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError):
            zipf_weights(10, -1.0)


class TestZipfSampler:
    def test_support(self):
        s = ZipfSampler(20, 1.0, make_rng(0))
        draws = s.sample(5000)
        assert draws.min() >= 0 and draws.max() < 20

    def test_scalar_draw(self):
        s = ZipfSampler(20, 1.0, make_rng(0))
        x = s.sample()
        assert isinstance(x, int) and 0 <= x < 20

    def test_empirical_matches_weights(self):
        n = 30
        s = ZipfSampler(n, 1.1, make_rng(1))
        draws = s.sample(200_000)
        emp = np.bincount(draws, minlength=n) / draws.size
        np.testing.assert_allclose(emp, zipf_weights(n, 1.1), atol=0.01)

    def test_rank_zero_most_popular(self):
        s = ZipfSampler(10, 1.5, make_rng(2))
        draws = s.sample(50_000)
        counts = np.bincount(draws, minlength=10)
        assert counts[0] == counts.max()

    def test_deterministic_given_rng(self):
        a = ZipfSampler(15, 1.0, make_rng(3)).sample(100)
        b = ZipfSampler(15, 1.0, make_rng(3)).sample(100)
        np.testing.assert_array_equal(a, b)
