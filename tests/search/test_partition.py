"""Tests for the synchronized search partition."""

import pytest

from repro.search.partition import SearchPartition


class TestSearchPartition:
    def test_add_assigns_dense_ids(self):
        p = SearchPartition()
        assert p.add_page(["a"]) == 0
        assert p.add_page(["b"]) == 1
        assert p.n_docs == 2

    def test_views_synchronized(self):
        p = SearchPartition()
        p.add_page(["x", "y", "x"])
        assert p.index.term_frequency("x", 0) == 2
        row = p.matrix.doc_vector(0)
        assert row[p.matrix.vocabulary["x"]] == 2
        assert p.tokens_of(0) == ["x", "y", "x"]

    def test_replace_updates_all_views(self):
        p = SearchPartition()
        p.add_page(["old"])
        p.replace_page(0, ["new", "new"])
        assert p.index.doc_frequency("old") == 0
        assert p.index.term_frequency("new", 0) == 2
        assert p.matrix.doc_vector(0)[p.matrix.vocabulary["new"]] == 2
        assert p.tokens_of(0) == ["new", "new"]

    def test_replace_missing(self):
        with pytest.raises(KeyError):
            SearchPartition().replace_page(0, ["x"])

    def test_add_pages_bulk(self):
        p = SearchPartition()
        ids = p.add_pages([["a"], ["b"], ["c"]])
        assert ids == [0, 1, 2]
