"""Tests for aggregated-page construction."""

from repro.search.aggregation import build_aggregated_pages, merge_page_terms
from repro.search.scoring import score_query


class TestMergePageTerms:
    def test_concatenates_with_multiplicity(self):
        merged = merge_page_terms([["a", "b"], ["a"]])
        assert sorted(merged) == ["a", "a", "b"]

    def test_empty(self):
        assert merge_page_terms([]) == []


class TestBuildAggregatedPages:
    def make_tokens(self):
        return {
            0: ["cat", "dog"],
            1: ["cat", "cat"],
            2: ["fish"],
            3: ["bird", "fish"],
        }

    def test_group_contents_merged(self):
        syn = build_aggregated_pages(self.make_tokens(), [[0, 1], [2, 3]])
        assert syn.n_docs == 2
        assert syn.term_frequency("cat", 0) == 3
        assert syn.term_frequency("fish", 1) == 2
        assert syn.doc_length(0) == 4

    def test_group_order_is_id(self):
        syn = build_aggregated_pages(self.make_tokens(), [[2], [0]])
        assert syn.term_frequency("fish", 0) == 1
        assert syn.term_frequency("cat", 1) == 1

    def test_scorable_by_unchanged_pipeline(self):
        # The synopsis index must go through the untouched scoring code.
        syn = build_aggregated_pages(self.make_tokens(), [[0, 1], [2, 3]])
        scores = score_query(syn, ["cat"])
        assert set(scores) == {0}

    def test_empty_groups(self):
        syn = build_aggregated_pages(self.make_tokens(), [])
        assert syn.n_docs == 0
