"""Tests for the tokenizer."""

from repro.search.tokenizer import STOP_WORDS, tokenize


class TestTokenize:
    def test_lowercases(self):
        assert tokenize("Hello World") == ["hello", "world"]

    def test_splits_punctuation(self):
        assert tokenize("foo-bar, baz!") == ["foo", "bar", "baz"]

    def test_keeps_numbers(self):
        assert tokenize("top 10 pages") == ["top", "10", "pages"]

    def test_drops_stop_words(self):
        assert tokenize("the cat and the hat") == ["cat", "hat"]

    def test_keep_stop_words_optional(self):
        assert "the" in tokenize("the cat", drop_stop_words=False)

    def test_empty_string(self):
        assert tokenize("") == []

    def test_only_punctuation(self):
        assert tokenize("!!! ... ???") == []

    def test_duplicates_preserved(self):
        assert tokenize("spam spam spam") == ["spam"] * 3

    def test_stop_words_frozen(self):
        assert "the" in STOP_WORDS
        assert isinstance(STOP_WORDS, frozenset)
