"""Tests for the inverted index."""

import numpy as np
import pytest

from repro.search.index import InvertedIndex


def small_index():
    idx = InvertedIndex()
    idx.add_document(0, ["apple", "banana", "apple"])
    idx.add_document(1, ["banana", "cherry"])
    idx.add_document(2, ["durian"])
    return idx


class TestAdd:
    def test_counts(self):
        idx = small_index()
        assert idx.n_docs == 3
        assert idx.n_terms == 4
        assert idx.doc_length(0) == 3
        assert idx.term_frequency("apple", 0) == 2

    def test_duplicate_doc_id_rejected(self):
        idx = small_index()
        with pytest.raises(KeyError):
            idx.add_document(0, ["x"])

    def test_empty_document(self):
        idx = InvertedIndex()
        idx.add_document(0, [])
        assert idx.doc_length(0) == 0
        assert idx.n_docs == 1

    def test_add_document_counts(self):
        idx = InvertedIndex()
        idx.add_document_counts(5, {"a": 3, "b": 1, "zero": 0})
        assert idx.doc_length(5) == 4
        assert idx.term_frequency("a", 5) == 3
        assert idx.doc_frequency("zero") == 0  # zero counts dropped

    def test_add_counts_duplicate_rejected(self):
        idx = small_index()
        with pytest.raises(KeyError):
            idx.add_document_counts(1, {"x": 1})


class TestPostings:
    def test_postings_content(self):
        idx = small_index()
        docs, tfs = idx.postings("banana")
        assert set(docs.tolist()) == {0, 1}
        assert tfs[docs.tolist().index(0)] == 1

    def test_missing_term_empty(self):
        docs, tfs = small_index().postings("nope")
        assert docs.size == 0 and tfs.size == 0

    def test_doc_frequency(self):
        idx = small_index()
        assert idx.doc_frequency("banana") == 2
        assert idx.doc_frequency("durian") == 1
        assert idx.doc_frequency("nope") == 0

    def test_postings_cache_invalidated_on_mutation(self):
        idx = small_index()
        docs1, _ = idx.postings("banana")
        idx.add_document(3, ["banana"])
        docs2, _ = idx.postings("banana")
        assert docs2.size == docs1.size + 1


class TestRemoveReplace:
    def test_remove(self):
        idx = small_index()
        idx.remove_document(1)
        assert idx.n_docs == 2
        assert idx.doc_frequency("cherry") == 0
        assert idx.doc_frequency("banana") == 1

    def test_remove_missing(self):
        with pytest.raises(KeyError):
            small_index().remove_document(42)

    def test_replace(self):
        idx = small_index()
        idx.replace_document(0, ["elderberry"])
        assert idx.doc_frequency("apple") == 0
        assert idx.doc_frequency("elderberry") == 1
        assert idx.doc_length(0) == 1

    def test_vocabulary_sorted(self):
        idx = small_index()
        vocab = idx.vocabulary()
        assert vocab == sorted(vocab)

    def test_doc_ids(self):
        assert small_index().doc_ids() == [0, 1, 2]
