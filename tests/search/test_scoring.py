"""Tests for TF-IDF scoring."""

import numpy as np
import pytest

from repro.search.index import InvertedIndex
from repro.search.scoring import idf_weight, score_query, tf_weight


class TestTF:
    def test_sqrt(self):
        np.testing.assert_allclose(tf_weight([0, 1, 4, 9]), [0, 1, 2, 3])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            tf_weight([-1])


class TestIDF:
    def test_rare_term_weighs_more(self):
        assert idf_weight(1000, 1) > idf_weight(1000, 500)

    def test_floor_zero(self):
        assert idf_weight(2, 5) == 0.0

    def test_empty_index(self):
        assert idf_weight(0, 0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            idf_weight(-1, 0)


class TestScoreQuery:
    def make(self):
        idx = InvertedIndex()
        idx.add_document(0, ["cat", "dog", "cat"])
        idx.add_document(1, ["dog", "fish"])
        idx.add_document(2, ["bird"] * 10)
        return idx

    def test_matching_docs_only(self):
        scores = score_query(self.make(), ["cat"])
        assert set(scores) == {0}

    def test_higher_tf_higher_score(self):
        idx = InvertedIndex()
        idx.add_document(0, ["x", "x", "x", "pad"])
        idx.add_document(1, ["x", "pad", "pad", "pad"])
        scores = score_query(idx, ["x"])
        assert scores[0] > scores[1]

    def test_length_normalisation(self):
        idx = InvertedIndex()
        idx.add_document(0, ["x"])
        idx.add_document(1, ["x"] + ["pad"] * 99)
        scores = score_query(idx, ["x"])
        assert scores[0] > scores[1]

    def test_multi_term_sums(self):
        idx = self.make()
        both = score_query(idx, ["cat", "dog"])
        cat = score_query(idx, ["cat"])
        assert both[0] > cat[0]

    def test_repeated_query_term_doubles_contribution(self):
        idx = self.make()
        once = score_query(idx, ["cat"])
        twice = score_query(idx, ["cat", "cat"])
        assert twice[0] == pytest.approx(2 * once[0])

    def test_doc_restriction(self):
        idx = self.make()
        scores = score_query(idx, ["dog"], doc_ids=[1])
        assert set(scores) == {1}

    def test_unknown_term_no_hits(self):
        assert score_query(self.make(), ["unicorn"]) == {}

    def test_empty_query(self):
        assert score_query(self.make(), []) == {}


class TestScalarOracle:
    """Vectorized score_query vs the per-posting loop, bit for bit."""

    def make(self, seed=3, n_docs=40, vocab=30):
        rng = np.random.default_rng(seed)
        words = [f"w{t}" for t in range(vocab)]
        idx = InvertedIndex()
        for d in range(n_docs):
            n = int(rng.integers(3, 25))
            idx.add_document(d * 3,  # non-contiguous doc ids
                             [words[i] for i in rng.integers(0, vocab, n)])
        return idx, words, rng

    def test_matches_scalar_fuzz(self):
        from repro.search.scoring import score_query_scalar

        idx, words, rng = self.make()
        for _ in range(12):
            terms = [words[i]
                     for i in rng.integers(0, len(words),
                                           int(rng.integers(1, 6)))]
            assert score_query(idx, terms) == score_query_scalar(idx, terms)

    def test_matches_scalar_with_doc_restriction(self):
        from repro.search.scoring import score_query_scalar

        idx, words, rng = self.make(seed=4)
        terms = [words[0], words[1], words[0]]
        docs = [0, 6, 9, 33]
        assert score_query(idx, terms, doc_ids=docs) == \
            score_query_scalar(idx, terms, doc_ids=docs)


class TestScoreQueries:
    def test_matches_single_query_calls(self):
        from repro.search.scoring import score_queries

        oracle = TestScalarOracle()
        idx, words, rng = oracle.make(seed=5)
        queries = [[words[i] for i in rng.integers(0, len(words),
                                                   int(rng.integers(1, 5)))]
                   for _ in range(8)]
        queries.append([])              # empty query mid-batch
        queries.append(["unseen-term"])
        batched = score_queries(idx, queries)
        assert batched == [score_query(idx, q) for q in queries]

    def test_doc_restriction_applies_to_every_query(self):
        from repro.search.scoring import score_queries

        oracle = TestScalarOracle()
        idx, words, rng = oracle.make(seed=6)
        queries = [[words[0]], [words[1], words[2]]]
        docs = [0, 3, 12]
        assert score_queries(idx, queries, doc_ids=docs) == \
            [score_query(idx, q, doc_ids=docs) for q in queries]

    def test_empty_batch(self):
        from repro.search.scoring import score_queries

        idx = InvertedIndex()
        assert score_queries(idx, []) == []
