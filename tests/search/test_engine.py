"""Tests for the search component and top-k merging."""

import pytest

from repro.search.engine import SearchComponent, SearchHit, merge_topk
from repro.search.index import InvertedIndex


def component():
    comp = SearchComponent()
    comp.add_page(0, ["cat", "dog", "cat"])
    comp.add_page(1, ["dog", "fish"])
    comp.add_page(2, ["cat"])
    comp.add_page(3, ["whale", "whale"])
    return comp


class TestSearchHit:
    def test_ordering_best_first(self):
        hits = sorted([SearchHit.make(1, 0.5), SearchHit.make(2, 0.9),
                       SearchHit.make(3, 0.5)])
        assert [h.doc_id for h in hits] == [2, 1, 3]  # ties by lower id

    def test_score_roundtrip(self):
        h = SearchHit.make(7, 1.25)
        assert h.score == 1.25 and h.doc_id == 7


class TestSearchComponent:
    def test_search_ranks_by_score(self):
        hits = component().search(["cat"])
        assert [h.doc_id for h in hits][0] in (0, 2)
        assert all(hits[i].score >= hits[i + 1].score
                   for i in range(len(hits) - 1))

    def test_top_k_truncation(self):
        hits = component().search(["cat", "dog"], k=2)
        assert len(hits) == 2

    def test_k_zero(self):
        assert component().search(["cat"], k=0) == []

    def test_negative_k(self):
        with pytest.raises(ValueError):
            component().search(["cat"], k=-1)

    def test_doc_ids_restriction(self):
        hits = component().search(["cat"], doc_ids=[2])
        assert [h.doc_id for h in hits] == [2]

    def test_no_match(self):
        assert component().search(["zebra"]) == []

    def test_wraps_existing_index(self):
        idx = InvertedIndex()
        idx.add_document(9, ["x"])
        comp = SearchComponent(idx)
        assert comp.n_docs == 1
        assert comp.search(["x"])[0].doc_id == 9


class TestMergeTopk:
    def test_merges_across_lists(self):
        a = [SearchHit.make(0, 3.0), SearchHit.make(1, 1.0)]
        b = [SearchHit.make(2, 2.0)]
        merged = merge_topk([a, b], k=2)
        assert [h.doc_id for h in merged] == [0, 2]

    def test_duplicate_takes_max_score(self):
        a = [SearchHit.make(0, 1.0)]
        b = [SearchHit.make(0, 5.0)]
        merged = merge_topk([a, b], k=1)
        assert merged[0].score == 5.0

    def test_k_larger_than_hits(self):
        merged = merge_topk([[SearchHit.make(0, 1.0)]], k=10)
        assert len(merged) == 1

    def test_empty_input(self):
        assert merge_topk([], k=5) == []

    def test_negative_k(self):
        with pytest.raises(ValueError):
            merge_topk([], k=-1)

    def test_deterministic_tiebreak(self):
        a = [SearchHit.make(5, 1.0), SearchHit.make(3, 1.0)]
        merged = merge_topk([a], k=1)
        assert merged[0].doc_id == 3
