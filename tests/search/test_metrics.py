"""Tests for top-k overlap metrics."""

import pytest

from repro.search.metrics import topk_accuracy_loss_percent, topk_overlap


class TestTopkOverlap:
    def test_perfect(self):
        assert topk_overlap([1, 2, 3], [3, 2, 1]) == 1.0

    def test_disjoint(self):
        assert topk_overlap([1, 2], [3, 4]) == 0.0

    def test_partial(self):
        assert topk_overlap([1, 2, 3, 4], [1, 2, 9, 8]) == 0.5

    def test_order_ignored(self):
        assert topk_overlap([4, 3, 2, 1], [1, 2, 3, 4]) == 1.0

    def test_k_truncates_both(self):
        assert topk_overlap([1, 9, 9, 9], [1, 2, 3, 4], k=1) == 1.0

    def test_empty_actual_is_full_accuracy(self):
        assert topk_overlap([1, 2], []) == 1.0

    def test_empty_retrieved(self):
        assert topk_overlap([], [1, 2]) == 0.0

    def test_negative_k(self):
        with pytest.raises(ValueError):
            topk_overlap([1], [1], k=-2)


class TestLossPercent:
    def test_zero_loss(self):
        assert topk_accuracy_loss_percent([1, 2], [2, 1]) == 0.0

    def test_full_loss(self):
        assert topk_accuracy_loss_percent([9], [1]) == 100.0

    def test_half_loss(self):
        assert topk_accuracy_loss_percent([1, 9], [1, 2]) == pytest.approx(50.0)
