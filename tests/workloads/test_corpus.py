"""Tests for the synthetic corpus generator."""

import numpy as np
import pytest

from repro.util.rng import make_rng
from repro.workloads.corpus import CorpusConfig, generate_corpus


class TestGenerate:
    def test_doc_count(self):
        c = generate_corpus(CorpusConfig(n_docs=100, seed=1))
        assert c.partition.n_docs == 100
        assert c.doc_topic.shape == (100,)

    def test_deterministic(self):
        a = generate_corpus(CorpusConfig(n_docs=40, seed=2))
        b = generate_corpus(CorpusConfig(n_docs=40, seed=2))
        assert a.partition.tokens_of(0) == b.partition.tokens_of(0)

    def test_topic_affinity(self):
        cfg = CorpusConfig(n_docs=60, n_topics=5, vocab_size=1500,
                           words_per_topic=300, topic_affinity=0.8, seed=3)
        c = generate_corpus(cfg)
        for d in range(20):
            topic = int(c.doc_topic[d])
            base = topic * cfg.words_per_topic
            tokens = c.partition.tokens_of(d)
            in_band = sum(1 for t in tokens
                          if base <= int(t[1:]) < base + cfg.words_per_topic)
            # ~80% from the band (plus background hits inside the band).
            assert in_band / len(tokens) > 0.6

    def test_topic_words_come_from_band(self):
        cfg = CorpusConfig(n_docs=10, n_topics=4, vocab_size=800,
                           words_per_topic=200, seed=4)
        c = generate_corpus(cfg)
        words = c.topic_words(2, n=5, rng=make_rng(0))
        for w in words:
            idx = int(w[1:])
            assert 400 <= idx < 600

    def test_topic_words_bad_topic(self):
        c = generate_corpus(CorpusConfig(n_docs=10, seed=5))
        with pytest.raises(IndexError):
            c.topic_words(99)

    def test_queries_find_their_topic(self):
        from repro.search.engine import SearchComponent

        cfg = CorpusConfig(n_docs=120, n_topics=6, vocab_size=1800,
                           words_per_topic=300, seed=6)
        c = generate_corpus(cfg)
        comp = SearchComponent(c.partition.index)
        hits = comp.search(c.topic_words(1, n=3), k=10)
        assert hits, "topic query must match something"
        top_topics = [int(c.doc_topic[h.doc_id]) for h in hits[:5]]
        assert top_topics.count(1) >= 3

    def test_validation(self):
        with pytest.raises(ValueError):
            CorpusConfig(n_docs=0)
        with pytest.raises(ValueError):
            CorpusConfig(n_topics=10, words_per_topic=1000, vocab_size=500)
        with pytest.raises(ValueError):
            CorpusConfig(topic_affinity=1.5)
