"""Shard maps and component partitioning of workload data."""

import numpy as np
import pytest

from repro.workloads.partitioning import (
    ShardMap,
    make_shard_map,
    shard_corpus,
    shard_ratings,
    split_corpus,
    split_ratings,
)


class TestShardMap:
    @pytest.mark.parametrize("strategy", ["round_robin", "hash", "locality"])
    def test_total_coverage_and_dense_local_ids(self, strategy):
        smap = make_shard_map(97, 4, strategy=strategy)
        counts = smap.counts()
        assert counts.sum() == 97
        # Local ids are dense 0..count-1 within each shard, ascending
        # with the global id.
        for s in range(4):
            members = smap.members_of(s)
            np.testing.assert_array_equal(
                smap.local_ids[members], np.arange(members.size))

    def test_round_robin_formula(self):
        smap = make_shard_map(10, 3)
        np.testing.assert_array_equal(smap.assignments,
                                      np.arange(10) % 3)
        np.testing.assert_array_equal(smap.local_ids, np.arange(10) // 3)

    def test_hash_deterministic_and_seeded(self):
        a = make_shard_map(500, 4, strategy="hash", seed=1)
        b = make_shard_map(500, 4, strategy="hash", seed=1)
        c = make_shard_map(500, 4, strategy="hash", seed=2)
        np.testing.assert_array_equal(a.assignments, b.assignments)
        assert not np.array_equal(a.assignments, c.assignments)

    def test_hash_roughly_balanced(self):
        smap = make_shard_map(4000, 4, strategy="hash", seed=0)
        counts = smap.counts()
        # Multinomial(4000, 1/4): 5 sigma is ~137.
        assert counts.min() > 1000 - 150 and counts.max() < 1000 + 150

    def test_locality_contiguous_ranges(self):
        smap = make_shard_map(103, 4, strategy="locality")
        for s in range(4):
            members = smap.members_of(s)
            assert members.size > 0
            np.testing.assert_array_equal(
                members, np.arange(members[0], members[-1] + 1))
        # Ranges ordered by shard index and balanced within one record.
        assert smap.assignments[0] == 0 and smap.assignments[-1] == 3
        assert np.all(np.diff(smap.assignments) >= 0)
        assert smap.counts().max() - smap.counts().min() <= 1

    def test_routing_accessors(self):
        smap = make_shard_map(10, 3)
        assert smap.shard_of(4) == 1
        assert smap.local_id(4) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            make_shard_map(10, 0)
        with pytest.raises(ValueError):
            make_shard_map(-1, 2)
        with pytest.raises(ValueError):
            make_shard_map(10, 2, strategy="modulo")
        with pytest.raises(ValueError):
            ShardMap(2, 4, "modulo", np.zeros(4, dtype=np.int64),
                     np.zeros(4, dtype=np.int64))


class TestShardMapGrowth:
    @pytest.mark.parametrize("strategy", ["round_robin", "hash", "locality"])
    def test_existing_records_never_move(self, strategy):
        base = make_shard_map(60, 4, strategy=strategy, seed=3)
        grown = base.with_records_added(17)
        assert grown.n_records == 77
        assert grown.strategy == strategy and grown.seed == base.seed
        np.testing.assert_array_equal(grown.assignments[:60],
                                      base.assignments)
        np.testing.assert_array_equal(grown.local_ids[:60], base.local_ids)

    @pytest.mark.parametrize("strategy", ["round_robin", "hash", "locality"])
    def test_grown_local_ids_stay_dense(self, strategy):
        grown = make_shard_map(60, 4, strategy=strategy,
                               seed=3).with_records_added(17)
        for s in range(4):
            members = grown.members_of(s)
            np.testing.assert_array_equal(
                grown.local_ids[members], np.arange(members.size))

    def test_locality_growth_extends_last_shard(self):
        grown = make_shard_map(60, 4,
                               strategy="locality").with_records_added(5)
        np.testing.assert_array_equal(grown.assignments[60:],
                                      np.full(5, 3))

    def test_zero_growth_is_identity(self):
        base = make_shard_map(60, 4)
        assert base.with_records_added(0) is base
        with pytest.raises(ValueError):
            base.with_records_added(-1)


class TestShardRatings:
    @pytest.mark.parametrize("strategy", ["round_robin", "hash", "locality"])
    def test_every_rating_lands_once(self, small_ratings, strategy):
        matrix = small_ratings.matrix
        smap = make_shard_map(matrix.n_users, 3, strategy=strategy, seed=5)
        parts = shard_ratings(matrix, smap)
        assert [p.n_users for p in parts] == smap.counts().tolist()
        assert all(p.n_items == matrix.n_items for p in parts)
        total = 0
        for user in range(matrix.n_users):
            part = parts[smap.shard_of(user)]
            ids, vals = part.user_ratings(smap.local_id(user))
            gids, gvals = matrix.user_ratings(user)
            np.testing.assert_array_equal(ids, gids)
            np.testing.assert_array_equal(vals, gvals)
            total += ids.size
        assert total == matrix.to_triples()[0].size

    def test_record_count_mismatch_rejected(self, small_ratings):
        smap = make_shard_map(small_ratings.matrix.n_users + 1, 2)
        with pytest.raises(ValueError):
            shard_ratings(small_ratings.matrix, smap)


class TestSplitRatings:
    @pytest.mark.parametrize("n_users,n_parts", [(200, 2), (25, 2), (7, 3)])
    def test_every_rating_lands_once(self, small_ratings, n_users, n_parts):
        users, items, vals = small_ratings.matrix.to_triples()
        keep = users < n_users
        from repro.recommender.matrix import RatingMatrix

        matrix = RatingMatrix(users[keep], items[keep], vals[keep],
                              n_users=n_users,
                              n_items=small_ratings.matrix.n_items)
        parts = split_ratings(matrix, n_parts)
        assert len(parts) == n_parts
        # Non-divisible counts: earlier parts absorb the remainder.
        assert sum(p.n_users for p in parts) == n_users
        assert all(p.n_items == matrix.n_items for p in parts)
        total = 0
        for p_idx, part in enumerate(parts):
            for local in range(part.n_users):
                ids, pvals = part.user_ratings(local)
                gids, gvals = matrix.user_ratings(local * n_parts + p_idx)
                np.testing.assert_array_equal(ids, gids)
                np.testing.assert_array_equal(pvals, gvals)
                total += ids.size
        assert total == users[keep].size

    def test_zero_parts_rejected(self, small_ratings):
        with pytest.raises(ValueError):
            split_ratings(small_ratings.matrix, 0)


class TestShardCorpus:
    @pytest.mark.parametrize("strategy", ["round_robin", "hash", "locality"])
    def test_every_page_lands_once(self, small_corpus, strategy):
        corpus = small_corpus.partition
        smap = make_shard_map(corpus.n_docs, 3, strategy=strategy, seed=5)
        parts = shard_corpus(corpus, smap)
        assert sum(p.n_docs for p in parts) == corpus.n_docs
        for doc_id in range(corpus.n_docs):
            part = parts[smap.shard_of(doc_id)]
            assert part.tokens_of(smap.local_id(doc_id)) == \
                corpus.tokens_of(doc_id)

    def test_record_count_mismatch_rejected(self, small_corpus):
        smap = make_shard_map(small_corpus.partition.n_docs + 1, 2)
        with pytest.raises(ValueError):
            shard_corpus(small_corpus.partition, smap)


class TestSplitCorpus:
    @pytest.mark.parametrize("n_parts", [2, 3])
    def test_every_page_lands_once(self, small_corpus, n_parts):
        corpus = small_corpus.partition
        parts = split_corpus(corpus, n_parts)
        assert sum(p.n_docs for p in parts) == corpus.n_docs
        for doc_id in range(corpus.n_docs):
            part = parts[doc_id % n_parts]
            assert part.tokens_of(doc_id // n_parts) == corpus.tokens_of(doc_id)
