"""Shard maps and component partitioning of workload data."""

import numpy as np
import pytest

from repro.workloads.partitioning import (
    ShardMap,
    make_shard_map,
    shard_corpus,
    shard_ratings,
    split_corpus,
    split_ratings,
)


class TestShardMap:
    @pytest.mark.parametrize("strategy", ["round_robin", "hash", "locality"])
    def test_total_coverage_and_dense_local_ids(self, strategy):
        smap = make_shard_map(97, 4, strategy=strategy)
        counts = smap.counts()
        assert counts.sum() == 97
        # Local ids are dense 0..count-1 within each shard, ascending
        # with the global id.
        for s in range(4):
            members = smap.members_of(s)
            np.testing.assert_array_equal(
                smap.local_ids[members], np.arange(members.size))

    def test_round_robin_formula(self):
        smap = make_shard_map(10, 3)
        np.testing.assert_array_equal(smap.assignments,
                                      np.arange(10) % 3)
        np.testing.assert_array_equal(smap.local_ids, np.arange(10) // 3)

    def test_hash_deterministic_and_seeded(self):
        a = make_shard_map(500, 4, strategy="hash", seed=1)
        b = make_shard_map(500, 4, strategy="hash", seed=1)
        c = make_shard_map(500, 4, strategy="hash", seed=2)
        np.testing.assert_array_equal(a.assignments, b.assignments)
        assert not np.array_equal(a.assignments, c.assignments)

    def test_hash_roughly_balanced(self):
        smap = make_shard_map(4000, 4, strategy="hash", seed=0)
        counts = smap.counts()
        # Multinomial(4000, 1/4): 5 sigma is ~137.
        assert counts.min() > 1000 - 150 and counts.max() < 1000 + 150

    def test_locality_contiguous_ranges(self):
        smap = make_shard_map(103, 4, strategy="locality")
        for s in range(4):
            members = smap.members_of(s)
            assert members.size > 0
            np.testing.assert_array_equal(
                members, np.arange(members[0], members[-1] + 1))
        # Ranges ordered by shard index and balanced within one record.
        assert smap.assignments[0] == 0 and smap.assignments[-1] == 3
        assert np.all(np.diff(smap.assignments) >= 0)
        assert smap.counts().max() - smap.counts().min() <= 1

    def test_routing_accessors(self):
        smap = make_shard_map(10, 3)
        assert smap.shard_of(4) == 1
        assert smap.local_id(4) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            make_shard_map(10, 0)
        with pytest.raises(ValueError):
            make_shard_map(-1, 2)
        with pytest.raises(ValueError):
            make_shard_map(10, 2, strategy="modulo")
        with pytest.raises(ValueError):
            ShardMap(2, 4, "modulo", np.zeros(4, dtype=np.int64),
                     np.zeros(4, dtype=np.int64))


class TestShardMapGrowth:
    @pytest.mark.parametrize("strategy", ["round_robin", "hash", "locality"])
    def test_existing_records_never_move(self, strategy):
        base = make_shard_map(60, 4, strategy=strategy, seed=3)
        grown = base.with_records_added(17)
        assert grown.n_records == 77
        assert grown.strategy == strategy and grown.seed == base.seed
        np.testing.assert_array_equal(grown.assignments[:60],
                                      base.assignments)
        np.testing.assert_array_equal(grown.local_ids[:60], base.local_ids)

    @pytest.mark.parametrize("strategy", ["round_robin", "hash", "locality"])
    def test_grown_local_ids_stay_dense(self, strategy):
        grown = make_shard_map(60, 4, strategy=strategy,
                               seed=3).with_records_added(17)
        for s in range(4):
            members = grown.members_of(s)
            np.testing.assert_array_equal(
                grown.local_ids[members], np.arange(members.size))

    def test_locality_growth_extends_last_shard(self):
        grown = make_shard_map(60, 4,
                               strategy="locality").with_records_added(5)
        np.testing.assert_array_equal(grown.assignments[60:],
                                      np.full(5, 3))

    def test_zero_growth_is_identity(self):
        base = make_shard_map(60, 4)
        assert base.with_records_added(0) is base
        with pytest.raises(ValueError):
            base.with_records_added(-1)


class TestShardRatings:
    @pytest.mark.parametrize("strategy", ["round_robin", "hash", "locality"])
    def test_every_rating_lands_once(self, small_ratings, strategy):
        matrix = small_ratings.matrix
        smap = make_shard_map(matrix.n_users, 3, strategy=strategy, seed=5)
        parts = shard_ratings(matrix, smap)
        assert [p.n_users for p in parts] == smap.counts().tolist()
        assert all(p.n_items == matrix.n_items for p in parts)
        total = 0
        for user in range(matrix.n_users):
            part = parts[smap.shard_of(user)]
            ids, vals = part.user_ratings(smap.local_id(user))
            gids, gvals = matrix.user_ratings(user)
            np.testing.assert_array_equal(ids, gids)
            np.testing.assert_array_equal(vals, gvals)
            total += ids.size
        assert total == matrix.to_triples()[0].size

    def test_record_count_mismatch_rejected(self, small_ratings):
        smap = make_shard_map(small_ratings.matrix.n_users + 1, 2)
        with pytest.raises(ValueError):
            shard_ratings(small_ratings.matrix, smap)


class TestSplitRatings:
    @pytest.mark.parametrize("n_users,n_parts", [(200, 2), (25, 2), (7, 3)])
    def test_every_rating_lands_once(self, small_ratings, n_users, n_parts):
        users, items, vals = small_ratings.matrix.to_triples()
        keep = users < n_users
        from repro.recommender.matrix import RatingMatrix

        matrix = RatingMatrix(users[keep], items[keep], vals[keep],
                              n_users=n_users,
                              n_items=small_ratings.matrix.n_items)
        parts = split_ratings(matrix, n_parts)
        assert len(parts) == n_parts
        # Non-divisible counts: earlier parts absorb the remainder.
        assert sum(p.n_users for p in parts) == n_users
        assert all(p.n_items == matrix.n_items for p in parts)
        total = 0
        for p_idx, part in enumerate(parts):
            for local in range(part.n_users):
                ids, pvals = part.user_ratings(local)
                gids, gvals = matrix.user_ratings(local * n_parts + p_idx)
                np.testing.assert_array_equal(ids, gids)
                np.testing.assert_array_equal(pvals, gvals)
                total += ids.size
        assert total == users[keep].size

    def test_zero_parts_rejected(self, small_ratings):
        with pytest.raises(ValueError):
            split_ratings(small_ratings.matrix, 0)


class TestShardCorpus:
    @pytest.mark.parametrize("strategy", ["round_robin", "hash", "locality"])
    def test_every_page_lands_once(self, small_corpus, strategy):
        corpus = small_corpus.partition
        smap = make_shard_map(corpus.n_docs, 3, strategy=strategy, seed=5)
        parts = shard_corpus(corpus, smap)
        assert sum(p.n_docs for p in parts) == corpus.n_docs
        for doc_id in range(corpus.n_docs):
            part = parts[smap.shard_of(doc_id)]
            assert part.tokens_of(smap.local_id(doc_id)) == \
                corpus.tokens_of(doc_id)

    def test_record_count_mismatch_rejected(self, small_corpus):
        smap = make_shard_map(small_corpus.partition.n_docs + 1, 2)
        with pytest.raises(ValueError):
            shard_corpus(small_corpus.partition, smap)


class TestSplitCorpus:
    @pytest.mark.parametrize("n_parts", [2, 3])
    def test_every_page_lands_once(self, small_corpus, n_parts):
        corpus = small_corpus.partition
        parts = split_corpus(corpus, n_parts)
        assert sum(p.n_docs for p in parts) == corpus.n_docs
        for doc_id in range(corpus.n_docs):
            part = parts[doc_id % n_parts]
            assert part.tokens_of(doc_id // n_parts) == corpus.tokens_of(doc_id)


class TestShardMapRebalance:
    def test_moves_apply_and_affected_is_minimal(self):
        smap = make_shard_map(12, 4)
        new, affected = smap.rebalance({0: 1, 4: 1})   # both from shard 0
        assert affected == [0, 1]
        assert new.shard_of(0) == 1 and new.shard_of(4) == 1
        assert new.strategy == "custom"
        assert new.n_records == smap.n_records

    def test_unaffected_shards_bit_identical(self):
        smap = make_shard_map(20, 4, strategy="hash", seed=3)
        new, affected = smap.rebalance({0: (smap.shard_of(0) + 1) % 4})
        for s in range(4):
            if s in affected:
                continue
            np.testing.assert_array_equal(new.members_of(s),
                                          smap.members_of(s))
            members = smap.members_of(s)
            np.testing.assert_array_equal(new.local_ids[members],
                                          smap.local_ids[members])

    def test_local_ids_dense_ascending_after_move(self):
        smap = make_shard_map(17, 3)
        new, _ = smap.rebalance({0: 2, 7: 1, 12: 0})
        assert new.counts().sum() == 17
        for s in range(3):
            members = new.members_of(s)
            np.testing.assert_array_equal(new.local_ids[members],
                                          np.arange(members.size))

    def test_noop_moves_return_self(self):
        smap = make_shard_map(10, 2)
        new, affected = smap.rebalance({0: smap.shard_of(0)})
        assert new is smap and affected == []

    def test_pairs_accepted_and_validated(self):
        smap = make_shard_map(10, 2)
        new, affected = smap.rebalance([(0, 1), (2, 1)])
        assert new.shard_of(0) == 1 and new.shard_of(2) == 1
        with pytest.raises(IndexError):
            smap.rebalance({99: 0})
        with pytest.raises(IndexError):
            smap.rebalance({0: 5})

    def test_custom_map_growth_never_moves_existing(self):
        smap, _ = make_shard_map(10, 2).rebalance({0: 1})
        grown = smap.with_records_added(4)
        assert grown.strategy == "custom"
        np.testing.assert_array_equal(grown.assignments[:10],
                                      smap.assignments)
        np.testing.assert_array_equal(grown.local_ids[:10], smap.local_ids)
        for s in range(2):
            members = grown.members_of(s)
            np.testing.assert_array_equal(grown.local_ids[members],
                                          np.arange(members.size))

    def test_custom_cannot_be_generated_from_scratch(self):
        with pytest.raises(ValueError, match="custom"):
            make_shard_map(10, 2, strategy="custom")


class TestReshard:
    def test_reshard_ratings_matches_cold_build(self, small_ratings):
        from repro.workloads.partitioning import reshard_ratings

        matrix = small_ratings.matrix
        old = make_shard_map(matrix.n_users, 4)
        parts = shard_ratings(matrix, old)
        new, affected = old.rebalance({0: 1, 5: 2})
        rebuilt = reshard_ratings(parts, old, new, affected)
        cold = shard_ratings(matrix, new)
        assert sorted(rebuilt) == affected
        for s in affected:
            got, want = rebuilt[s], cold[s]
            assert got.n_users == want.n_users
            np.testing.assert_array_equal(got.indptr, want.indptr)
            np.testing.assert_array_equal(got.item_ids, want.item_ids)
            np.testing.assert_array_equal(got.values, want.values)

    def test_reshard_corpus_matches_cold_build(self, small_corpus):
        from repro.workloads.partitioning import reshard_corpus

        corpus = small_corpus.partition
        old = make_shard_map(corpus.n_docs, 3)
        parts = shard_corpus(corpus, old)
        new, affected = old.rebalance({0: 1, 10: 2})
        rebuilt = reshard_corpus(parts, old, new, affected)
        cold = shard_corpus(corpus, new)
        for s in affected:
            assert rebuilt[s].n_docs == cold[s].n_docs
            for d in range(rebuilt[s].n_docs):
                assert rebuilt[s].tokens_of(d) == cold[s].tokens_of(d)

    def test_reshard_keeps_global_item_space(self, small_ratings):
        # The widest item space may live on an *unaffected* shard (e.g.
        # after add_points grew one component with new items); rebuilt
        # shards must keep the global space so predictions still merge.
        from repro.recommender.matrix import RatingMatrix
        from repro.workloads.partitioning import reshard_ratings

        matrix = small_ratings.matrix
        old = make_shard_map(matrix.n_users, 3)
        parts = shard_ratings(matrix, old)
        wide = parts[2]
        parts[2] = RatingMatrix(*wide.to_triples(), n_users=wide.n_users,
                                n_items=wide.n_items + 7)
        new, affected = old.rebalance({0: 1})   # shard 2 untouched
        assert 2 not in affected
        rebuilt = reshard_ratings(parts, old, new, affected)
        assert all(m.n_items == wide.n_items + 7 for m in rebuilt.values())

    def test_reshard_partitions_dispatches_and_validates(self, small_ratings):
        from repro.workloads.partitioning import reshard_partitions

        matrix = small_ratings.matrix
        old = make_shard_map(matrix.n_users, 2)
        parts = shard_ratings(matrix, old)
        new, affected = old.rebalance({0: 1})
        rebuilt = reshard_partitions(parts, old, new, affected)
        assert sorted(rebuilt) == affected
        with pytest.raises(TypeError):
            reshard_partitions([object(), object()], old, new, affected)
        mismatched = make_shard_map(matrix.n_users + 1, 2)
        with pytest.raises(ValueError):
            reshard_partitions(parts, old, mismatched, affected)
