"""Round-robin component partitioning of workload data."""

import numpy as np
import pytest

from repro.workloads.partitioning import split_corpus, split_ratings


class TestSplitRatings:
    @pytest.mark.parametrize("n_users,n_parts", [(200, 2), (25, 2), (7, 3)])
    def test_every_rating_lands_once(self, small_ratings, n_users, n_parts):
        users, items, vals = small_ratings.matrix.to_triples()
        keep = users < n_users
        from repro.recommender.matrix import RatingMatrix

        matrix = RatingMatrix(users[keep], items[keep], vals[keep],
                              n_users=n_users,
                              n_items=small_ratings.matrix.n_items)
        parts = split_ratings(matrix, n_parts)
        assert len(parts) == n_parts
        # Non-divisible counts: earlier parts absorb the remainder.
        assert sum(p.n_users for p in parts) == n_users
        assert all(p.n_items == matrix.n_items for p in parts)
        total = 0
        for p_idx, part in enumerate(parts):
            for local in range(part.n_users):
                ids, pvals = part.user_ratings(local)
                gids, gvals = matrix.user_ratings(local * n_parts + p_idx)
                np.testing.assert_array_equal(ids, gids)
                np.testing.assert_array_equal(pvals, gvals)
                total += ids.size
        assert total == users[keep].size

    def test_zero_parts_rejected(self, small_ratings):
        with pytest.raises(ValueError):
            split_ratings(small_ratings.matrix, 0)


class TestSplitCorpus:
    @pytest.mark.parametrize("n_parts", [2, 3])
    def test_every_page_lands_once(self, small_corpus, n_parts):
        corpus = small_corpus.partition
        parts = split_corpus(corpus, n_parts)
        assert sum(p.n_docs for p in parts) == corpus.n_docs
        for doc_id in range(corpus.n_docs):
            part = parts[doc_id % n_parts]
            assert part.tokens_of(doc_id // n_parts) == corpus.tokens_of(doc_id)
