"""Tests for the MapReduce interference trace generator."""

import numpy as np
import pytest

from repro.cluster.interference import InterferenceTimeline
from repro.workloads.mapreduce import MapReduceTraceConfig, generate_interference_jobs


class TestGenerate:
    def test_jobs_well_formed(self):
        jobs = generate_interference_jobs(4, 600.0, seed=1)
        assert jobs, "default config should produce jobs in 10 minutes"
        for node, start, end, slowdown in jobs:
            assert 0 <= node < 4
            assert 0 <= start < 600.0
            assert end > start
            assert slowdown >= 1.0

    def test_rate_scales_with_config(self):
        lo = generate_interference_jobs(
            10, 3600.0, MapReduceTraceConfig(jobs_per_hour_per_node=10), seed=2)
        hi = generate_interference_jobs(
            10, 3600.0, MapReduceTraceConfig(jobs_per_hour_per_node=100), seed=2)
        assert len(hi) > 3 * len(lo)

    def test_zero_rate(self):
        jobs = generate_interference_jobs(
            2, 100.0, MapReduceTraceConfig(jobs_per_hour_per_node=0.0))
        assert jobs == []

    def test_deterministic(self):
        a = generate_interference_jobs(3, 300.0, seed=4)
        b = generate_interference_jobs(3, 300.0, seed=4)
        assert a == b

    def test_feeds_timeline(self):
        jobs = generate_interference_jobs(3, 300.0, seed=5)
        t = InterferenceTimeline(3, jobs)
        # Inside a job window the node is slowed; outside, full speed.
        node, start, end, slowdown = jobs[0]
        mid = 0.5 * (start + end)
        assert t.multiplier(node, mid) <= 1.0 / min(slowdown, 1 / 0.05)
        assert t.multiplier(node, -1.0) == 1.0

    def test_slowdowns_in_configured_range(self):
        cfg = MapReduceTraceConfig(cpu_job_fraction=0.0,
                                   io_slowdown_min=2.0, io_slowdown_max=3.0)
        jobs = generate_interference_jobs(2, 2000.0, cfg, seed=6)
        for _, _, _, s in jobs:
            assert 2.0 <= s <= 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MapReduceTraceConfig(jobs_per_hour_per_node=-1)
        with pytest.raises(ValueError):
            MapReduceTraceConfig(io_slowdown_min=3.0, io_slowdown_max=2.0)
        with pytest.raises(ValueError):
            generate_interference_jobs(0, 100.0)
