"""Tests for the synthetic rating generator."""

import numpy as np
import pytest

from repro.workloads.movielens import MovieLensConfig, generate_ratings


class TestGenerate:
    def test_shape_and_density(self):
        cfg = MovieLensConfig(n_users=300, n_items=100, density=0.1, seed=1)
        data = generate_ratings(cfg)
        assert data.matrix.n_users == 300
        assert data.matrix.n_items == 100
        expected = 0.1 * 300 * 100
        assert data.matrix.nnz == pytest.approx(expected, rel=0.05)

    def test_ratings_in_range(self):
        data = generate_ratings(MovieLensConfig(n_users=100, n_items=50, seed=2))
        assert data.matrix.values.min() >= 1.0
        assert data.matrix.values.max() <= 5.0

    def test_deterministic(self):
        a = generate_ratings(MovieLensConfig(n_users=50, n_items=30, seed=3))
        b = generate_ratings(MovieLensConfig(n_users=50, n_items=30, seed=3))
        np.testing.assert_array_equal(a.matrix.values, b.matrix.values)

    def test_seed_override(self):
        cfg = MovieLensConfig(n_users=50, n_items=30, seed=3)
        a = generate_ratings(cfg)
        b = generate_ratings(cfg, seed=99)
        assert not np.array_equal(a.matrix.values, b.matrix.values)

    def test_cluster_structure_in_ratings(self):
        # Same-cluster users must rate more similarly than cross-cluster.
        data = generate_ratings(MovieLensConfig(
            n_users=200, n_items=80, density=0.5, n_clusters=4,
            cluster_spread=0.2, noise=0.2, seed=4))
        dense = data.matrix.dense(fill=np.nan)
        cl = data.user_cluster
        rng = np.random.default_rng(0)
        within, across = [], []
        for _ in range(400):
            i, j = rng.integers(0, 200, 2)
            both = ~np.isnan(dense[i]) & ~np.isnan(dense[j])
            if both.sum() < 5:
                continue
            d = np.nanmean(np.abs(dense[i, both] - dense[j, both]))
            (within if cl[i] == cl[j] else across).append(d)
        assert np.mean(within) < np.mean(across)

    def test_zipf_popularity(self):
        data = generate_ratings(MovieLensConfig(
            n_users=400, n_items=100, density=0.1,
            popularity_exponent=1.2, seed=5))
        counts = np.bincount(data.matrix.item_ids, minlength=100)
        # Top-decile items get far more ratings than the bottom decile.
        assert counts[:10].sum() > 3 * counts[-10:].sum()

    def test_true_ratings_in_scale(self):
        data = generate_ratings(MovieLensConfig(n_users=30, n_items=20, seed=6))
        vals = data.true_ratings([0, 1, 2], [3, 4, 5])
        assert np.all(vals >= 1.0) and np.all(vals <= 5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            MovieLensConfig(n_users=0)
        with pytest.raises(ValueError):
            MovieLensConfig(density=0.0)
        with pytest.raises(ValueError):
            MovieLensConfig(n_clusters=0)
