"""Tests for arrival processes."""

import numpy as np
import pytest

from repro.util.rng import make_rng
from repro.workloads.arrival import nhpp_arrivals, poisson_arrivals


class TestPoisson:
    def test_sorted_within_window(self):
        a = poisson_arrivals(50.0, 10.0, make_rng(0))
        assert np.all(np.diff(a) >= 0)
        assert a.min() >= 0 and a.max() < 10.0

    def test_rate_respected(self):
        a = poisson_arrivals(100.0, 100.0, make_rng(1))
        assert a.size == pytest.approx(10_000, rel=0.05)

    def test_zero_duration(self):
        assert poisson_arrivals(10.0, 0.0, make_rng(2)).size == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_arrivals(0.0, 1.0, make_rng(0))
        with pytest.raises(ValueError):
            poisson_arrivals(1.0, -1.0, make_rng(0))

    def test_exponential_gaps(self):
        a = poisson_arrivals(200.0, 50.0, make_rng(3))
        gaps = np.diff(a)
        # Mean gap ~ 1/rate; CV ~ 1 for exponential.
        assert np.mean(gaps) == pytest.approx(1 / 200.0, rel=0.1)
        assert np.std(gaps) / np.mean(gaps) == pytest.approx(1.0, rel=0.15)


class TestNHPP:
    def test_piecewise_rate(self):
        # Rate 100 in the first half, 10 in the second.
        def rate(t):
            return 100.0 if t < 50 else 10.0

        a = nhpp_arrivals(rate, 100.0, 100.0, make_rng(4))
        first = np.count_nonzero(a < 50)
        second = a.size - first
        assert first == pytest.approx(5000, rel=0.1)
        assert second == pytest.approx(500, rel=0.25)

    def test_rate_exceeding_max_rejected(self):
        with pytest.raises(ValueError):
            nhpp_arrivals(lambda t: 20.0, 10.0, 100.0, make_rng(5))

    def test_zero_rate_function(self):
        a = nhpp_arrivals(lambda t: 0.0, 10.0, 50.0, make_rng(6))
        assert a.size == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            nhpp_arrivals(lambda t: 1.0, 0.0, 1.0, make_rng(0))
