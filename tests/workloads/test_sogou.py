"""Tests for the diurnal query-log model."""

import numpy as np
import pytest

from repro.workloads.corpus import CorpusConfig, generate_corpus
from repro.workloads.sogou import (
    HOURLY_RATE_PROFILE,
    QueryLogConfig,
    generate_query_log,
    hour_arrival_rate,
)


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(CorpusConfig(n_docs=50, n_topics=6, seed=1))


class TestProfile:
    def test_24_hours(self):
        assert HOURLY_RATE_PROFILE.shape == (24,)
        assert HOURLY_RATE_PROFILE.max() == 1.0
        assert np.all(HOURLY_RATE_PROFILE > 0)

    def test_trough_at_night_peak_at_evening(self):
        # Deep trough around hours 4-6, peak around hours 21-23.
        assert np.argmin(HOURLY_RATE_PROFILE) in (3, 4, 5)
        assert np.argmax(HOURLY_RATE_PROFILE) in (20, 21, 22)

    def test_hour9_increasing_hour24_decreasing(self):
        # The paper's typical hours: 9 on the ramp, 24 decaying.
        assert HOURLY_RATE_PROFILE[8] > HOURLY_RATE_PROFILE[7]
        assert HOURLY_RATE_PROFILE[23] < HOURLY_RATE_PROFILE[22]

    def test_hour_arrival_rate(self):
        assert hour_arrival_rate(22, 100.0) == 100.0
        with pytest.raises(ValueError):
            hour_arrival_rate(0, 100.0)
        with pytest.raises(ValueError):
            hour_arrival_rate(25, 100.0)
        with pytest.raises(ValueError):
            hour_arrival_rate(5, 0.0)


class TestGenerateLog:
    def test_rate_tracks_profile(self, corpus):
        cfg = QueryLogConfig(peak_rate=50.0, seed=2)
        peak = generate_query_log(corpus, 22, cfg, duration=600.0)
        trough = generate_query_log(corpus, 5, cfg, duration=600.0)
        assert peak.n_queries > 3 * trough.n_queries

    def test_queries_have_terms(self, corpus):
        log = generate_query_log(corpus, 10, QueryLogConfig(seed=3),
                                 duration=120.0)
        assert len(log.queries) == log.n_queries
        assert all(len(q) >= 1 for q in log.queries)

    def test_arrivals_sorted_within_duration(self, corpus):
        log = generate_query_log(corpus, 9, QueryLogConfig(seed=4),
                                 duration=300.0)
        assert np.all(np.diff(log.arrivals) >= 0)
        assert log.arrivals.max() < 300.0

    def test_hour9_ramps_within_hour(self, corpus):
        cfg = QueryLogConfig(peak_rate=100.0, seed=5)
        log = generate_query_log(corpus, 9, cfg, duration=3600.0)
        first = np.count_nonzero(log.arrivals < 1200)
        last = np.count_nonzero(log.arrivals >= 2400)
        assert last > first  # increasing arrivals through hour 9

    def test_topics_recur_zipf(self, corpus):
        log = generate_query_log(corpus, 22, QueryLogConfig(seed=6),
                                 duration=1200.0)
        counts = np.bincount(log.query_topics,
                             minlength=corpus.config.n_topics)
        assert counts.max() > 2 * np.median(counts[counts > 0])

    def test_validation(self):
        with pytest.raises(ValueError):
            QueryLogConfig(peak_rate=0)
        with pytest.raises(ValueError):
            QueryLogConfig(terms_per_query_mean=0.5)
