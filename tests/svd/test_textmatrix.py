"""Tests for the term-document matrix."""

import numpy as np
import pytest

from repro.svd.textmatrix import TermDocumentMatrix


class TestAddDocument:
    def test_counts(self):
        m = TermDocumentMatrix()
        d = m.add_document(["a", "b", "a", "c", "a"])
        assert d == 0
        vec = m.doc_vector(0)
        assert vec[m.vocabulary["a"]] == 3
        assert vec[m.vocabulary["b"]] == 1

    def test_vocabulary_grows_stably(self):
        m = TermDocumentMatrix()
        m.add_document(["x", "y"])
        x_id = m.vocabulary["x"]
        m.add_document(["z", "x"])
        assert m.vocabulary["x"] == x_id  # ids stable under append
        assert m.n_terms == 3

    def test_empty_document(self):
        m = TermDocumentMatrix()
        d = m.add_document([])
        assert m.doc_vector(d) == {}

    def test_add_documents_bulk(self):
        m = TermDocumentMatrix()
        ids = m.add_documents([["a"], ["b"], ["a", "b"]])
        assert ids == [0, 1, 2]
        assert m.n_docs == 3


class TestReplace:
    def test_replace_overwrites(self):
        m = TermDocumentMatrix()
        m.add_document(["a", "a"])
        m.replace_document(0, ["b"])
        vec = m.doc_vector(0)
        assert vec == {m.vocabulary["b"]: 1}

    def test_replace_bad_id(self):
        m = TermDocumentMatrix()
        with pytest.raises(IndexError):
            m.replace_document(0, ["a"])


class TestTriples:
    def test_full_triples_roundtrip(self):
        m = TermDocumentMatrix()
        m.add_document(["a", "b", "a"])
        m.add_document(["b", "c"])
        rows, cols, vals = m.triples()
        dense = np.zeros((2, m.n_terms))
        dense[rows, cols] = vals
        assert dense[0, m.vocabulary["a"]] == 2
        assert dense[1, m.vocabulary["c"]] == 1
        assert dense.sum() == 5

    def test_subset_triples_local_rows(self):
        m = TermDocumentMatrix()
        for i in range(5):
            m.add_document([f"t{i}"])
        rows, cols, vals = m.triples(doc_ids=[3, 1])
        assert set(rows.tolist()) == {0, 1}
        assert cols[rows == 0][0] == m.vocabulary["t3"]
        assert cols[rows == 1][0] == m.vocabulary["t1"]

    def test_empty_matrix_triples(self):
        rows, cols, vals = TermDocumentMatrix().triples()
        assert rows.size == cols.size == vals.size == 0

    def test_bad_doc_id(self):
        m = TermDocumentMatrix()
        m.add_document(["a"])
        with pytest.raises(IndexError):
            m.triples(doc_ids=[5])
        with pytest.raises(IndexError):
            m.doc_vector(2)
