"""Tests for Funk incremental SVD."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.svd.incremental import FunkSVD, reduce_dense
from repro.util.rng import make_rng


def low_rank_triples(n_rows=60, n_cols=40, rank=3, density=0.5, noise=0.05,
                     seed=0):
    rng = make_rng(seed, "svd-test")
    u = rng.normal(0, 1, (n_rows, rank))
    v = rng.normal(0, 1, (n_cols, rank))
    full = u @ v.T
    mask = rng.random((n_rows, n_cols)) < density
    rows, cols = np.nonzero(mask)
    vals = full[rows, cols] + rng.normal(0, noise, rows.size)
    return rows, cols, vals, n_rows, n_cols, full


class TestFit:
    def test_reconstruction_improves_over_dims(self):
        rows, cols, vals, nr, nc, _ = low_rank_triples()
        m = FunkSVD(n_dims=3, n_iters=100, seed=1).fit(rows, cols, vals, nr, nc)
        errs = m.train_errors_
        assert errs[0] > errs[1] > errs[2]

    def test_low_rank_matrix_recovered(self):
        rows, cols, vals, nr, nc, _ = low_rank_triples(noise=0.01)
        m = FunkSVD(n_dims=3, n_iters=200, seed=2).fit(rows, cols, vals, nr, nc)
        assert m.reconstruction_rmse(rows, cols, vals) < 0.3 * np.std(vals)

    def test_factor_shapes(self):
        rows, cols, vals, nr, nc, _ = low_rank_triples()
        m = FunkSVD(n_dims=4, n_iters=10).fit(rows, cols, vals, nr, nc)
        assert m.row_factors.shape == (nr, 4)
        assert m.col_factors.shape == (nc, 4)

    def test_deterministic(self):
        rows, cols, vals, nr, nc, _ = low_rank_triples()
        a = FunkSVD(n_dims=2, n_iters=20, seed=5).fit(rows, cols, vals, nr, nc)
        b = FunkSVD(n_dims=2, n_iters=20, seed=5).fit(rows, cols, vals, nr, nc)
        np.testing.assert_array_equal(a.row_factors, b.row_factors)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            FunkSVD().fit([], [], [])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            FunkSVD().fit([0, 1], [0], [1.0, 2.0])

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            FunkSVD().fit([-1], [0], [1.0])

    def test_index_exceeding_shape_rejected(self):
        with pytest.raises(ValueError):
            FunkSVD().fit([5], [0], [1.0], n_rows=3, n_cols=2)

    def test_param_validation(self):
        with pytest.raises(ValueError):
            FunkSVD(n_dims=0)
        with pytest.raises(ValueError):
            FunkSVD(n_iters=0)
        with pytest.raises(ValueError):
            FunkSVD(learning_rate=0)
        with pytest.raises(ValueError):
            FunkSVD(reg=-1)


class TestFoldIn:
    def test_fold_in_appends_rows(self):
        rows, cols, vals, nr, nc, full = low_rank_triples()
        m = FunkSVD(n_dims=3, n_iters=80, seed=3).fit(rows, cols, vals, nr, nc)
        # New rows drawn from the same latent model.
        rng = make_rng(4)
        k = 5
        new_rows = np.repeat(np.arange(k), nc // 2)
        new_cols = np.tile(np.arange(nc // 2), k)
        new_vals = full[:k, : nc // 2][new_rows, new_cols]
        block = m.fold_in_rows(new_rows, new_cols, new_vals, n_new_rows=k)
        assert block.shape == (k, 3)
        assert m.n_rows == nr + k
        assert m.row_factors.shape == (nr + k, 3)

    def test_fold_in_predictions_reasonable(self):
        rows, cols, vals, nr, nc, full = low_rank_triples(noise=0.01)
        m = FunkSVD(n_dims=3, n_iters=150, seed=5).fit(rows, cols, vals, nr, nc)
        # Fold in a copy of row 0; its factors should predict row 0's data.
        ids, seen_cols = np.zeros(nc, dtype=int), np.arange(nc)
        m.fold_in_rows(ids, seen_cols, full[0], n_new_rows=1)
        pred = m.predict(np.full(nc, nr), seen_cols)
        err = np.sqrt(np.mean((pred - full[0]) ** 2))
        assert err < 0.4 * np.std(full[0])

    def test_fold_in_does_not_touch_existing(self):
        rows, cols, vals, nr, nc, _ = low_rank_triples()
        m = FunkSVD(n_dims=2, n_iters=30, seed=6).fit(rows, cols, vals, nr, nc)
        before = m.row_factors[:nr].copy()
        cols_before = m.col_factors.copy()
        m.fold_in_rows([0], [1], [0.7], n_new_rows=1)
        np.testing.assert_array_equal(m.row_factors[:nr], before)
        np.testing.assert_array_equal(m.col_factors, cols_before)

    def test_fold_in_requires_fit(self):
        with pytest.raises(RuntimeError):
            FunkSVD().fold_in_rows([0], [0], [1.0], n_new_rows=1)

    def test_fold_in_validates_cols(self):
        rows, cols, vals, nr, nc, _ = low_rank_triples()
        m = FunkSVD(n_dims=2, n_iters=10).fit(rows, cols, vals, nr, nc)
        with pytest.raises(ValueError):
            m.fold_in_rows([0], [nc + 5], [1.0], n_new_rows=1)

    def test_fold_in_zero_rows_rejected(self):
        rows, cols, vals, nr, nc, _ = low_rank_triples()
        m = FunkSVD(n_dims=2, n_iters=10).fit(rows, cols, vals, nr, nc)
        with pytest.raises(ValueError):
            m.fold_in_rows([], [], [], n_new_rows=0)


class TestRefitRows:
    def test_refit_changes_only_targets(self):
        rows, cols, vals, nr, nc, _ = low_rank_triples()
        m = FunkSVD(n_dims=2, n_iters=30, seed=7).fit(rows, cols, vals, nr, nc)
        before = m.row_factors.copy()
        target = np.array([3, 8])
        local = np.repeat(np.arange(2), 5)
        cols2 = np.tile(np.arange(5), 2)
        m.refit_rows(target, local, cols2, np.ones(10))
        mask = np.ones(nr, dtype=bool)
        mask[target] = False
        np.testing.assert_array_equal(m.row_factors[mask], before[mask])
        assert not np.array_equal(m.row_factors[target], before[target])

    def test_refit_validates_ids(self):
        rows, cols, vals, nr, nc, _ = low_rank_triples()
        m = FunkSVD(n_dims=2, n_iters=10).fit(rows, cols, vals, nr, nc)
        with pytest.raises(ValueError):
            m.refit_rows([nr + 1], [0], [0], [1.0])
        with pytest.raises(ValueError):
            m.refit_rows([], [], [], [])


class TestReduceDense:
    def test_shape(self):
        X = make_rng(8).random((30, 10))
        out = reduce_dense(X, n_dims=3, n_iters=20)
        assert out.shape == (30, 3)

    def test_similar_rows_stay_similar(self):
        rng = make_rng(9)
        base = rng.random(12)
        X = np.vstack([base + rng.normal(0, 0.01, 12) for _ in range(6)]
                      + [rng.random(12) * 5 for _ in range(6)])
        out = reduce_dense(X, n_dims=2, n_iters=150)
        close = np.linalg.norm(out[0] - out[1])
        far = np.linalg.norm(out[0] - out[-1])
        assert close < far

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            reduce_dense([1.0, 2.0])


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=2, max_value=20), st.integers(min_value=2, max_value=15))
def test_training_error_never_degrades_with_dims(nr, nc):
    rng = make_rng(nr * 100 + nc)
    rows, cols = np.nonzero(rng.random((nr, nc)) < 0.8)
    if rows.size == 0:
        return
    vals = rng.random(rows.size)
    m = FunkSVD(n_dims=3, n_iters=40, seed=0).fit(rows, cols, vals, nr, nc)
    errs = m.train_errors_
    # Gradient descent is not strictly monotone (a later dimension can
    # overshoot on tiny matrices), but each added dimension must not
    # degrade the fit by more than a fraction of the data's scale, and
    # the full model must be at least as good as the first dimension.
    tol = 0.1 * float(np.std(vals)) + 1e-6
    assert all(errs[i] >= errs[i + 1] - tol for i in range(len(errs) - 1))
    assert errs[-1] <= errs[0] + tol
