"""Shared test helpers.

``process`` / ``aprocess`` wrap the envelope-native ``serve`` /
``aserve`` path back into the historical ``(answer, reports)`` tuple.
They exist so the many positional call sites in this suite read exactly
as before the Servable shims were removed — the envelope wrapping is
the same :func:`~repro.serving.envelope.as_envelope` the shims used, so
results are bit-identical.
"""

from __future__ import annotations

from repro.serving.envelope import as_envelope


def process(service, request, deadline, clocks=None, backend=None):
    """``(answer, reports)`` from ``service.serve`` over a bare payload."""
    resp = service.serve(as_envelope(request, deadline), clocks=clocks,
                         backend=backend)
    return resp.as_tuple()


async def aprocess(service, request, deadline, clocks=None, backend=None):
    """Async :func:`process` via ``service.aserve``."""
    resp = await service.aserve(as_envelope(request, deadline),
                                clocks=clocks, backend=backend)
    return resp.as_tuple()
