"""Tests for RMSE and accuracy-loss metrics."""

import numpy as np
import pytest

from repro.recommender.metrics import accuracy_loss_percent, rmse


class TestRMSE:
    def test_zero_for_perfect(self):
        assert rmse([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_known_value(self):
        assert rmse([0.0, 0.0], [3.0, 4.0]) == pytest.approx(np.sqrt(12.5))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            rmse([1.0], [1.0, 2.0])

    def test_empty(self):
        with pytest.raises(ValueError):
            rmse([], [])

    def test_symmetric(self):
        a, b = np.array([1.0, 5.0]), np.array([2.0, 3.0])
        assert rmse(a, b) == rmse(b, a)


class TestAccuracyLoss:
    def test_zero_loss(self):
        assert accuracy_loss_percent(1.0, 1.0) == 0.0

    def test_doubling_error_is_100(self):
        assert accuracy_loss_percent(2.0, 1.0) == pytest.approx(100.0)

    def test_floor_at_zero(self):
        # Approximation slightly better than exact on a finite test set.
        assert accuracy_loss_percent(0.9, 1.0) == 0.0

    def test_exact_zero_cases(self):
        assert accuracy_loss_percent(0.0, 0.0) == 0.0
        assert accuracy_loss_percent(0.5, 0.0) == 100.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            accuracy_loss_percent(-1.0, 1.0)
        with pytest.raises(ValueError):
            accuracy_loss_percent(1.0, -1.0)
