"""Tests for aggregated-user construction."""

import numpy as np
import pytest

from repro.recommender.aggregation import aggregate_group, build_aggregated_users
from repro.recommender.matrix import RatingMatrix


def matrix():
    # users 0,1 rate item 0 as 2 and 4; user 1 rates item 1 as 5.
    return RatingMatrix([0, 1, 1, 2], [0, 0, 1, 2], [2.0, 4.0, 5.0, 1.0],
                        n_users=3, n_items=3)


class TestAggregateGroup:
    def test_mean_over_raters_only(self):
        # Paper: the aggregated rating on item i averages only the members
        # who rated i (subset Ui), not the whole group.
        ids, means = aggregate_group(matrix(), [0, 1])
        np.testing.assert_array_equal(ids, [0, 1])
        np.testing.assert_array_equal(means, [3.0, 5.0])

    def test_empty_group(self):
        ids, means = aggregate_group(matrix(), [])
        assert ids.size == 0 and means.size == 0

    def test_single_member(self):
        ids, means = aggregate_group(matrix(), [2])
        np.testing.assert_array_equal(ids, [2])
        np.testing.assert_array_equal(means, [1.0])

    def test_members_without_ratings(self):
        m = RatingMatrix([0], [0], [3.0], n_users=5, n_items=2)
        ids, means = aggregate_group(m, [0, 3, 4])
        np.testing.assert_array_equal(ids, [0])
        np.testing.assert_array_equal(means, [3.0])


class TestBuildAggregatedUsers:
    def test_shape_and_values(self):
        agg = build_aggregated_users(matrix(), [[0, 1], [2]])
        assert agg.n_users == 2
        assert agg.n_items == 3
        assert agg.rating(0, 0) == 3.0
        assert agg.rating(0, 1) == 5.0
        assert agg.rating(1, 2) == 1.0
        assert agg.rating(1, 0) is None

    def test_empty_groups_list(self):
        agg = build_aggregated_users(matrix(), [])
        assert agg.n_users == 0

    def test_group_order_preserved(self):
        agg = build_aggregated_users(matrix(), [[2], [0, 1]])
        assert agg.rating(0, 2) == 1.0
        assert agg.rating(1, 0) == 3.0

    def test_aggregation_is_unchanged_cf_input(self):
        # The synopsis payload must be process-able by the untouched CF
        # code path (the paper's no-algorithm-change property).
        from repro.recommender.cf import CFComponent

        agg = build_aggregated_users(matrix(), [[0, 1], [2]])
        comp = CFComponent(agg)
        pred = comp.partial_prediction([0, 1], [3.0, 5.0], [2], 4.0)
        assert isinstance(pred.predict(2), float)


class TestAggregateGroups:
    """Batched aggregation vs the single-group oracle, bit for bit."""

    def test_matches_single_group_calls(self):
        rng = np.random.default_rng(5)
        mask = rng.random((30, 20)) < 0.35
        users, items = np.nonzero(mask)
        vals = rng.integers(1, 6, size=users.size).astype(float)
        m = RatingMatrix(users, items, vals, n_users=30, n_items=20)
        groups = [rng.choice(30, size=int(rng.integers(1, 8)),
                             replace=False) for _ in range(9)]
        groups.insert(3, [])  # empty group mid-list
        from repro.recommender.aggregation import aggregate_groups

        batched = aggregate_groups(m, groups)
        assert len(batched) == len(groups)
        for g, (ids, means) in enumerate(batched):
            ref_ids, ref_means = aggregate_group(m, groups[g])
            assert np.array_equal(ids, ref_ids)
            assert np.array_equal(means, ref_means)

    def test_empty_inputs(self):
        from repro.recommender.aggregation import aggregate_groups

        assert aggregate_groups(matrix(), []) == []
        out = aggregate_groups(matrix(), [[], []])
        assert all(ids.size == 0 and means.size == 0 for ids, means in out)
